//! Property tests for the end-to-end integrity layer: the checksum
//! codec detects every single bit flip, verified reads round-trip over
//! hole/sized/EC layouts without false positives, bit rot anywhere is
//! either transparently repaired or refused loudly (never served), and
//! a scrub pass resumes byte-identically after a mid-pass crash of the
//! driving loop.

use std::collections::BTreeMap;

use cluster::{ClusterSpec, Payload};
use daos_core::{ContainerId, ContainerProps, DaosSystem, DataMode, ObjectClass, Oid, OracleKind};
use proptest::prelude::*;
use simkit::{run, OpId, Scheduler, SplitMix64, Step, World};

struct Sink;
impl World for Sink {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

fn exec(sched: &mut Scheduler, step: Step) {
    sched.submit(step, OpId(0));
    run(sched, &mut Sink);
}

fn rand_bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

const CHUNK: u64 = 4096;

/// Deploy a 4-server pool with the ledger on and write a KV object plus
/// one array per class, seeded deterministically so two calls with the
/// same seed build byte-identical systems.
fn fixture(seed: u64) -> (Scheduler, DaosSystem, ContainerId, Oid, Oid, Oid) {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
    daos.enable_ledger();
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let (kv, s) = daos.kv_create(0, cid, ObjectClass::RP_2).unwrap();
    exec(&mut sched, s);
    let (rp2, s) = daos
        .array_create(0, cid, ObjectClass::RP_2, 1 << 16)
        .unwrap();
    exec(&mut sched, s);
    let (ec, s) = daos
        .array_create(0, cid, ObjectClass::EC_2P1, 1 << 16)
        .unwrap();
    exec(&mut sched, s);
    let mut rng = SplitMix64::new(seed);
    for i in 0..4u64 {
        let key = format!("k/{i:04}");
        let val = rand_bytes(&mut rng, 96);
        exec(
            &mut sched,
            daos.kv_put(0, cid, kv, key.as_bytes(), Payload::Bytes(val))
                .unwrap(),
        );
        let b = rand_bytes(&mut rng, CHUNK as usize);
        exec(
            &mut sched,
            daos.array_write(0, cid, rp2, i * CHUNK, Payload::Bytes(b))
                .unwrap(),
        );
        let b = rand_bytes(&mut rng, CHUNK as usize);
        exec(
            &mut sched,
            daos.array_write(0, cid, ec, i * CHUNK, Payload::Bytes(b))
                .unwrap(),
        );
    }
    (sched, daos, cid, kv, rp2, ec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any single bit flip — in the protected bytes or in the stored
    /// checksum itself — is detected, for any codec seed and payload.
    #[test]
    fn any_single_bit_flip_is_detected(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip in any::<usize>(),
        sum_bit in 0u32..64,
        seed in any::<u64>(),
    ) {
        let codec = daos_core::CsumCodec::new(seed);
        let stored = codec.sum(&data);
        let byte = flip % data.len();
        let bit = (flip / data.len()) % 8;
        let mut rotten = data.clone();
        rotten[byte] ^= 1 << bit;
        prop_assert!(
            !codec.verify(&rotten, stored),
            "flip at {byte}:{bit} undetected under seed {seed:#x}"
        );
        prop_assert!(
            !codec.verify(&data, stored ^ (1 << sum_bit)),
            "stored-sum flip at bit {sum_bit} undetected"
        );
        prop_assert!(codec.verify(&data, stored), "clean bytes must verify");
    }

    /// Verified reads round-trip arbitrary sparse layouts — holes
    /// between extents, replicated or erasure-coded — with zero false
    /// checksum positives: every byte written comes back, and nothing
    /// the checksum layer sees looks corrupt.
    #[test]
    fn verified_roundtrip_over_hole_and_ec_layouts(
        class_idx in 0usize..2,
        writes in proptest::collection::vec((0u64..16, 1usize..5000, any::<u64>()), 1..8),
    ) {
        let class = [ObjectClass::RP_2, ObjectClass::EC_2P1][class_idx];
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(4, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
        daos.enable_ledger();
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = daos.array_create(0, cid, class, CHUNK).unwrap();
        exec(&mut sched, s);
        // replay the writes into a sparse model keyed by byte offset
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for (chunk, len, seed) in &writes {
            let off = chunk * CHUNK;
            let mut rng = SplitMix64::new(*seed);
            let data = rand_bytes(&mut rng, *len);
            for (i, b) in data.iter().enumerate() {
                model.insert(off + i as u64, *b);
            }
            exec(
                &mut sched,
                daos.array_write(0, cid, oid, off, Payload::Bytes(data)).unwrap(),
            );
        }
        let high = model.keys().next_back().unwrap() + 1;
        let (got, s) = daos.array_read(0, cid, oid, 0, high).unwrap();
        exec(&mut sched, s);
        let bytes = got.bytes().unwrap();
        prop_assert_eq!(bytes.len() as u64, high);
        for (off, want) in &model {
            prop_assert_eq!(bytes[*off as usize], *want, "byte at {}", off);
        }
        let report = daos.verify_durability(0);
        prop_assert!(report.ok(), "{}", report.render());
        let stats = daos.csum_stats();
        prop_assert!(stats.verified > 0, "reads went through the verifier");
        prop_assert_eq!(stats.detected, 0, "no false positives through holes");
        prop_assert_eq!(stats.served_corrupt, 0);
    }

    /// Sized (hole-backed) extents verify too: the protected quantity
    /// is the length, and the audit stays clean.
    #[test]
    fn sized_layouts_verify_cleanly(
        class_idx in 0usize..2,
        lens in proptest::collection::vec(1u64..(1 << 20), 1..6),
    ) {
        let class = [ObjectClass::RP_2, ObjectClass::EC_2P1][class_idx];
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(4, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Sized);
        daos.enable_ledger();
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = daos.array_create(0, cid, class, 1 << 16).unwrap();
        exec(&mut sched, s);
        let mut off = 0u64;
        for len in &lens {
            exec(
                &mut sched,
                daos.array_write(0, cid, oid, off, Payload::Sized(*len)).unwrap(),
            );
            // leave a hole between sized extents
            off += len + (1 << 16);
        }
        let report = daos.verify_durability(0);
        prop_assert!(report.ok(), "{}", report.render());
        prop_assert_eq!(daos.csum_stats().detected, 0);
        prop_assert_eq!(daos.csum_stats().served_corrupt, 0);
    }

    /// Bit rot landing anywhere — any locus, any shard — is always
    /// detected, and corrupt bytes are never served: the read either
    /// repairs transparently (audit clean, `repaired` counts it) or
    /// refuses loudly with a Corruption violation.
    #[test]
    fn rot_anywhere_is_repaired_or_refused_never_served(
        locus in any::<u64>(),
        shard in 0u64..4,
        seed in any::<u64>(),
    ) {
        let (_sched, mut daos, _cid, _kv, _rp2, _ec) = fixture(seed);
        prop_assert!(daos.apply_bit_rot(locus, shard), "fixture has stored units");
        let report = daos.verify_durability(0);
        daos.scrub_start();
        while daos.scrub_wave(16).is_some() {}
        let stats = daos.csum_stats();
        prop_assert!(stats.detected >= 1, "the rot was seen by read or scrub");
        prop_assert_eq!(stats.served_corrupt, 0, "bad bytes are never served");
        if report.ok() {
            prop_assert!(stats.repaired >= 1, "clean audit means a repair happened");
        } else {
            prop_assert!(report
                .violations
                .iter()
                .all(|v| v.oracle == OracleKind::Corruption));
        }
        // after read-repair plus a full scrub pass, a second audit is
        // clean whenever the rot was within redundancy
        if report.ok() {
            let again = daos.verify_durability(0);
            prop_assert!(again.ok(), "{}", again.render());
        }
    }

    /// A scrub pass resumes byte-identically after a mid-pass crash of
    /// the driving loop: the cursor is replay-visible state, so one
    /// uninterrupted pass and one interrupted-then-resumed pass (with a
    /// different wave size after the crash) scan the same units, make
    /// the same repairs, and leave identical stored bytes.
    #[test]
    fn scrub_resumes_byte_identically_after_mid_scrub_crash(
        seed in any::<u64>(),
        locus in any::<u64>(),
        wave_a in 1usize..7,
        wave_b in 1usize..7,
    ) {
        let scrub_all = |daos: &mut DaosSystem, first: usize, rest: usize| {
            daos.scrub_start();
            if daos.scrub_wave(first).is_some() {
                while daos.scrub_wave(rest).is_some() {}
            }
        };
        // run A: one uninterrupted pass
        let (mut sa, mut da, cid, _kv, rp2, ec) = fixture(seed);
        prop_assert!(da.apply_bit_rot(locus, 0));
        scrub_all(&mut da, wave_a, wave_a);
        // run B: same system, same rot; the driver "crashes" after the
        // first wave and resumes from the persisted cursor with a
        // different wave size
        let (mut sb, mut db, _cid, _kv, _rp2, _ec) = fixture(seed);
        prop_assert!(db.apply_bit_rot(locus, 0));
        scrub_all(&mut db, wave_a, wave_b);
        // `waves` counts driver segmentation and legitimately differs;
        // everything the pass *did* must match exactly
        let (pa, pb) = (da.scrub_progress(), db.scrub_progress());
        prop_assert_eq!(pa.units_scanned, pb.units_scanned);
        prop_assert_eq!(pa.bytes_scanned, pb.bytes_scanned);
        prop_assert_eq!(pa.detected, pb.detected);
        prop_assert_eq!(pa.repaired, pb.repaired);
        prop_assert_eq!(pa.unrepairable, pb.unrepairable);
        prop_assert_eq!(pa.passes, pb.passes);
        prop_assert_eq!(da.csum_stats(), db.csum_stats());
        // stored bytes are identical after both passes
        for oid in [rp2, ec] {
            let (pa, s) = da.array_read(0, cid, oid, 0, 4 * CHUNK).unwrap();
            exec(&mut sa, s);
            let (pb, s) = db.array_read(0, cid, oid, 0, 4 * CHUNK).unwrap();
            exec(&mut sb, s);
            prop_assert_eq!(pa.bytes().unwrap(), pb.bytes().unwrap());
        }
        let ra = da.verify_durability(0);
        let rb = db.verify_durability(0);
        prop_assert_eq!(ra.ok(), rb.ok());
        prop_assert_eq!(ra.violations.len(), rb.violations.len());
    }
}
