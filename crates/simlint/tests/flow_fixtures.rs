//! Fixture-workspace tests for the stage-2 flow pass.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace layout
//! (`crates/<name>/src/lib.rs`) that is analyzed — never compiled — so
//! every analysis can demonstrate at least one true positive and one
//! clean negative on stable input.  The CLI tests drive the built
//! binary end-to-end to cover `--deny`, baselines and the index cache.

use std::path::PathBuf;
use std::process::Command;

use simlint::flow;
use simlint::{Finding, Severity};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze_fixture(name: &str) -> Vec<Finding> {
    flow::analyze_tree(&fixture_root(name)).expect("fixture tree readable")
}

// ---------------------------------------------------------------------------
// digest-taint
// ---------------------------------------------------------------------------

#[test]
fn digest_taint_true_positive_and_clean_negative() {
    let findings = analyze_fixture("digest_taint");
    let taint: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "digest-taint")
        .collect();
    assert_eq!(taint.len(), 1, "{findings:#?}");
    assert!(taint[0].message.contains("Pool::leak"), "{:?}", taint[0]);
    assert_eq!(taint[0].severity, Severity::Error);
    // The covered mutator and the shared-receiver accessor stay silent.
    assert!(findings.iter().all(|f| !f.message.contains("Pool::alloc")));
    assert!(findings.iter().all(|f| !f.message.contains("Pool::used")));
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

#[test]
fn panic_path_true_positives_and_clean_negative() {
    let findings = analyze_fixture("panic_path");
    let panics: Vec<&Finding> = findings.iter().filter(|f| f.rule == "panic-path").collect();

    // Reachable unwrap: error.
    let lookup = panics
        .iter()
        .find(|f| f.message.contains("`lookup`"))
        .expect("unwrap in lookup flagged");
    assert_eq!(lookup.severity, Severity::Error);

    // Reachable slice indexing: warn only.
    let pick = panics
        .iter()
        .find(|f| f.message.contains("`pick`"))
        .expect("indexing in pick flagged");
    assert_eq!(pick.severity, Severity::Warn);

    // The retry-entry caller's own expect: error.
    let drive = panics
        .iter()
        .find(|f| f.message.contains("`drive`"))
        .expect("expect in drive flagged");
    assert_eq!(drive.severity, Severity::Error);

    // Unreachable unwrap: clean.
    assert!(
        panics.iter().all(|f| !f.message.contains("offline_lookup")),
        "{panics:#?}"
    );
}

// ---------------------------------------------------------------------------
// span-digest
// ---------------------------------------------------------------------------

#[test]
fn span_digest_true_positive_and_clean_negative() {
    let findings = analyze_fixture("span_digest");
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "span-digest")
        .collect();
    assert_eq!(hits.len(), 1, "{findings:#?}");
    assert!(hits[0].message.contains("Spans::backdoor"), "{:?}", hits[0]);
    assert_eq!(hits[0].severity, Severity::Error);
    // The covered mutator and the shared-receiver accessor stay silent.
    assert!(findings.iter().all(|f| !f.message.contains("Spans::open")));
    assert!(findings
        .iter()
        .all(|f| !f.message.contains("Spans::opened")));
}

// ---------------------------------------------------------------------------
// retry-taxonomy
// ---------------------------------------------------------------------------

#[test]
fn retry_taxonomy_true_positives_and_clean_negatives() {
    let findings = analyze_fixture("retry_taxonomy");
    let tax: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "retry-taxonomy")
        .collect();

    // (a) terminal classified retriable via `matches!`.
    assert!(
        tax.iter()
            .any(|f| f.message.contains("StoreError::Lost") && f.message.contains("is_retriable")),
        "{tax:#?}"
    );
    // (b) match arm remapping the terminal variant.
    assert!(
        tax.iter()
            .any(|f| f.message.contains("StoreError::Lost") && f.message.contains("remapped")),
        "{tax:#?}"
    );
    // (c) `map_err` laundering in a carrier of the terminal error.
    assert!(
        tax.iter()
            .any(|f| f.message.contains("map_err") && f.message.contains("`fetch`")),
        "{tax:#?}"
    );

    // Clean negatives: the correct `=> false` classifier and the local
    // `map_err` that no terminal error can reach.
    assert!(
        tax.iter().all(|f| !f.message.contains("NetError::Corrupt")),
        "{tax:#?}"
    );
    assert!(
        tax.iter().all(|f| !f.message.contains("fetch_local")),
        "{tax:#?}"
    );
}

// ---------------------------------------------------------------------------
// clean workspace
// ---------------------------------------------------------------------------

#[test]
fn clean_fixture_has_no_findings() {
    let findings = analyze_fixture("clean");
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------------
// index cache round-trip on a fixture tree
// ---------------------------------------------------------------------------

#[test]
fn index_round_trip_preserves_findings() {
    let root = fixture_root("retry_taxonomy");
    let sources = flow::read_sources(&root).expect("fixture sources");
    let index = flow::build_index(&sources);
    let restored = flow::index_from_json(&flow::index_to_json(&index)).expect("round trip");
    assert_eq!(index, restored);
    assert_eq!(
        flow::analyze(&index, &sources),
        flow::analyze(&restored, &sources)
    );
}

// ---------------------------------------------------------------------------
// CLI end-to-end: --deny, --baseline, --save-index/--load-index
// ---------------------------------------------------------------------------

fn simlint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simlint-fixture-{}-{name}", std::process::id()))
}

#[test]
fn cli_deny_fails_on_fixture_errors_and_baseline_accepts_them() {
    let root = fixture_root("digest_taint");

    // Unbaselined error-level findings fail --deny.
    let status = simlint_cmd()
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("run simlint");
    assert!(!status.status.success());

    // Recording them as the baseline makes the same tree pass.
    let baseline = scratch("baseline.json");
    let status = simlint_cmd()
        .args(["--root"])
        .arg(&root)
        .args(["--write-baseline"])
        .arg(&baseline)
        .output()
        .expect("write baseline");
    assert!(status.status.success());
    let status = simlint_cmd()
        .args(["--deny", "--root"])
        .arg(&root)
        .args(["--baseline"])
        .arg(&baseline)
        .output()
        .expect("run with baseline");
    assert!(
        status.status.success(),
        "baselined errors must not fail --deny"
    );
    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn cli_clean_fixture_passes_deny() {
    let status = simlint_cmd()
        .args(["--deny", "--root"])
        .arg(fixture_root("clean"))
        .output()
        .expect("run simlint");
    assert!(status.status.success());
}

#[test]
fn cli_index_cache_is_reused_and_gives_identical_output() {
    let root = fixture_root("panic_path");
    let index = scratch("index.json");

    let first = simlint_cmd()
        .args(["--json", "--root"])
        .arg(&root)
        .args(["--save-index"])
        .arg(&index)
        .output()
        .expect("save index");
    let second = simlint_cmd()
        .args(["--json", "--root"])
        .arg(&root)
        .args(["--load-index"])
        .arg(&index)
        .output()
        .expect("load index");
    assert_eq!(first.stdout, second.stdout);
    let _ = std::fs::remove_file(&index);
}
