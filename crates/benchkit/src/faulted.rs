//! Faulted scenarios: bandwidth under failure.
//!
//! Each scenario runs a healthy write phase, installs a deterministic
//! [`FaultPlan`] relative to the phase boundary, then drives the read
//! phase through a fault-aware driver that maps engine fault events onto
//! DAOS state:
//!
//! * [`FaultAction::TargetCrash`] → [`DaosSystem::crash_target`], plus an
//!   *online rebuild*: after a short detection delay the pool rebuilds
//!   while client reads continue (degraded replica fail-over for `RP_2`,
//!   reconstruction for `EC_2P1`), and the time from crash to the end of
//!   the rebuild data movement is reported as time-to-redundancy-restored;
//! * [`FaultAction::TargetRestart`] → [`DaosSystem::restart_target`];
//! * [`FaultAction::DelayedCompletion`] → [`DaosSystem::set_extra_delay`]
//!   keyed by server rank;
//! * [`FaultAction::SlowDisk`] / [`FaultAction::NicBrownout`] are applied
//!   by the engine itself as capacity scaling.
//!
//! The client side absorbs the injected `TargetDown` detections through
//! the shared [`RetryPolicy`] machinery configured on the *topmost*
//! interface layer, so the reported [`RetryStats`] count real retries,
//! timeout charges and (never, in a healthy policy) given-up operations.
//!
//! Everything — bandwidths, retry counters, the [`RebuildReport`], the
//! restore latency and the replay digest (which folds in every fired
//! fault) — must be bit-identical across replays; [`replay_faulted`]
//! checks exactly that.

use crate::driver::{run_phase, start_stagger_ns, PhaseResult};
use crate::scenarios::{exec, make_sched, RunSpec};
use cluster::bench::{Phase, ProcWorkload};
use cluster::{Calibration, ClusterSpec, Topology};
use daos_core::{
    ContainerProps, DaosSystem, DataMode, ObjectClass, OracleReport, RebuildReport, RetryPolicy,
    RetryStats, TargetId,
};
use field_io::FieldIo;
use ior_bench::{AccessOrder, Ior, IorBackend, IorConfig};
use simkit::{run, FaultAction, FaultEvent, FaultPlan, OpId, Scheduler, SimTime, Step, World};
use std::cell::RefCell;
use std::rc::Rc;

/// One millisecond in nanoseconds (plan-building readability).
const MS: u64 = 1_000_000;

/// Delay between a crash firing and the rebuild kicking off (RAS event
/// propagation + pool-map revision distribution).  Until it elapses,
/// reads touching the dead targets run degraded: the first op from each
/// client node fails with `TargetDown` and its retry takes the
/// fail-over/reconstruction path.
const REBUILD_DETECT_NS: u64 = 2_000_000;

/// Marker op ids for the rebuild chain, far above any process index.
const OP_REBUILD_TRIGGER: OpId = OpId(1 << 40);
const OP_REBUILD_DONE: OpId = OpId((1 << 40) + 1);
const OP_SCRUB_WAVE: OpId = OpId((1 << 40) + 2);

/// Scan units (array chunks / KV values) verified per scrubber wave:
/// the throttle that keeps background scanning from starving foreground
/// reads — each wave is one parallel step against the shared fairshare
/// disks, and the next is emitted only when it completes.
const SCRUB_WAVE_UNITS: usize = 8;

/// The failure-injection benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultedScenario {
    /// IOR easy (file-per-process, sequential) on `RP_2` Arrays: a
    /// target crash plus a transient slow disk during the read phase;
    /// reads fail over to the surviving replica.
    IorEasyRp2,
    /// IOR hard (shared file, random offsets) on `EC_2P1` Arrays: a
    /// target crash plus a delayed-completion brownout; reads
    /// reconstruct from data + parity.
    IorHardEc2p1,
    /// Field I/O on `EC_2P1` Arrays with a crash and a NIC brownout.
    FieldIoFaulted,
}

impl FaultedScenario {
    /// Every faulted scenario, in presentation order.
    pub const ALL: [FaultedScenario; 3] = [
        FaultedScenario::IorEasyRp2,
        FaultedScenario::IorHardEc2p1,
        FaultedScenario::FieldIoFaulted,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultedScenario::IorEasyRp2 => "IOR-easy/RP_2+crash",
            FaultedScenario::IorHardEc2p1 => "IOR-hard/EC_2P1+crash",
            FaultedScenario::FieldIoFaulted => "FieldIO/EC_2P1+crash",
        }
    }
}

/// The sweep point the faulted family runs at: enough servers for
/// redundancy groups to spread over distinct engines, few enough ops to
/// keep the fault window inside the read phase.
pub fn default_faulted_spec() -> RunSpec {
    let mut spec = RunSpec::new(4, 2, 4);
    spec.ops_per_proc = 48;
    spec
}

/// Where a faulted run's failure schedule comes from.
#[derive(Debug, Clone)]
pub enum PlanSource {
    /// The scenario's built-in hand-written schedule.
    Builtin,
    /// An explicit schedule whose event times are **offsets from the
    /// write→read phase boundary** (offset 0 fires the moment the read
    /// phase starts).  Chaos-generated and shrunken schedules use this
    /// form so the same JSON replays regardless of how long the healthy
    /// phase took.
    Fixed(FaultPlan),
}

/// Options for [`run_faulted_with`] — the knobs the chaos swarm turns
/// that the fixed benchmark family keeps at their defaults.
#[derive(Debug, Clone)]
pub struct FaultedOpts {
    /// The failure schedule.
    pub plan: PlanSource,
    /// Data mode: `Sized` (default) for bandwidth runs, `Full` when the
    /// durability oracles need real bytes to compare.
    pub mode: DataMode,
    /// Record acked writes during the run and audit every invariant
    /// oracle after quiescence.
    pub oracles: bool,
    /// Record causal spans.
    pub traced: bool,
    /// Enable the telemetry registry and a windowed monitor (at
    /// [`crate::runreport::RUN_REPORT_WINDOW_NS`]) and collect a
    /// unified [`crate::runreport::RunReport`] into the result.
    /// Telemetry is an observer: the digest must match an
    /// untelemetered run's exactly.
    pub telemetry: bool,
    /// Run the background scrubber during the faulted phase: one full
    /// resumable pass in [`SCRUB_WAVE_UNITS`]-unit waves racing the
    /// foreground reads for the same disks.  Part of the schedule (not
    /// an observer): scrub waves shift the digest like any other work.
    pub scrub: bool,
    /// Let terminally-failed reads complete as unavailable instead of
    /// panicking the driver — the rot-beyond-redundancy scenarios where
    /// the durability oracle, not the benchmark, delivers the verdict.
    pub tolerate_unavailable: bool,
}

impl Default for FaultedOpts {
    fn default() -> Self {
        FaultedOpts {
            plan: PlanSource::Builtin,
            mode: DataMode::Sized,
            oracles: false,
            traced: false,
            telemetry: false,
            scrub: false,
            tolerate_unavailable: false,
        }
    }
}

/// Result of one faulted run.
#[derive(Debug, Clone)]
pub struct FaultedReport {
    /// Which scenario ran.
    pub scenario: FaultedScenario,
    /// Healthy write phase.
    pub write: PhaseResult,
    /// Read phase under failure.
    pub read: PhaseResult,
    /// Client-side retry counters (topmost interface layer).
    pub retry: RetryStats,
    /// Rebuild outcome, if a crash fired.
    pub rebuild: Option<RebuildReport>,
    /// Seconds from the crash firing to the rebuild movement draining.
    pub redundancy_restored_secs: Option<f64>,
    /// Post-quiescence invariant audit (only with
    /// [`FaultedOpts::oracles`]): acked-durability and reconstruction
    /// read-back, redundancy restoration, and the owning interface's
    /// consistency checks.
    pub oracles: Option<OracleReport>,
    /// End-to-end checksum activity at quiescence (after any oracle
    /// read-back): verifications, rot detections, transparent repairs,
    /// unrepairable extents, corrupt bytes served (always zero unless
    /// the verified-read path is broken).
    pub csum: daos_core::CsumStats,
    /// Scrubber progress (only with [`FaultedOpts::scrub`]).
    pub scrub: Option<daos_core::ScrubReport>,
    /// Unified telemetry report (only with [`FaultedOpts::telemetry`]),
    /// evaluated against [`crate::runreport::faulted_slo_rules`].
    pub run_report: Option<crate::runreport::RunReport>,
    /// Replay digest over completions *and* fired faults (including the
    /// installed schedule itself).
    pub digest: u64,
}

/// The two-run comparison for one faulted scenario.
#[derive(Debug, Clone)]
pub struct FaultedReplay {
    /// Both runs, from fresh state each.
    pub runs: [FaultedReport; 2],
}

impl FaultedReplay {
    /// Bit-identical digests, bandwidths, retry counters, rebuild
    /// reports and restore latencies across both runs.
    pub fn deterministic(&self) -> bool {
        let [a, b] = &self.runs;
        a.digest == b.digest
            && a.write.bandwidth() == b.write.bandwidth()
            && a.read.bandwidth() == b.read.bandwidth()
            && a.retry == b.retry
            && a.rebuild == b.rebuild
            && a.redundancy_restored_secs == b.redundancy_restored_secs
            && a.csum == b.csum
            && a.scrub == b.scrub
    }
}

/// Run `scen` twice from fresh state and report both runs.
pub fn replay_faulted(spec: &RunSpec, scen: FaultedScenario, cal: &Calibration) -> FaultedReplay {
    FaultedReplay {
        runs: [run_faulted(spec, scen, cal), run_faulted(spec, scen, cal)],
    }
}

/// What the fault-aware driver observed during the faulted phase.
struct FaultOutcome {
    rebuild: Option<RebuildReport>,
    crash_at: Option<SimTime>,
    restored_at: Option<SimTime>,
}

/// The fault-aware phase world: the op-chaining logic of the standard
/// driver plus the mapping from fired fault events onto DAOS state and
/// the crash → detect → rebuild → restored chain.
struct FaultedWorld<'a, W: ProcWorkload> {
    wl: &'a mut W,
    daos: &'a Rc<RefCell<DaosSystem>>,
    next_idx: Vec<usize>,
    inflight: Vec<usize>,
    ops_per_proc: usize,
    remaining: usize,
    last_end: SimTime,
    out: FaultOutcome,
}

impl<W: ProcWorkload> World for FaultedWorld<'_, W> {
    fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler) {
        if op == OP_REBUILD_TRIGGER {
            // detection delay elapsed: rescan + start the data movement
            let (report, movement) = self.daos.borrow_mut().rebuild();
            self.out.rebuild = Some(report);
            sched.submit(movement, OP_REBUILD_DONE);
            return;
        }
        if op == OP_REBUILD_DONE {
            self.out.restored_at = Some(sched.now());
            return;
        }
        if op == OP_SCRUB_WAVE {
            // wave drained: resume the scan from its cursor, stopping
            // after one full pass over the stored units
            if let Some(wave) = self.daos.borrow_mut().scrub_wave(SCRUB_WAVE_UNITS) {
                sched.submit(wave, OP_SCRUB_WAVE);
            }
            return;
        }
        let proc = op.0 as usize;
        self.last_end = sched.now();
        self.inflight[proc] -= 1;
        let idx = self.next_idx[proc];
        if idx < self.ops_per_proc {
            self.next_idx[proc] += 1;
            self.inflight[proc] += 1;
            let step = self.wl.op(proc, idx);
            sched.submit(step, OpId(proc as u64));
        } else if self.inflight[proc] == 0 {
            self.remaining -= 1;
        }
    }

    // simlint::panic_root — fault handler: must never panic
    fn on_fault(&mut self, event: &FaultEvent, sched: &mut Scheduler) {
        match event.action {
            FaultAction::TargetCrash(payload) => {
                self.daos
                    .borrow_mut()
                    .crash_target(TargetId::unpack(payload));
                if self.out.crash_at.is_none() {
                    self.out.crash_at = Some(sched.now());
                    sched.submit(Step::delay(REBUILD_DETECT_NS), OP_REBUILD_TRIGGER);
                }
            }
            FaultAction::TargetRestart(payload) => {
                self.daos
                    .borrow_mut()
                    .restart_target(TargetId::unpack(payload));
            }
            FaultAction::DelayedCompletion { payload, extra_ns } => {
                self.daos
                    .borrow_mut()
                    .set_extra_delay(payload as u16, extra_ns);
            }
            FaultAction::BitRot { locus, shard } => {
                // silent: no detection chain here — a verified read or
                // a scrub wave has to find the damage on its own
                self.daos.borrow_mut().apply_bit_rot(locus, shard);
            }
            // capacity scaling is applied by the engine before dispatch;
            // membership events belong to the rebalance family's world
            FaultAction::SlowDisk { .. }
            | FaultAction::NicBrownout { .. }
            | FaultAction::AddServer { .. }
            | FaultAction::DrainServer { .. } => {}
        }
    }
}

/// Like [`crate::driver::run_phase`], but fault-aware: setup barrier,
/// measured op phase with the installed fault plan live, no finalize
/// (the faulted family's workloads are unbuffered).
fn run_faulted_phase<W: ProcWorkload>(
    sched: &mut Scheduler,
    wl: &mut W,
    daos: &Rc<RefCell<DaosSystem>>,
    scrub: bool,
) -> (PhaseResult, FaultOutcome) {
    struct Barrier {
        remaining: usize,
    }
    impl World for Barrier {
        fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {
            self.remaining -= 1;
        }
    }
    let procs = wl.procs();
    let ops_per_proc = wl.ops_per_proc();
    let mut setup = Barrier { remaining: procs };
    for p in 0..procs {
        let step = wl.setup(p);
        sched.submit(step, OpId(p as u64));
    }
    run(sched, &mut setup);
    assert_eq!(setup.remaining, 0, "setup completions");

    let t0 = sched.now();
    let qd = wl.queue_depth().max(1);
    let initial = qd.min(ops_per_proc);
    let mut world = FaultedWorld {
        wl,
        daos,
        next_idx: vec![initial; procs],
        inflight: vec![initial; procs],
        ops_per_proc,
        remaining: procs,
        last_end: t0,
        out: FaultOutcome {
            rebuild: None,
            crash_at: None,
            restored_at: None,
        },
    };
    for p in 0..procs {
        let stagger = start_stagger_ns(p);
        for i in 0..initial {
            let step = world.wl.op(p, i);
            sched.submit_after(stagger, step, OpId(p as u64));
        }
    }
    if scrub {
        let mut d = daos.borrow_mut();
        d.scrub_start();
        if let Some(wave) = d.scrub_wave(SCRUB_WAVE_UNITS) {
            sched.submit(wave, OP_SCRUB_WAVE);
        }
    }
    run(sched, &mut world);
    assert_eq!(world.remaining, 0, "all processes finished");
    let t_end = world.last_end;
    let total_ops = procs * ops_per_proc;
    (
        PhaseResult {
            bytes: total_ops as f64 * world.wl.bytes_per_op(),
            seconds: t_end.secs_since(t0),
            ops: total_ops,
        },
        world.out,
    )
}

/// The failure schedule for a scenario, anchored at `t0` (the boundary
/// between the healthy write phase and the faulted read phase).
fn fault_plan(scen: FaultedScenario, t0: SimTime, topo: &Topology) -> FaultPlan {
    let mut plan = FaultPlan::new();
    // an engine (whole server) crash: every target of server 1 goes down
    // at once, so a large fraction of shard groups run degraded until
    // the rebuild re-protects them
    let crash_server = |plan: &mut FaultPlan, at: SimTime| {
        for t in 0..topo.cal.targets_per_server as u16 {
            plan.at(
                at,
                FaultAction::TargetCrash(
                    TargetId {
                        server: 1,
                        target: t,
                    }
                    .pack(),
                ),
            );
        }
    };
    match scen {
        FaultedScenario::IorEasyRp2 => {
            // transient slow disk on a *different* server, then a crash,
            // then the disk recovers
            let disk = topo.servers[0].nvme_r[0];
            plan.at(
                t0 + MS,
                FaultAction::SlowDisk {
                    resource: disk,
                    scale: 0.4,
                },
            );
            crash_server(&mut plan, t0 + 2 * MS);
            plan.at(
                t0 + 8 * MS,
                FaultAction::SlowDisk {
                    resource: disk,
                    scale: 1.0,
                },
            );
        }
        FaultedScenario::IorHardEc2p1 => {
            // server 0 completions slow down, target on server 1 dies,
            // the slowdown clears
            plan.at(
                t0 + MS,
                FaultAction::DelayedCompletion {
                    payload: 0,
                    extra_ns: 200_000,
                },
            );
            crash_server(&mut plan, t0 + 2 * MS);
            plan.at(
                t0 + 10 * MS,
                FaultAction::DelayedCompletion {
                    payload: 0,
                    extra_ns: 0,
                },
            );
        }
        FaultedScenario::FieldIoFaulted => {
            let nic = topo.servers[0].nic_tx;
            plan.at(
                t0 + MS,
                FaultAction::NicBrownout {
                    resource: nic,
                    scale: 0.3,
                },
            );
            crash_server(&mut plan, t0 + 2 * MS);
            plan.at(
                t0 + 6 * MS,
                FaultAction::NicBrownout {
                    resource: nic,
                    scale: 1.0,
                },
            );
        }
    }
    plan
}

/// Execute one faulted scenario: healthy write phase, install the fault
/// plan at the phase boundary, faulted read phase, collect the report.
// simlint::digest_root — faulted-run double-replay digest entry
pub fn run_faulted(spec: &RunSpec, scen: FaultedScenario, cal: &Calibration) -> FaultedReport {
    run_faulted_inner(spec, scen, cal, false).0
}

/// Like [`run_faulted`], but with span recording on: the returned
/// exports carry the causal trace of the whole run, including the retry
/// attempts and rebuild data movement nested under the ops (and marker
/// chain) that caused them.  The report itself — digest included — is
/// identical to the untraced run's.
pub fn run_faulted_traced(
    spec: &RunSpec,
    scen: FaultedScenario,
    cal: &Calibration,
) -> (FaultedReport, crate::tracing::SpanExports) {
    let (report, exports) = run_faulted_inner(spec, scen, cal, true);
    (report, exports.expect("traced run exports spans"))
}

fn run_faulted_inner(
    spec: &RunSpec,
    scen: FaultedScenario,
    cal: &Calibration,
    traced: bool,
) -> (FaultedReport, Option<crate::tracing::SpanExports>) {
    let opts = FaultedOpts {
        traced,
        ..FaultedOpts::default()
    };
    run_faulted_with(spec, scen, cal, &opts)
}

/// Execute one faulted scenario under explicit [`FaultedOpts`]: the
/// general entry point behind [`run_faulted`], the chaos swarm and the
/// shrinker's replay oracle.
// simlint::digest_root — chaos/faulted replay digest entry
pub fn run_faulted_with(
    spec: &RunSpec,
    scen: FaultedScenario,
    cal: &Calibration,
    opts: &FaultedOpts,
) -> (FaultedReport, Option<crate::tracing::SpanExports>) {
    let mut sched = make_sched(spec, false);
    if opts.traced {
        sched.enable_spans();
    }
    if opts.telemetry {
        sched.set_monitor(simkit::Monitor::windowed(
            crate::runreport::RUN_REPORT_WINDOW_NS,
        ));
        sched.enable_telemetry(crate::runreport::RUN_REPORT_WINDOW_NS);
    }
    let cspec = ClusterSpec::new(spec.servers, spec.client_nodes).with_cal(cal.clone());
    let topo = cspec.build(&mut sched);
    let mut daos_sys = DaosSystem::deploy(&topo, &mut sched, spec.servers, opts.mode);
    if opts.oracles {
        daos_sys.enable_ledger();
    }
    let (cid, s) = daos_sys.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos_sys));
    let plan_for = |t0: SimTime| match &opts.plan {
        PlanSource::Builtin => fault_plan(scen, t0, &topo),
        PlanSource::Fixed(plan) => plan.shifted(t0),
    };

    let (write, read, retry, out, iface_oracle) = match scen {
        FaultedScenario::IorEasyRp2 | FaultedScenario::IorHardEc2p1 => {
            let mut cfg = IorConfig::new(spec.procs(), spec.client_nodes, spec.ops_per_proc);
            cfg.transfer_size = spec.transfer;
            cfg.queue_depth = spec.queue_depth;
            cfg.tolerate_unavailable = opts.tolerate_unavailable;
            let oclass = if scen == FaultedScenario::IorEasyRp2 {
                ObjectClass::RP_2
            } else {
                cfg.file_per_proc = false;
                cfg.access = AccessOrder::Random;
                ObjectClass::EC_2P1
            };
            let backend = IorBackend::Daos {
                daos: daos.clone(),
                cid,
                oclass,
            };
            let mut ior = Ior::new(cfg, backend);
            ior.set_retry_policy(RetryPolicy::default(), spec.seed);
            let write = run_phase(&mut sched, &mut ior);
            sched.install_faults(plan_for(sched.now()));
            ior.set_phase(Phase::Read);
            let (read, out) = run_faulted_phase(&mut sched, &mut ior, &daos, opts.scrub);
            (write, read, ior.retry_stats(), out, None)
        }
        FaultedScenario::FieldIoFaulted => {
            // EC_2P1 data, RP_2 index: an unprotected (SX) TOC shard on
            // the crashed server would be unrecoverable data loss
            let (mut fio, s) =
                FieldIo::with_classes(daos.clone(), 0, cid, ObjectClass::EC_2P1, ObjectClass::RP_2)
                    .expect("fieldio");
            exec(&mut sched, s);
            fio.set_retry_policy(RetryPolicy::default(), spec.seed);
            let mut wl = crate::workloads::FieldIoWorkload::new(
                fio,
                spec.procs(),
                spec.client_nodes,
                spec.ops_per_proc,
                spec.transfer,
            );
            let write = run_phase(&mut sched, &mut wl);
            sched.install_faults(plan_for(sched.now()));
            wl.phase = Phase::Read;
            let (read, out) = run_faulted_phase(&mut sched, &mut wl, &daos, opts.scrub);
            let iface = opts.oracles.then(|| wl.fio.verify_consistency(0));
            (write, read, wl.fio.retry_stats(), out, iface)
        }
    };

    let oracles = opts.oracles.then(|| {
        let mut report = iface_oracle.unwrap_or_default();
        let mut d = daos.borrow_mut();
        report.merge(d.verify_durability(0));
        report.merge(d.verify_redundancy());
        report
    });
    let redundancy_restored_secs = match (out.crash_at, out.restored_at) {
        (Some(c), Some(r)) => Some(r.secs_since(c)),
        _ => None,
    };
    // snapshot after the oracle read-back so audit-triggered repairs
    // are included
    let csum = daos.borrow().csum_stats();
    let scrub = opts.scrub.then(|| daos.borrow().scrub_progress());
    let run_report = opts.telemetry.then(|| {
        // fold the layer-owned totals into the registry before export:
        // retry attempts/timeouts/circuit opens, the rebuild outcome and
        // the checksum/scrub activity only the storage layers know
        let at = sched.now();
        retry.publish(sched.telemetry_mut(), at);
        if let Some(rb) = &out.rebuild {
            rb.publish(sched.telemetry_mut(), at);
        }
        csum.publish(sched.telemetry_mut(), at);
        if let Some(sr) = &scrub {
            sr.publish(sched.telemetry_mut(), at);
        }
        crate::runreport::RunReport::collect(
            &sched,
            scen.name(),
            &write,
            &read,
            &crate::runreport::faulted_slo_rules(),
        )
    });
    let exports = opts
        .traced
        .then(|| crate::tracing::SpanExports::collect(&sched));
    (
        FaultedReport {
            scenario: scen,
            write,
            read,
            retry,
            rebuild: out.rebuild,
            redundancy_restored_secs,
            oracles,
            csum,
            scrub,
            run_report,
            digest: sched.digest(),
        },
        exports,
    )
}

/// Render faulted reports as a JSON array (hand-rolled: stable field
/// order, no external dependencies) — the bandwidth-under-failure
/// artifact CI uploads.
pub fn render_json(reports: &[FaultedReport]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        let rb = r.rebuild.clone().unwrap_or_default();
        s.push_str(&format!(
            concat!(
                "  {{\"scenario\": \"{}\", \"write_bw_gib\": {:.3}, ",
                "\"read_bw_gib\": {:.3}, \"attempts\": {}, \"retries\": {}, ",
                "\"timeouts\": {}, \"gave_up\": {}, \"shards_rebuilt\": {}, ",
                "\"shards_lost\": {}, \"redundancy_restored_ms\": {}, ",
                "\"digest\": \"{:#018x}\"}}{}\n"
            ),
            r.scenario.name(),
            r.write.bandwidth() / cluster::GIB,
            r.read.bandwidth() / cluster::GIB,
            r.retry.attempts,
            r.retry.retries,
            r.retry.timeouts,
            r.retry.gave_up,
            rb.shards_rebuilt,
            rb.shards_lost,
            r.redundancy_restored_secs
                .map_or("null".to_string(), |v| format!("{:.3}", v * 1e3)),
            r.digest,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> RunSpec {
        let mut spec = default_faulted_spec();
        spec.ops_per_proc = 32;
        spec
    }

    #[test]
    fn rp2_failover_under_crash() {
        let r = run_faulted(
            &small_spec(),
            FaultedScenario::IorEasyRp2,
            &Calibration::default(),
        );
        // the crash was detected and absorbed by retries, not failures
        assert!(r.retry.retries >= 1, "{:?}", r.retry);
        assert_eq!(r.retry.gave_up, 0, "{:?}", r.retry);
        // bounded by the configured policy: every op (both phases) got
        // at most max_attempts tries
        let policy = RetryPolicy::default();
        let total_ops = (r.write.ops + r.read.ops) as u64;
        assert!(r.retry.attempts <= total_ops * policy.max_attempts as u64);
        assert!(r.retry.attempts >= total_ops);
        // the rebuild re-protected the crashed target's replicas
        let rb = r.rebuild.expect("rebuild ran");
        assert!(rb.shards_rebuilt > 0, "{rb:?}");
        assert_eq!(rb.shards_lost, 0, "RP_2 survives one crash: {rb:?}");
        let restored = r.redundancy_restored_secs.expect("restore time");
        assert!(restored > 0.0 && restored < r.read.seconds + 1.0);
        // bandwidth under failure is still real bandwidth
        assert!(r.read.bandwidth() > 0.0);
    }

    #[test]
    fn ec2p1_reconstruction_under_crash() {
        let r = run_faulted(
            &small_spec(),
            FaultedScenario::IorHardEc2p1,
            &Calibration::default(),
        );
        assert!(r.retry.retries >= 1, "{:?}", r.retry);
        assert_eq!(r.retry.gave_up, 0, "{:?}", r.retry);
        let rb = r.rebuild.expect("rebuild ran");
        assert!(rb.shards_rebuilt > 0, "{rb:?}");
        assert_eq!(rb.shards_lost, 0, "EC_2P1 survives one crash: {rb:?}");
        assert!(r.redundancy_restored_secs.is_some());
    }

    #[test]
    fn fieldio_faulted_replays_identically() {
        let rep = replay_faulted(
            &small_spec(),
            FaultedScenario::FieldIoFaulted,
            &Calibration::default(),
        );
        assert!(rep.deterministic(), "{rep:?}");
        assert!(rep.runs[0].retry.retries >= 1);
    }

    #[test]
    fn faulted_digest_differs_from_plan_change() {
        // same scenario, but the digest folds in the fired faults: a
        // faulted run can never collide with its healthy twin
        let spec = small_spec();
        let cal = Calibration::default();
        let a = run_faulted(&spec, FaultedScenario::IorEasyRp2, &cal);
        let b = run_faulted(&spec, FaultedScenario::IorEasyRp2, &cal);
        assert_eq!(a.digest, b.digest, "replays agree");
        let c = run_faulted(&spec, FaultedScenario::IorHardEc2p1, &cal);
        assert_ne!(a.digest, c.digest, "different plans diverge");
    }

    #[test]
    fn rp2_trace_shows_retries_and_rebuild_under_ops() {
        let cal = Calibration::default();
        let (r, exports) = run_faulted_traced(&small_spec(), FaultedScenario::IorEasyRp2, &cal);
        // tracing never perturbs the replay digest
        let plain = run_faulted(&small_spec(), FaultedScenario::IorEasyRp2, &cal);
        assert_eq!(r.digest, plain.digest, "spans changed the schedule");
        // the rebuild data movement and the client retries both appear
        // as spans on the causal timeline
        let layers = exports.layers();
        assert!(layers.contains(&"rebuild"), "no rebuild span: {layers:?}");
        assert!(
            exports.chrome_json.contains("\"cat\":\"retry\""),
            "no retry span in the trace"
        );
        // retried work is parented under the op that caused it: every
        // retry event names a non-root parent span
        let orphan = exports
            .chrome_json
            .split("},{")
            .filter(|ev| ev.contains("\"cat\":\"retry\""))
            .any(|ev| ev.contains("\"parent\":0,"));
        assert!(!orphan, "retry span without an enclosing op");
        // attempt ordinals above zero mark the re-driven work
        assert!(
            exports.chrome_json.contains("\"attempt\":1"),
            "no attempt>0 span recorded"
        );
        // fired faults land as instant marks
        assert!(exports.chrome_json.contains("\"cat\":\"fault\""));
    }

    #[test]
    fn json_artifact_is_well_formed() {
        let r = run_faulted(
            &small_spec(),
            FaultedScenario::IorEasyRp2,
            &Calibration::default(),
        );
        let json = render_json(&[r]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"scenario\""));
        assert!(json.contains("\"redundancy_restored_ms\""));
    }
}
