//! Deterministic fault injection: scheduled events the engine applies at
//! exact simulated times.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s built before (or
//! during) a run and installed on the [`Scheduler`](crate::Scheduler) with
//! [`Scheduler::install_faults`](crate::Scheduler::install_faults).  The
//! run loop fires each event when simulated time reaches it **while work
//! is pending** — a run that drains before a fault's time completes
//! normally and leaves the fault armed for the next run phase, so untimed
//! setup barriers never fast-forward through the failure schedule.
//!
//! Two event kinds are applied by the engine itself (capacity scaling for
//! [`FaultAction::SlowDisk`] and [`FaultAction::NicBrownout`]); the rest
//! are *domain* events the engine only times and digests — the
//! [`World`](crate::World) receives every fired event through
//! [`World::on_fault`](crate::World::on_fault) and maps crash/restart/
//! delay payloads onto its own storage-system state.
//!
//! Every fired event is folded into the replay digest with a tag byte, so
//! a faulted run's digest covers the failure schedule as well as the op
//! completion stream: replaying with a different plan (or the same plan
//! firing at different times) is detected exactly like any other schedule
//! divergence.

use crate::json::{self, Json};
use crate::step::ResourceId;
use crate::time::SimTime;

/// What a fault event does when it fires.
///
/// `TargetCrash`/`TargetRestart`/`DelayedCompletion` carry an opaque
/// `u64` payload interpreted by the [`World`](crate::World) (the DAOS
/// layer packs a `(server, target)` pair; a baseline may pack an OST
/// index).  `SlowDisk`/`NicBrownout` name an engine resource directly and
/// are applied by the scheduler as capacity scaling relative to the
/// resource's registered baseline — `scale: 1.0` restores full capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// A storage target fails: the world should mark it down and route
    /// around it (degraded reads, failover, rebuild).
    TargetCrash(u64),
    /// A previously-crashed target returns (reintegration).
    TargetRestart(u64),
    /// Transient slow disk: scale the resource's capacity to
    /// `baseline × scale`.  Must be `> 0` — a dead device is a
    /// [`FaultAction::TargetCrash`], not a zero-rate flow (which would
    /// stall the run).
    SlowDisk {
        /// The degraded device resource.
        resource: ResourceId,
        /// Fraction of baseline capacity (0 < scale, 1.0 = restored).
        scale: f64,
    },
    /// Network brownout: like [`FaultAction::SlowDisk`] but for a NIC
    /// direction resource.  Kept distinct so plans read like the failure
    /// they model and reports can attribute slowdowns.
    NicBrownout {
        /// The degraded NIC resource.
        resource: ResourceId,
        /// Fraction of baseline capacity (0 < scale, 1.0 = restored).
        scale: f64,
    },
    /// Completions involving `payload` (world-interpreted, e.g. a server
    /// rank) take `extra_ns` longer until cleared with `extra_ns: 0`.
    DelayedCompletion {
        /// World-interpreted locator for the slow component.
        payload: u64,
        /// Added latency in nanoseconds (0 clears the fault).
        extra_ns: u64,
    },
    /// Membership change: a server joins the pool online.  A domain
    /// event like crash/restart — the world maps `server` onto its own
    /// membership state and starts a rebalance.
    AddServer {
        /// World-interpreted server rank to add.
        server: u64,
    },
    /// Membership change: a server starts draining (its targets keep
    /// serving while the world migrates their shards away).
    DrainServer {
        /// World-interpreted server rank to drain.
        server: u64,
    },
    /// Silent data corruption: flip stored bytes in place without any
    /// membership or capacity signal.  `locus` selects which stored unit
    /// rots (world-interpreted, e.g. hashed onto a container/object/
    /// chunk) and `shard` selects which redundant copy of it (replica
    /// index or EC cell).  The world only learns about the damage when a
    /// verified read or scrub recomputes checksums.
    BitRot {
        /// World-interpreted locator for the rotten unit.
        locus: u64,
        /// Which redundant copy of the unit rots.
        shard: u64,
    },
}

/// One scheduled fault: an action firing at an exact simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time at which the event fires (or as soon after as work
    /// is pending).
    pub at: SimTime,
    /// Plan-assigned sequence number; tie-breaks simultaneous events and
    /// is folded into the replay digest with the firing time.
    pub id: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic failure schedule: fault events ordered by `(at, id)`.
///
/// Plans are plain data — building one performs no I/O and consults no
/// clock or RNG, so the same construction code always yields the same
/// schedule.  Randomised schedules seed a
/// [`SplitMix64`](crate::SplitMix64) and derive times from it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `action` at absolute sim time `at`; returns the event id.
    pub fn at(&mut self, at: SimTime, action: FaultAction) -> u64 {
        let id = self.events.len() as u64;
        self.events.push(FaultEvent { at, id, action });
        id
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by `(at, id)` (stable — simultaneous events keep
    /// insertion order).
    pub fn into_events(mut self) -> Vec<FaultEvent> {
        self.events.sort_by_key(|e| (e.at, e.id));
        self.events
    }

    /// The scheduled events in insertion order (not yet sorted).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The same plan with every event time moved `base` later,
    /// preserving ids.  Plans authored relative to a phase boundary
    /// (chaos schedules use offset 0 as the boundary) are anchored onto
    /// the live schedule this way at install time.
    pub fn shifted(&self, base: SimTime) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .map(|e| FaultEvent {
                    at: SimTime(base.0 + e.at.0),
                    id: e.id,
                    action: e.action,
                })
                .collect(),
        }
    }

    /// Rebuild a plan from explicit events, **preserving their ids**.
    ///
    /// This is the shrinker's constructor: a subset of a failing plan must
    /// replay with the surviving events' original `(at, id)` digest folds,
    /// so ids are kept rather than re-numbered.  [`FaultPlan::at`] must
    /// not be mixed with this (it would reuse low ids); shrunken plans are
    /// data, not builders.
    pub fn from_events(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { events }
    }

    /// Serialize to the schedule-file JSON format (compact, stable field
    /// order; see `from_json` for the schema).
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("at_ns".into(), Json::num_u64(e.at.0)),
                    ("id".into(), Json::num_u64(e.id)),
                    ("action".into(), action_to_json(&e.action)),
                ])
            })
            .collect();
        Json::Obj(vec![("events".into(), Json::Arr(events))]).render()
    }

    /// Parse a plan from the schedule-file JSON format:
    ///
    /// ```json
    /// {"events":[{"at_ns":2000000,"id":0,
    ///             "action":{"kind":"target_crash","payload":65536}}]}
    /// ```
    ///
    /// Action kinds: `target_crash`/`target_restart` (`payload`),
    /// `slow_disk`/`nic_brownout` (`resource`, `scale`),
    /// `delayed_completion` (`payload`, `extra_ns`).  `scale` uses Rust's
    /// shortest round-trip `f64` formatting, so `to_json` → `from_json` is
    /// exact.
    pub fn from_json(input: &str) -> Result<FaultPlan, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let events = doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("missing \"events\" array")?;
        let mut out = Vec::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            out.push(event_from_json(ev).map_err(|e| format!("event {i}: {e}"))?);
        }
        Ok(FaultPlan::from_events(out))
    }
}

fn action_to_json(action: &FaultAction) -> Json {
    match action {
        FaultAction::TargetCrash(p) => Json::Obj(vec![
            ("kind".into(), Json::Str("target_crash".into())),
            ("payload".into(), Json::num_u64(*p)),
        ]),
        FaultAction::TargetRestart(p) => Json::Obj(vec![
            ("kind".into(), Json::Str("target_restart".into())),
            ("payload".into(), Json::num_u64(*p)),
        ]),
        FaultAction::SlowDisk { resource, scale } => Json::Obj(vec![
            ("kind".into(), Json::Str("slow_disk".into())),
            ("resource".into(), Json::num_u64(resource.0 as u64)),
            ("scale".into(), Json::num_f64(*scale)),
        ]),
        FaultAction::NicBrownout { resource, scale } => Json::Obj(vec![
            ("kind".into(), Json::Str("nic_brownout".into())),
            ("resource".into(), Json::num_u64(resource.0 as u64)),
            ("scale".into(), Json::num_f64(*scale)),
        ]),
        FaultAction::DelayedCompletion { payload, extra_ns } => Json::Obj(vec![
            ("kind".into(), Json::Str("delayed_completion".into())),
            ("payload".into(), Json::num_u64(*payload)),
            ("extra_ns".into(), Json::num_u64(*extra_ns)),
        ]),
        FaultAction::AddServer { server } => Json::Obj(vec![
            ("kind".into(), Json::Str("add_server".into())),
            ("server".into(), Json::num_u64(*server)),
        ]),
        FaultAction::DrainServer { server } => Json::Obj(vec![
            ("kind".into(), Json::Str("drain_server".into())),
            ("server".into(), Json::num_u64(*server)),
        ]),
        FaultAction::BitRot { locus, shard } => Json::Obj(vec![
            ("kind".into(), Json::Str("bit_rot".into())),
            ("locus".into(), Json::num_u64(*locus)),
            ("shard".into(), Json::num_u64(*shard)),
        ]),
    }
}

fn event_from_json(ev: &Json) -> Result<FaultEvent, String> {
    let at = ev
        .get("at_ns")
        .and_then(Json::as_u64)
        .ok_or("missing u64 \"at_ns\"")?;
    let id = ev
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing u64 \"id\"")?;
    let action = ev.get("action").ok_or("missing \"action\"")?;
    let kind = action
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing action \"kind\"")?;
    let payload = |name: &str| -> Result<u64, String> {
        action
            .get(name)
            .and_then(Json::as_u64)
            .ok_or(format!("missing u64 \"{name}\""))
    };
    let action = match kind {
        "target_crash" => FaultAction::TargetCrash(payload("payload")?),
        "target_restart" => FaultAction::TargetRestart(payload("payload")?),
        "slow_disk" | "nic_brownout" => {
            let resource = payload("resource")?;
            let resource = ResourceId(
                u32::try_from(resource).map_err(|_| "resource out of range".to_string())?,
            );
            let scale = action
                .get("scale")
                .and_then(Json::as_f64)
                .ok_or("missing f64 \"scale\"")?;
            if !(scale > 0.0 && scale.is_finite()) {
                return Err(format!("scale must be finite and > 0, got {scale}"));
            }
            if kind == "slow_disk" {
                FaultAction::SlowDisk { resource, scale }
            } else {
                FaultAction::NicBrownout { resource, scale }
            }
        }
        "delayed_completion" => FaultAction::DelayedCompletion {
            payload: payload("payload")?,
            extra_ns: payload("extra_ns")?,
        },
        "add_server" => FaultAction::AddServer {
            server: payload("server")?,
        },
        "drain_server" => FaultAction::DrainServer {
            server: payload("server")?,
        },
        "bit_rot" => FaultAction::BitRot {
            locus: payload("locus")?,
            shard: payload("shard")?,
        },
        other => return Err(format!("unknown action kind \"{other}\"")),
    };
    Ok(FaultEvent {
        at: SimTime(at),
        id,
        action,
    })
}

impl FaultEvent {
    /// Append this event's canonical byte encoding (for the schedule
    /// header fold of the replay digest): scheduled time, id, an action
    /// tag byte, and the action's two parameters as little-endian `u64`s
    /// (`f64` scales via `to_bits`, absent parameters as zero).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        let (tag, a, b): (u8, u64, u64) = match self.action {
            FaultAction::TargetCrash(p) => (1, p, 0),
            FaultAction::TargetRestart(p) => (2, p, 0),
            FaultAction::SlowDisk { resource, scale } => (3, resource.0 as u64, scale.to_bits()),
            FaultAction::NicBrownout { resource, scale } => (4, resource.0 as u64, scale.to_bits()),
            FaultAction::DelayedCompletion { payload, extra_ns } => (5, payload, extra_ns),
            FaultAction::AddServer { server } => (6, server, 0),
            FaultAction::DrainServer { server } => (7, server, 0),
            FaultAction::BitRot { locus, shard } => (8, locus, shard),
        };
        out.extend_from_slice(&self.at.0.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_events_by_time_then_id() {
        let mut p = FaultPlan::new();
        let a = p.at(SimTime::from_millis(5), FaultAction::TargetCrash(1));
        let b = p.at(SimTime::from_millis(2), FaultAction::TargetCrash(2));
        let c = p.at(SimTime::from_millis(5), FaultAction::TargetRestart(1));
        assert_eq!((a, b, c), (0, 1, 2));
        let evs = p.into_events();
        assert_eq!(evs[0].id, 1, "earliest time first");
        assert_eq!(evs[1].id, 0, "ties keep insertion order");
        assert_eq!(evs[2].id, 2);
    }

    fn sample_plan() -> FaultPlan {
        let mut p = FaultPlan::new();
        p.at(SimTime::from_millis(2), FaultAction::TargetCrash(1 << 16));
        p.at(
            SimTime::from_millis(3),
            FaultAction::SlowDisk {
                resource: ResourceId(7),
                scale: 0.3,
            },
        );
        p.at(
            SimTime::from_millis(4),
            FaultAction::NicBrownout {
                resource: ResourceId(9),
                scale: 0.1 + 0.2, // not exactly representable: exercises f64 round-trip
            },
        );
        p.at(
            SimTime::from_millis(5),
            FaultAction::DelayedCompletion {
                payload: 3,
                extra_ns: 250_000,
            },
        );
        p.at(SimTime::from_millis(6), FaultAction::TargetRestart(1 << 16));
        p.at(
            SimTime::from_millis(7),
            FaultAction::AddServer { server: 4 },
        );
        p.at(
            SimTime::from_millis(8),
            FaultAction::DrainServer { server: 1 },
        );
        p.at(
            SimTime::from_millis(9),
            FaultAction::BitRot {
                locus: 0xdead_beef,
                shard: 2,
            },
        );
        p
    }

    #[test]
    fn json_round_trip_is_exact() {
        let p = sample_plan();
        let json = p.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, p);
        // Byte-identical re-serialization: a saved schedule re-emitted
        // after a round trip is the same file.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn json_round_trip_preserves_large_times_and_ids() {
        let mut p = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime(u64::MAX - 5),
            id: u64::MAX - 9,
            action: FaultAction::TargetCrash(u64::MAX),
        }]);
        // from_events preserves ids; at() would have restarted at 0.
        p = FaultPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(p.events()[0].at, SimTime(u64::MAX - 5));
        assert_eq!(p.events()[0].id, u64::MAX - 9);
        assert_eq!(p.events()[0].action, FaultAction::TargetCrash(u64::MAX));
    }

    #[test]
    fn from_json_rejects_malformed_schedules() {
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json("{\"events\":[{}]}").is_err());
        assert!(FaultPlan::from_json(
            "{\"events\":[{\"at_ns\":1,\"id\":0,\"action\":{\"kind\":\"meteor\"}}]}"
        )
        .is_err());
        // Zero or negative scales would stall the engine; reject at parse.
        assert!(FaultPlan::from_json(
            "{\"events\":[{\"at_ns\":1,\"id\":0,\"action\":{\"kind\":\"slow_disk\",\"resource\":1,\"scale\":0}}]}"
        )
        .is_err());
    }

    #[test]
    fn from_events_preserves_ids_for_subsets() {
        let all = sample_plan().into_events();
        let subset: Vec<FaultEvent> = all.iter().copied().skip(2).collect();
        let plan = FaultPlan::from_events(subset.clone());
        assert_eq!(plan.into_events(), subset);
    }

    #[test]
    fn encode_distinguishes_every_field() {
        let base = FaultEvent {
            at: SimTime(10),
            id: 4,
            action: FaultAction::SlowDisk {
                resource: ResourceId(2),
                scale: 0.5,
            },
        };
        let enc = |e: &FaultEvent| {
            let mut v = Vec::new();
            e.encode(&mut v);
            v
        };
        let mut other = base;
        other.at = SimTime(11);
        assert_ne!(enc(&base), enc(&other));
        other = base;
        other.id = 5;
        assert_ne!(enc(&base), enc(&other));
        other = base;
        other.action = FaultAction::NicBrownout {
            resource: ResourceId(2),
            scale: 0.5,
        };
        assert_ne!(enc(&base), enc(&other), "tag byte separates action kinds");
        other = base;
        other.action = FaultAction::SlowDisk {
            resource: ResourceId(2),
            scale: 0.25,
        };
        assert_ne!(enc(&base), enc(&other));
    }

    #[test]
    fn plan_construction_is_deterministic() {
        let build = || {
            let mut p = FaultPlan::new();
            p.at(
                SimTime::from_millis(1),
                FaultAction::DelayedCompletion {
                    payload: 3,
                    extra_ns: 200_000,
                },
            );
            p.at(
                SimTime::from_millis(4),
                FaultAction::SlowDisk {
                    resource: ResourceId(7),
                    scale: 0.25,
                },
            );
            p.into_events()
        };
        assert_eq!(build(), build());
    }
}
