//! Integration tests for the engine's performance features: event
//! coalescing, the banded fair-share solver, and their accuracy bounds.

use simkit::{run, OpId, Scheduler, SimTime, Step, World};

struct Collect(Vec<(u64, SimTime)>);
impl World for Collect {
    fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler) {
        self.0.push((op.0, sched.now()));
    }
}

/// A staggered closed-loop workload, run with given engine settings;
/// returns the makespan in seconds.
fn staggered_makespan(quantum_ns: u64, tol: f64) -> f64 {
    struct Loop {
        res: Vec<simkit::ResourceId>,
        left: Vec<u32>,
    }
    impl World for Loop {
        fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler) {
            let p = op.0 as usize;
            if self.left[p] > 0 {
                self.left[p] -= 1;
                let r = self.res[(p * 7 + self.left[p] as usize) % self.res.len()];
                sched.submit(Step::transfer(10.0, [r]), op);
            }
        }
    }
    let mut sched = Scheduler::new();
    sched.set_coalescing(quantum_ns);
    sched.set_fairshare_tolerance(tol);
    let res: Vec<_> = (0..8)
        .map(|i| sched.add_resource(format!("r{i}"), 100.0))
        .collect();
    let mut w = Loop {
        res: res.clone(),
        left: vec![20; 64],
    };
    for p in 0..64usize {
        let r = w.res[(p * 7 + 20) % w.res.len()];
        sched.submit_after(p as u64 * 1_000, Step::transfer(10.0, [r]), OpId(p as u64));
    }
    run(&mut sched, &mut w);
    sched.now().as_secs_f64()
}

#[test]
fn coalescing_and_band_preserve_makespan_within_percent() {
    let exact = staggered_makespan(0, 0.0);
    let fast = staggered_makespan(100_000, 0.02);
    let err = (fast - exact).abs() / exact;
    assert!(
        err < 0.03,
        "approximations moved the makespan by {:.2}% (exact {exact:.4}s, fast {fast:.4}s)",
        err * 100.0
    );
}

#[test]
fn coalescing_batches_near_simultaneous_completions() {
    // 16 flows whose exact completions differ by < 1 µs all land on one
    // timestamp under a 10 µs quantum.
    let mut sched = Scheduler::new();
    sched.set_coalescing(10_000);
    let r = sched.add_resource("r", 1e6);
    for i in 0..16u64 {
        // sizes differ by 0.001 units -> sub-µs completion differences
        // even at the fair-shared rate
        sched.submit(Step::transfer(1000.0 + i as f64 * 0.001, [r]), OpId(i));
    }
    let mut w = Collect(Vec::new());
    run(&mut sched, &mut w);
    let t0 = w.0[0].1;
    assert!(w.0.iter().all(|&(_, t)| t == t0), "one batch: {:?}", w.0);
}

#[test]
fn zero_quantum_keeps_exact_times() {
    let mut sched = Scheduler::new();
    let r = sched.add_resource("r", 100.0);
    sched.submit(Step::transfer(50.0, [r]), OpId(1));
    let mut w = Collect(Vec::new());
    run(&mut sched, &mut w);
    assert_eq!(w.0[0].1.as_nanos(), 500_000_000);
}

#[test]
fn banded_solver_never_exceeds_capacity_grossly() {
    // With a 5% band, aggregate throughput may deviate from exact by at
    // most the band.
    let mut sched = Scheduler::with_monitor();
    sched.set_fairshare_tolerance(0.05);
    let r = sched.add_resource("r", 1000.0);
    for i in 0..32u64 {
        sched.submit(Step::transfer(100.0, [r]), OpId(i));
    }
    let mut w = Collect(Vec::new());
    run(&mut sched, &mut w);
    let total_work = 3200.0;
    let ideal = total_work / 1000.0;
    let t = sched.now().as_secs_f64();
    assert!(
        t >= ideal * 0.95 && t <= ideal * 1.05,
        "banded makespan {t:.4}s vs ideal {ideal:.4}s"
    );
}

#[test]
fn deeply_nested_chains_execute_in_order() {
    let mut sched = Scheduler::new();
    let r = sched.add_resource("r", 1000.0);
    // Par( Seq(delay, Par(t, t)), Seq(t, delay) ) completes at the max
    // of both branches.
    let step = Step::par([
        Step::seq([
            Step::delay(100_000_000), // 0.1 s
            Step::par([Step::transfer(100.0, [r]), Step::transfer(100.0, [r])]),
        ]),
        Step::seq([Step::transfer(300.0, [r]), Step::delay(50_000_000)]),
    ]);
    sched.submit(step, OpId(9));
    let mut w = Collect(Vec::new());
    run(&mut sched, &mut w);
    let t = w.0[0].1.as_secs_f64();
    // work conservation: 500 units at 1000/s = 0.5s of transfer, with
    // delays overlapping transfers of the other branch
    assert!(t > 0.4 && t < 0.7, "nested chain finished at {t}");
}

#[test]
fn many_independent_resources_scale() {
    // sanity: a wide submission wave across 256 resources completes in
    // one transfer time
    let mut sched = Scheduler::new();
    sched.set_coalescing(1_000);
    let res: Vec<_> = (0..256)
        .map(|i| sched.add_resource(format!("d{i}"), 100.0))
        .collect();
    for (i, &r) in res.iter().enumerate() {
        sched.submit(Step::transfer(100.0, [r]), OpId(i as u64));
    }
    let mut w = Collect(Vec::new());
    run(&mut sched, &mut w);
    assert_eq!(w.0.len(), 256);
    assert!((sched.now().as_secs_f64() - 1.0).abs() < 0.01);
}

#[test]
fn trace_records_completions_in_order() {
    let mut sched = Scheduler::new();
    sched.set_trace(simkit::Trace::bounded(16));
    let r = sched.add_resource("r", 100.0);
    for i in 0..4u64 {
        sched.submit(Step::transfer(10.0 * (i + 1) as f64, [r]), OpId(i));
    }
    let mut w = Collect(Vec::new());
    run(&mut sched, &mut w);
    let evs = sched.trace().events();
    assert_eq!(evs.len(), 4);
    // smaller transfers complete first under fair sharing
    assert_eq!(evs[0].1, OpId(0));
    assert_eq!(evs[3].1, OpId(3));
    assert!(evs.windows(2).all(|w| w[0].0 <= w[1].0));
    assert!(sched.trace().render().contains("op 3"));
}
