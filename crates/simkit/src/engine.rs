//! The discrete-event engine: scheduler, op-chain interpreter, run loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::fairshare::FairShare;
use crate::faults::{FaultAction, FaultEvent, FaultPlan};
use crate::monitor::Monitor;
use crate::slab::Slab;
use crate::span::{SpanId, SpanLog};
use crate::step::{ResourceId, Step};
use crate::telemetry::{MetricId, Telemetry};
use crate::time::SimTime;
use crate::trace::Trace;
use crate::units::{Bytes, Rate};

/// Opaque identifier attached to a submitted op chain and reported back
/// on completion.  Callers typically encode a process index and an op
/// kind in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(pub u64);

/// Receiver of op completions; drives the simulation forward by
/// submitting follow-up work.
pub trait World {
    /// Called once for every completed op chain.  `sched.now()` is the
    /// completion time; the implementation may submit new ops.
    fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler);

    /// Called once for every fired fault event (see [`crate::faults`]).
    /// `sched.now()` is the firing time; capacity-scaling actions have
    /// already been applied by the engine.  Worlds model domain faults
    /// (crashes, restarts, delayed completions) here; the default ignores
    /// them.
    // simlint::panic_root — fault delivery: handlers must never panic
    fn on_fault(&mut self, _event: &FaultEvent, _sched: &mut Scheduler) {}
}

/// Why [`run_for`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No pending flows, timers or completions remain.
    Completed,
    /// The time limit was reached with work still pending.
    TimeLimit,
    /// Flows remain but none can make progress (all routed through
    /// zero-capacity resources and no timers pending).  Happens under
    /// failure injection when a path's only resource is down.
    Stalled,
}

/// What a completed step notifies: either the parent continuation or the
/// whole op.
#[derive(Debug, Clone, Copy)]
enum Parent {
    Op(OpId),
    Cont(u32),
}

#[derive(Debug)]
enum Cont {
    /// Remaining steps, stored reversed so the next step pops off the
    /// end.  `span` is the enclosing span context, restored when a later
    /// step of the sequence is executed after a flow/timer completes.
    Seq {
        stack: Vec<Step>,
        parent: Parent,
        span: SpanId,
    },
    /// Fan-in counter for `Par`.
    Join { remaining: usize, parent: Parent },
    /// An open span closed when its wrapped step completes.  Only
    /// allocated while span recording is enabled; with recording off
    /// `Step::Span` executes its inner step directly, so the cont slab
    /// (and everything downstream of it) is identical to a span-free run.
    Span { id: SpanId, parent: Parent },
}

#[derive(Debug)]
struct Flow {
    remaining: Bytes,
    rate: Rate,
    deadline: SimTime,
    /// Residual below which the flow counts as finished: a safety net
    /// against f64 settlement drift, scaled to the flow's size so tiny
    /// transfers are not cut short measurably.
    eps: Bytes,
    path: Vec<ResourceId>,
    parent: Parent,
}

#[derive(Debug)]
struct Timer {
    at: SimTime,
    seq: u64,
    parent: Parent,
}

/// Pre-interned ids of the engine's own metrics, resolved once when
/// telemetry is enabled so the hot-path hooks never look up a name.
#[derive(Debug, Clone, Copy)]
struct EngineMetricIds {
    /// Gauge: in-flight flow count.
    flows: MetricId,
    /// Gauge: pending timer count (the engine's event-queue depth).
    timers: MetricId,
    /// Gauge: undelivered op completions queued for the world.
    queue: MetricId,
    /// Counter: op completions.
    ops: MetricId,
    /// Counter: fair-share re-solves.
    resolves: MetricId,
    /// Counter: progressive-filling iterations across re-solves.
    fill_iters: MetricId,
    /// Counter: fault events fired.
    faults: MetricId,
    /// Counter: flows started.
    flow_starts: MetricId,
    /// Counter: flows completed.
    flow_completes: MetricId,
}

impl EngineMetricIds {
    fn register(tel: &mut Telemetry) -> EngineMetricIds {
        EngineMetricIds {
            flows: tel.gauge("engine.flows.inflight"),
            timers: tel.gauge("engine.timers.pending"),
            queue: tel.gauge("engine.queue.completions"),
            ops: tel.counter("engine.ops.completed"),
            resolves: tel.counter("engine.fairshare.resolves"),
            fill_iters: tel.counter("engine.fairshare.fill_iters"),
            faults: tel.counter("engine.faults.fired"),
            flow_starts: tel.counter("engine.flows.started"),
            flow_completes: tel.counter("engine.flows.completed"),
        }
    }
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulation scheduler: resources, in-flight flows, timers and the
/// op-chain interpreter.
// simlint::sim_state — replay-visible simulation state
pub struct Scheduler {
    now: SimTime,
    last_settle: SimTime,
    caps: Vec<Rate>,
    /// Registered (un-degraded) capacities; fault scaling is relative to
    /// these, so `scale: 1.0` restores exactly the original rate.
    base_caps: Vec<Rate>,
    names: Vec<String>,
    flows: Slab<Flow>,
    conts: Slab<Cont>,
    timers: BinaryHeap<Reverse<Timer>>,
    timer_seq: u64,
    completions: VecDeque<OpId>,
    rates_dirty: bool,
    /// Earliest flow deadline, maintained by `recompute_rates`; exact
    /// whenever `rates_dirty` is false (deadlines only change inside a
    /// recompute, and every flow insert/remove sets the dirty bit), so
    /// `next_event_time` reads it instead of scanning every flow.
    flow_deadline_min: SimTime,
    /// Reused buffer for the keys of flows completing in one event batch
    /// (`fire_events_at`); keeps the hot loop allocation-free.
    done_scratch: Vec<u32>,
    fair: FairShare,
    monitor: Monitor,
    /// Installed fault events, sorted by `(at, id)`, popped as fired.
    faults: VecDeque<FaultEvent>,
    /// Optional causal span log (off by default).
    spans: SpanLog,
    /// Optional telemetry registry (off by default; read-only over the
    /// schedule, never perturbs the replay digest).
    telemetry: Telemetry,
    /// Pre-interned engine metric ids; `Some` iff telemetry is enabled.
    tel_ids: Option<EngineMetricIds>,
    /// Event-coalescing quantum in ns (see [`Scheduler::set_coalescing`]).
    quantum_ns: u64,
    /// Optional completion trace.
    trace: Trace,
    /// Diagnostics: number of rate recomputations performed.
    pub stat_recomputes: u64,
    /// Diagnostics: total flows enumerated across recomputations.
    pub stat_flow_visits: u64,
    /// Diagnostics: total progressive-filling iterations.
    pub stat_fill_iters: u64,
    /// Diagnostics: wall time in settle/rebuild/solve/events (ns).
    pub stat_ns: [u64; 4],
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Empty scheduler with utilisation monitoring disabled.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            last_settle: SimTime::ZERO,
            caps: Vec::new(),
            base_caps: Vec::new(),
            names: Vec::new(),
            flows: Slab::new(),
            conts: Slab::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            completions: VecDeque::new(),
            rates_dirty: false,
            flow_deadline_min: SimTime::NEVER,
            done_scratch: Vec::new(),
            fair: FairShare::new(),
            monitor: Monitor::disabled(),
            faults: VecDeque::new(),
            spans: SpanLog::disabled(),
            telemetry: Telemetry::disabled(),
            tel_ids: None,
            quantum_ns: 0,
            trace: Trace::disabled(),
            stat_recomputes: 0,
            stat_flow_visits: 0,
            stat_fill_iters: 0,
            stat_ns: [0; 4],
        }
    }

    /// Empty scheduler that records per-resource utilisation.
    pub fn with_monitor() -> Self {
        let mut s = Self::new();
        s.monitor = Monitor::enabled();
        s
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a capacity resource (units/second) and return its id.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(
            capacity >= 0.0 && capacity.is_finite(),
            "capacity must be finite and >= 0"
        );
        let id = ResourceId(self.caps.len() as u32);
        self.caps.push(Rate(capacity));
        self.base_caps.push(Rate(capacity));
        self.names.push(name.into());
        id
    }

    /// Capacity of `r` in units/second.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.caps[r.0 as usize].get()
    }

    /// Name given to `r` at registration.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.names[r.0 as usize]
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.caps.len()
    }

    /// Change the capacity of `r` (e.g. failure injection: set to zero).
    /// Takes effect immediately; in-flight flows are re-shared.
    // simlint::allow(digest-taint) — pre-run configuration: every subsequent flow completion folds its effect into the digest
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite());
        self.settle_to(self.now);
        self.caps[r.0 as usize] = Rate(capacity);
        self.base_caps[r.0 as usize] = Rate(capacity);
        self.rates_dirty = true;
    }

    /// Scale the capacity of `r` to `baseline × scale`, where the
    /// baseline is the capacity given at registration (or the last
    /// [`Scheduler::set_capacity`]).  Used by [`FaultAction::SlowDisk`] /
    /// [`FaultAction::NicBrownout`]; `scale: 1.0` restores the baseline
    /// exactly.  `scale` must be positive: a dead component is modelled
    /// at the storage-state level, never as a zero-rate flow (which would
    /// stall the run).
    pub fn scale_capacity(&mut self, r: ResourceId, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "fault capacity scale must be positive and finite"
        );
        self.settle_to(self.now);
        self.caps[r.0 as usize] = self.base_caps[r.0 as usize] * scale;
        self.rates_dirty = true;
    }

    /// Install a failure schedule.  Events fire during [`run_for`] when
    /// simulated time reaches them while flows or timers are pending;
    /// runs that drain earlier leave the remaining events armed.  May be
    /// called repeatedly — later plans merge with undelivered events.
    ///
    /// Installation itself folds the plan's canonical encoding into the
    /// replay digest (a *schedule header*), so a saved schedule pins the
    /// run it produced even for events that never fire: replaying with
    /// any altered plan diverges at install time, not just at fire time.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        let installed = plan.into_events();
        self.trace.record_schedule(&installed);
        let mut evs: Vec<FaultEvent> = self.faults.drain(..).collect();
        evs.extend(installed);
        evs.sort_by_key(|e| (e.at, e.id));
        self.faults = evs.into();
    }

    /// Fault events installed but not yet fired.
    pub fn pending_fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Pop and apply the next fault event: settle flows to its firing
    /// time, apply engine-level actions (capacity scaling), and fold the
    /// tagged `(time, id)` pair into the replay digest.  The caller hands
    /// the returned event to [`World::on_fault`].  Returns `None` when no
    /// fault is pending (the run loop checks `next_fault_time` first, but
    /// delivery must not panic if that invariant ever slips).
    // simlint::panic_root — fault delivery: must never panic
    // simlint::hot_root — fault firing sits inside the event loop
    fn fire_fault(&mut self) -> Option<FaultEvent> {
        let ev = self.faults.pop_front()?;
        // An event armed before a gap in pending work fires as soon as
        // work exists again; time never goes backwards.
        let t = ev.at.max(self.now);
        self.settle_to(t);
        match ev.action {
            FaultAction::SlowDisk { resource, scale }
            | FaultAction::NicBrownout { resource, scale } => {
                self.scale_capacity(resource, scale);
            }
            FaultAction::TargetCrash(_)
            | FaultAction::TargetRestart(_)
            | FaultAction::DelayedCompletion { .. }
            | FaultAction::AddServer { .. }
            | FaultAction::DrainServer { .. }
            | FaultAction::BitRot { .. } => {}
        }
        self.trace.record_fault(t, ev.id);
        self.spans.mark_fault(t, ev.id, SpanId::NONE);
        if let Some(ids) = self.tel_ids {
            self.telemetry.counter_add(ids.faults, t, 1);
        }
        Some(ev)
    }

    /// Firing time of the next pending fault, if any.
    fn next_fault_time(&self) -> Option<SimTime> {
        self.faults.front().map(|e| e.at)
    }

    /// Set the event-coalescing quantum: events within `ns` of the
    /// earliest pending event fire together in one batch, sharing a
    /// single fair-share recomputation.  Zero (the default) keeps exact
    /// event times.  Large simulations set a microsecond-scale quantum:
    /// thousands of near-simultaneous op completions then cost one
    /// recomputation instead of thousands, at a timing error far below
    /// any modelled latency.
    pub fn set_coalescing(&mut self, ns: u64) {
        self.quantum_ns = ns;
    }

    /// Set the fair-share bottleneck tolerance (see
    /// [`crate::fairshare::FairShare::set_tolerance`]).  Rates may then
    /// deviate from the exact max-min allocation by up to this relative
    /// factor, in exchange for far fewer filling iterations.
    pub fn set_fairshare_tolerance(&mut self, tol: f64) {
        self.fair.set_tolerance(tol);
    }

    /// Utilisation monitor (busy integrals per resource).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Replace the utilisation monitor (e.g. a windowed one — see
    /// [`Monitor::windowed`]).
    // simlint::allow(digest-taint) — pre-run configuration: every subsequent flow completion folds its effect into the digest
    pub fn set_monitor(&mut self, monitor: Monitor) {
        self.monitor = monitor;
    }

    /// Turn on causal span recording (see [`crate::span`]).  Spans are
    /// off by default; enabling them never changes the schedule or the
    /// replay digest — only the span log and its separate span digest.
    // simlint::allow(digest-taint) — pre-run configuration: span events fold into the span digest, op completions into the replay digest
    pub fn enable_spans(&mut self) {
        self.spans = SpanLog::recording();
    }

    /// The span log (empty unless [`Scheduler::enable_spans`] was called).
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Turn on telemetry sampling into `window_ns`-wide sim-time windows
    /// (see [`crate::telemetry`]).  Off by default; telemetry observes
    /// the schedule read-only, so enabling it never changes event times
    /// or the replay digest — the same contract as spans.
    // simlint::dim(window_ns: ns)
    // simlint::allow(digest-taint) — pre-run configuration: telemetry is a read-only observer; op completions fold into the replay digest unchanged
    pub fn enable_telemetry(&mut self, window_ns: u64) {
        let mut tel = Telemetry::enabled(window_ns);
        self.tel_ids = Some(EngineMetricIds::register(&mut tel));
        self.telemetry = tel;
    }

    /// The telemetry registry (empty unless
    /// [`Scheduler::enable_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry access, for layers that publish their own
    /// counters into the run's registry after (or during) a run.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Order-sensitive digest of the span open/close/mark stream — the
    /// determinism contract for tracing, separate from [`Scheduler::digest`].
    pub fn span_digest(&self) -> u64 {
        self.spans.digest()
    }

    /// Record op completions into a bounded trace (debugging aid).
    // simlint::allow(digest-taint) — pre-run configuration: every subsequent flow completion folds its effect into the digest
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The completion trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Order-sensitive FNV-1a digest of the `(time, op)` completion stream
    /// so far.  Always maintained (even with tracing disabled); two runs
    /// of identical workloads must report identical digests — see
    /// [`run_digest`].
    pub fn digest(&self) -> u64 {
        self.trace.digest()
    }

    /// Capacities indexed by resource id, for [`Monitor::report`].
    pub fn capacities(&self) -> &[Rate] {
        &self.caps
    }

    /// Number of in-flight flows.
    pub fn active_flow_count(&self) -> usize {
        self.flows.len()
    }

    /// True if any work (flows, timers, undelivered completions) remains.
    pub fn has_pending_work(&self) -> bool {
        !self.flows.is_empty() || !self.timers.is_empty() || !self.completions.is_empty()
    }

    /// Submit an op chain; `op` is reported to the [`World`] when the
    /// whole chain completes.
    pub fn submit(&mut self, step: Step, op: OpId) {
        self.exec(step, Parent::Op(op), SpanId::NONE);
    }

    /// Submit an op chain that starts after `delay_ns`.
    pub fn submit_after(&mut self, delay_ns: u64, step: Step, op: OpId) {
        self.exec(
            Step::delay(delay_ns).then(step),
            op_parent(op),
            SpanId::NONE,
        );
    }

    // ---- interpreter ----------------------------------------------------

    /// `span` is the nearest enclosing open span — the parent of any
    /// `Step::Span` encountered while descending `step`.
    fn exec(&mut self, step: Step, parent: Parent, span: SpanId) {
        match step {
            Step::Noop => self.complete_parent(parent),
            Step::Delay(ns) => {
                let seq = self.timer_seq;
                self.timer_seq += 1;
                self.timers.push(Reverse(Timer {
                    at: self.now + ns,
                    seq,
                    parent,
                }));
                if let Some(ids) = self.tel_ids {
                    self.telemetry.gauge_incr(ids.timers, self.now);
                }
            }
            Step::Transfer { units, path } => {
                debug_assert!(units > 0.0 && !path.is_empty());
                debug_assert!(path.iter().all(|r| (r.0 as usize) < self.caps.len()));
                if let Some(ids) = self.tel_ids {
                    self.telemetry.counter_add(ids.flow_starts, self.now, 1);
                    self.telemetry.gauge_incr(ids.flows, self.now);
                    for &r in &path {
                        let g = self
                            .telemetry
                            .resource_gauge(r.0 as usize, &self.names[r.0 as usize]);
                        self.telemetry.gauge_incr(g, self.now);
                    }
                }
                self.flows.insert(Flow {
                    remaining: Bytes(units),
                    rate: Rate::ZERO,
                    deadline: SimTime::NEVER,
                    eps: Bytes(units * 1e-9),
                    path,
                    parent,
                });
                self.rates_dirty = true;
            }
            Step::Seq(mut steps) => {
                steps.reverse();
                match steps.pop() {
                    None => self.complete_parent(parent),
                    Some(first) => {
                        let cid = self.conts.insert(Cont::Seq {
                            stack: steps,
                            parent,
                            span,
                        });
                        self.exec(first, Parent::Cont(cid), span);
                    }
                }
            }
            Step::Par(steps) => {
                if steps.is_empty() {
                    self.complete_parent(parent);
                    return;
                }
                let cid = self.conts.insert(Cont::Join {
                    remaining: steps.len(),
                    parent,
                });
                for s in steps {
                    self.exec(s, Parent::Cont(cid), span);
                }
            }
            Step::Span {
                layer,
                op,
                bytes,
                attempt,
                inner,
            } => {
                // Telemetry counts every span step it sees — including
                // retry/backoff, rebuild and migration waves — whether
                // or not span *recording* is on; the count is read-only
                // observation, never a schedule change.
                if self.telemetry.is_enabled() {
                    self.telemetry.span_open(self.now, layer, op);
                }
                if !self.spans.is_enabled() {
                    // One branch of overhead, no allocation: the cont
                    // slab evolves exactly as for a span-free run, so
                    // the schedule and replay digest are untouched.
                    self.exec(*inner, parent, span);
                    return;
                }
                let id = self.spans.open(self.now, span, layer, op, bytes, attempt);
                let cid = self.conts.insert(Cont::Span { id, parent });
                self.exec(*inner, Parent::Cont(cid), id);
            }
        }
    }

    fn complete_parent(&mut self, mut parent: Parent) {
        loop {
            match parent {
                Parent::Op(op) => {
                    self.trace.record(self.now, op);
                    self.completions.push_back(op);
                    if let Some(ids) = self.tel_ids {
                        self.telemetry.counter_add(ids.ops, self.now, 1);
                        self.telemetry.gauge_set(
                            ids.queue,
                            self.now,
                            self.completions.len() as u64,
                        );
                    }
                    return;
                }
                Parent::Cont(cid) => {
                    enum Next {
                        Exec(Step, SpanId),
                        Finish,
                        Wait,
                    }
                    let next = match &mut self.conts[cid] {
                        Cont::Seq { stack, span, .. } => match stack.pop() {
                            Some(step) => Next::Exec(step, *span),
                            None => Next::Finish,
                        },
                        Cont::Join { remaining, .. } => {
                            *remaining -= 1;
                            if *remaining == 0 {
                                Next::Finish
                            } else {
                                Next::Wait
                            }
                        }
                        Cont::Span { .. } => Next::Finish,
                    };
                    match next {
                        Next::Wait => return,
                        Next::Exec(step, span) => {
                            self.exec(step, Parent::Cont(cid), span);
                            return;
                        }
                        Next::Finish => {
                            let cont = self.conts.remove(cid);
                            parent = match cont {
                                Cont::Seq { parent, .. } | Cont::Join { parent, .. } => parent,
                                Cont::Span { id, parent } => {
                                    self.spans.close(self.now, id);
                                    parent
                                }
                            };
                        }
                    }
                }
            }
        }
    }

    // ---- fluid dynamics --------------------------------------------------

    /// Advance all flows to time `t`, crediting the monitor with each
    /// flow's movement over the settlement interval `[last_settle, t]`.
    fn settle_to(&mut self, t: SimTime) {
        let t0 = self.last_settle;
        let dt = t.secs_since(t0);
        if dt > 0.0 {
            let monitor_on = self.monitor.is_enabled();
            // simlint::allow(hot-state-scan) — the fluid model settles every live flow across the elapsed interval; recompute coalescing (set_coalescing) bounds how often this runs per event batch
            for (_, f) in self.flows.iter_mut() {
                if f.rate > Rate::ZERO {
                    let moved = f.rate.bytes_in(dt).min(f.remaining);
                    f.remaining -= moved;
                    if monitor_on {
                        for &r in &f.path {
                            self.monitor.credit(r, moved.get(), t0, t);
                        }
                    }
                }
            }
        }
        self.last_settle = t;
        self.now = t;
    }

    /// Recompute max-min fair rates and flow deadlines.
    fn recompute_rates(&mut self) {
        // simlint::allow(wall-clock) — perf counters for stat_ns diagnostics; never feeds sim time
        let t0 = std::time::Instant::now();
        self.settle_to(self.now);
        // simlint::allow(wall-clock) — perf counters for stat_ns diagnostics; never feeds sim time
        let t1 = std::time::Instant::now();
        self.fair.begin(self.caps.len());
        // simlint::allow(hot-state-scan) — a full re-share is the max-min model: every live flow's rate may change when any flow joins or leaves; incremental re-solve is ROADMAP item 2
        for (key, f) in self.flows.iter() {
            self.fair.add_flow(key, &f.path);
        }
        // simlint::allow(wall-clock) — perf counters for stat_ns diagnostics; never feeds sim time
        let t2 = std::time::Instant::now();
        self.stat_recomputes += 1;
        self.stat_flow_visits += self.flows.len() as u64;
        let fill_iters = self.fair.solve(&self.caps) as u64;
        self.stat_fill_iters += fill_iters;
        if let Some(ids) = self.tel_ids {
            self.telemetry.counter_add(ids.resolves, self.now, 1);
            self.telemetry
                .counter_add(ids.fill_iters, self.now, fill_iters);
        }
        // simlint::allow(wall-clock) — perf counters for stat_ns diagnostics; never feeds sim time
        let t3 = std::time::Instant::now();
        self.stat_ns[0] += (t1 - t0).as_nanos() as u64;
        self.stat_ns[1] += (t2 - t1).as_nanos() as u64;
        self.stat_ns[2] += (t3 - t2).as_nanos() as u64;
        let now = self.now;
        // Disjoint field borrows: `fair` is read while `flows` is written.
        let flows = &mut self.flows;
        let mut deadline_min = SimTime::NEVER;
        for (key, rate) in self.fair.results() {
            // A result for a flow that completed during this recompute
            // needs no deadline; skipping is safe where a panic is not.
            let Some(f) = flows.get_mut(key) else {
                continue;
            };
            f.rate = rate;
            f.deadline = if f.remaining <= f.eps {
                now
            } else if rate <= Rate::ZERO {
                SimTime::NEVER
            } else {
                now + (f.remaining / rate).as_nanos()
            };
            deadline_min = deadline_min.min(f.deadline);
        }
        self.flow_deadline_min = deadline_min;
        self.rates_dirty = false;
    }

    fn next_event_time(&self) -> Option<SimTime> {
        let t_timer = self.timers.peek().map(|Reverse(t)| t.at);
        // Deadlines only move inside `recompute_rates`, which also
        // refreshes the cached minimum; with a clean rate state the cache
        // is exact and the per-event O(flows) scan is gone.  The dirty
        // fallback never runs from `run_for` (it recomputes first) but
        // keeps direct callers correct.
        let t_flow = if self.rates_dirty {
            // simlint::allow(hot-state-scan) — dirty-rate fallback only; the event loop recomputes (refreshing the cached minimum) before asking for the next event
            self.flows.iter().map(|(_, f)| f.deadline).min()
        } else {
            Some(self.flow_deadline_min)
        }
        .filter(|&d| d != SimTime::NEVER);
        match (t_timer, t_flow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire everything scheduled at exactly `t` (flows and timers).
    // simlint::hot_root — timer drain + flow completion: runs once per event batch
    fn fire_events_at(&mut self, t: SimTime) {
        // simlint::allow(wall-clock) — perf counters for stat_ns diagnostics; never feeds sim time
        let te = std::time::Instant::now();
        self.stat_ns[3] = self.stat_ns[3].wrapping_add(te.elapsed().as_nanos() as u64);
        self.settle_to(t);
        // Timers first: their parents may be sequences that feed flows.
        while let Some(Reverse(timer)) = self.timers.peek() {
            if timer.at > t {
                break;
            }
            let parent = timer.parent;
            self.timers.pop();
            if let Some(ids) = self.tel_ids {
                self.telemetry.gauge_decr(ids.timers, self.now);
            }
            self.complete_parent(parent);
        }
        // Flows whose deadline has arrived (or whose residual rounded to
        // nothing) complete as a batch.  The key buffer is owned by the
        // scheduler and reused across batches (`complete_parent` needs
        // `&mut self`, so the keys cannot be drained while iterating).
        let mut done = std::mem::take(&mut self.done_scratch);
        done.clear();
        done.extend(
            self.flows
                // simlint::allow(hot-state-scan) — batch completion must inspect every live flow's deadline once; the settle pass already touched them all in this event
                .iter()
                .filter(|(_, f)| f.deadline <= t || f.remaining <= f.eps)
                .map(|(k, _)| k),
        );
        for &key in &done {
            let flow = self.flows.remove(key);
            self.rates_dirty = true;
            if let Some(ids) = self.tel_ids {
                self.telemetry.counter_add(ids.flow_completes, self.now, 1);
                self.telemetry.gauge_decr(ids.flows, self.now);
                for &r in &flow.path {
                    let g = self
                        .telemetry
                        .resource_gauge(r.0 as usize, &self.names[r.0 as usize]);
                    self.telemetry.gauge_decr(g, self.now);
                }
            }
            self.complete_parent(flow.parent);
        }
        self.done_scratch = done;
    }
}

fn op_parent(op: OpId) -> Parent {
    Parent::Op(op)
}

/// Run until no work remains.  Panics on stall (see [`run_for`] for a
/// non-panicking variant used with failure injection).
pub fn run<W: World>(sched: &mut Scheduler, world: &mut W) {
    match run_for(sched, world, SimTime::NEVER) {
        RunOutcome::Completed => {}
        RunOutcome::Stalled => panic!(
            "simulation stalled at {} with {} flows routed through zero-capacity resources",
            sched.now(),
            sched.active_flow_count()
        ),
        RunOutcome::TimeLimit => unreachable!("NEVER limit reached"),
    }
}

/// Run until no work remains (like [`run`]) and return the replay digest
/// of the full completion stream.  The determinism contract in one call:
/// two invocations on freshly-built, identically-configured scheduler and
/// world values must return the same digest.
// simlint::digest_root — replay-digest fold entry
pub fn run_digest<W: World>(sched: &mut Scheduler, world: &mut W) -> u64 {
    run(sched, world);
    sched.digest()
}

/// Run until no work remains or simulated time would pass `limit`.
// simlint::hot_root — the engine event loop: every line here runs per event
pub fn run_for<W: World>(sched: &mut Scheduler, world: &mut W, limit: SimTime) -> RunOutcome {
    loop {
        // Deliver completions; the world may submit follow-up work which
        // may itself complete synchronously.
        while let Some(op) = sched.completions.pop_front() {
            if let Some(ids) = sched.tel_ids {
                sched
                    .telemetry
                    .gauge_set(ids.queue, sched.now, sched.completions.len() as u64);
            }
            world.on_op_complete(op, sched);
        }
        if sched.rates_dirty {
            sched.recompute_rates();
        }
        if !sched.completions.is_empty() {
            // recompute made zero-residual flows due; drain them first.
            continue;
        }
        // Faults fire only while work is pending: a drained run completes
        // normally and leaves future events armed (setup barriers must
        // not fast-forward through the failure schedule).  A pending
        // fault due before the next work event — or before the limit when
        // flows are stalled — fires first; it may rescale capacities or
        // (via the world) submit new work, so re-enter the loop.
        if !sched.flows.is_empty() || !sched.timers.is_empty() {
            if let Some(f_at) = sched.next_fault_time() {
                let bound = sched.next_event_time().unwrap_or(SimTime::NEVER).min(limit);
                if f_at <= bound {
                    if let Some(ev) = sched.fire_fault() {
                        world.on_fault(&ev, sched);
                    }
                    continue;
                }
            }
        }
        let Some(t) = sched.next_event_time() else {
            return if sched.flows.is_empty() {
                RunOutcome::Completed
            } else {
                RunOutcome::Stalled
            };
        };
        if t > limit {
            sched.settle_to(limit);
            return RunOutcome::TimeLimit;
        }
        // coalesce everything due within the quantum into one batch
        sched.fire_events_at(t + sched.quantum_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// World that records completion times and optionally chains more ops.
    #[derive(Default)]
    struct Recorder {
        completed: Vec<(OpId, SimTime)>,
    }
    impl World for Recorder {
        fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler) {
            self.completed.push((op, sched.now()));
        }
    }

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_transfer_takes_units_over_capacity() {
        let mut s = Scheduler::new();
        let r = s.add_resource("disk", 200.0);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        assert_eq!(w.completed.len(), 1);
        assert!((secs(w.completed[0].1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut s = Scheduler::new();
        let r = s.add_resource("disk", 100.0);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        s.submit(Step::transfer(100.0, [r]), OpId(2));
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        // 200 units through 100 units/s: both finish at t=2.
        assert_eq!(w.completed.len(), 2);
        for (_, t) in &w.completed {
            assert!((secs(*t) - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn staggered_flow_work_conservation() {
        // Flow A starts at 0; flow B starts at 0.5s via a delay.  The
        // resource never idles, so everything finishes at exactly
        // (100+100)/100 = 2.0s, with A done at 1.5s.
        let mut s = Scheduler::new();
        let r = s.add_resource("disk", 100.0);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        s.submit(
            Step::seq([Step::delay(500_000_000), Step::transfer(100.0, [r])]),
            OpId(2),
        );
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        let t1 = w.completed.iter().find(|(o, _)| *o == OpId(1)).unwrap().1;
        let t2 = w.completed.iter().find(|(o, _)| *o == OpId(2)).unwrap().1;
        assert!((secs(t1) - 1.5).abs() < 1e-6, "A: got {}", secs(t1));
        assert!((secs(t2) - 2.0).abs() < 1e-6, "B: got {}", secs(t2));
    }

    #[test]
    fn par_completes_at_slowest_branch() {
        let mut s = Scheduler::new();
        let fast = s.add_resource("fast", 100.0);
        let slow = s.add_resource("slow", 10.0);
        s.submit(
            Step::par([Step::transfer(10.0, [fast]), Step::transfer(10.0, [slow])]),
            OpId(1),
        );
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        assert!((secs(w.completed[0].1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn seq_of_delays_sums() {
        let mut s = Scheduler::new();
        s.submit(
            Step::seq([Step::delay(1_000), Step::delay(2_000), Step::delay(3_000)]),
            OpId(7),
        );
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        assert_eq!(w.completed[0].1.as_nanos(), 6_000);
    }

    #[test]
    fn nested_seq_par_chain() {
        let mut s = Scheduler::new();
        let r = s.add_resource("r", 100.0);
        // Par(a: 1s transfer, b: Seq(0.5s delay, 0.25s-alone transfer))
        // a alone would take 1s; while b's transfer is active they share.
        // timeline: 0-0.5: a at 100 (50 left); 0.5-?: share 50/50.
        // b needs 25 units -> 0.5s shared -> done at 1.0; a then 25 left
        // at 100 -> done 1.25.
        s.submit(
            Step::par([
                Step::transfer(100.0, [r]),
                Step::seq([Step::delay(500_000_000), Step::transfer(25.0, [r])]),
            ]),
            OpId(1),
        );
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        assert!((secs(w.completed[0].1) - 1.25).abs() < 1e-6);
    }

    #[test]
    fn symmetric_flows_batch_into_one_completion_time() {
        let mut s = Scheduler::new();
        let r = s.add_resource("r", 1000.0);
        for i in 0..64 {
            s.submit(Step::transfer(10.0, [r]), OpId(i));
        }
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        let t0 = w.completed[0].1;
        assert!(w.completed.iter().all(|(_, t)| *t == t0), "lock-step batch");
        assert!((secs(t0) - 0.64).abs() < 1e-6);
    }

    #[test]
    fn world_chains_sequential_ops() {
        // A "process" that issues 5 back-to-back transfers through its
        // private resource; each completion triggers the next.
        struct Proc {
            left: u32,
            r: ResourceId,
            done_at: SimTime,
        }
        impl World for Proc {
            fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
                if self.left > 0 {
                    self.left -= 1;
                    sched.submit(Step::transfer(10.0, [self.r]), OpId(0));
                } else {
                    self.done_at = sched.now();
                }
            }
        }
        let mut s = Scheduler::new();
        let r = s.add_resource("r", 10.0);
        let mut p = Proc {
            left: 4,
            r,
            done_at: SimTime::ZERO,
        };
        s.submit(Step::transfer(10.0, [r]), OpId(0));
        run(&mut s, &mut p);
        assert!((secs(p.done_at) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn run_for_respects_limit() {
        let mut s = Scheduler::new();
        let r = s.add_resource("r", 1.0);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        let mut w = Recorder::default();
        let out = run_for(&mut s, &mut w, SimTime::from_secs_f64(2.0));
        assert_eq!(out, RunOutcome::TimeLimit);
        assert!(w.completed.is_empty());
        assert!((secs(s.now()) - 2.0).abs() < 1e-9);
        // Resuming finishes the job at t=100.
        let out = run_for(&mut s, &mut w, SimTime::NEVER);
        assert_eq!(out, RunOutcome::Completed);
        assert!((secs(w.completed[0].1) - 100.0).abs() < 1e-5);
    }

    #[test]
    fn zero_capacity_stalls_and_recovers() {
        let mut s = Scheduler::new();
        let r = s.add_resource("r", 0.0);
        s.submit(Step::transfer(10.0, [r]), OpId(1));
        let mut w = Recorder::default();
        assert_eq!(run_for(&mut s, &mut w, SimTime::NEVER), RunOutcome::Stalled);
        s.set_capacity(r, 10.0);
        assert_eq!(
            run_for(&mut s, &mut w, SimTime::NEVER),
            RunOutcome::Completed
        );
        assert_eq!(w.completed.len(), 1);
    }

    #[test]
    fn capacity_change_rescales_in_flight() {
        let mut s = Scheduler::new();
        let r = s.add_resource("r", 10.0);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        let mut w = Recorder::default();
        run_for(&mut s, &mut w, SimTime::from_secs_f64(5.0)); // 50 units left
        s.set_capacity(r, 100.0);
        run(&mut s, &mut w);
        assert!((secs(w.completed[0].1) - 5.5).abs() < 1e-6);
    }

    #[test]
    fn monitor_accounts_busy_units() {
        let mut s = Scheduler::with_monitor();
        let r = s.add_resource("r", 100.0);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        assert!((s.monitor().units(r) - 100.0).abs() < 1e-6);
        let rep = s.monitor().report(s.capacities(), SimTime::ZERO, s.now());
        assert!((rep[0].fraction - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multi_resource_path_limited_by_tightest() {
        let mut s = Scheduler::new();
        let nic = s.add_resource("nic", 50.0);
        let ssd = s.add_resource("ssd", 20.0);
        s.submit(Step::transfer(40.0, [nic, ssd]), OpId(1));
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        assert!((secs(w.completed[0].1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn submit_after_delays_start() {
        let mut s = Scheduler::new();
        let r = s.add_resource("r", 10.0);
        s.submit_after(1_000_000_000, Step::transfer(10.0, [r]), OpId(1));
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        assert!((secs(w.completed[0].1) - 2.0).abs() < 1e-6);
    }

    /// Recorder that also logs fired fault events.
    #[derive(Default)]
    struct FaultRecorder {
        completed: Vec<(OpId, SimTime)>,
        faults: Vec<(FaultEvent, SimTime)>,
    }
    impl World for FaultRecorder {
        fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler) {
            self.completed.push((op, sched.now()));
        }
        fn on_fault(&mut self, event: &FaultEvent, sched: &mut Scheduler) {
            self.faults.push((*event, sched.now()));
        }
    }

    #[test]
    fn slow_disk_fault_scales_and_restores_capacity() {
        let mut s = Scheduler::new();
        let r = s.add_resource("disk", 100.0);
        let mut plan = FaultPlan::new();
        plan.at(
            SimTime::from_secs_f64(0.5),
            FaultAction::SlowDisk {
                resource: r,
                scale: 0.5,
            },
        );
        plan.at(
            SimTime::from_secs_f64(1.0),
            FaultAction::SlowDisk {
                resource: r,
                scale: 1.0,
            },
        );
        s.install_faults(plan);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        let mut w = FaultRecorder::default();
        run(&mut s, &mut w);
        // 0.5s at 100 (50 units) + 0.5s at 50 (25) + 0.25s at 100 (25)
        assert!((secs(w.completed[0].1) - 1.25).abs() < 1e-6);
        assert_eq!(w.faults.len(), 2);
        assert!((secs(w.faults[0].1) - 0.5).abs() < 1e-9);
        assert!((secs(w.faults[1].1) - 1.0).abs() < 1e-9);
        assert_eq!(s.pending_fault_count(), 0);
    }

    #[test]
    fn domain_faults_are_delivered_to_the_world() {
        let mut s = Scheduler::new();
        let r = s.add_resource("disk", 10.0);
        let mut plan = FaultPlan::new();
        plan.at(SimTime::from_millis(100), FaultAction::TargetCrash(42));
        plan.at(
            SimTime::from_millis(200),
            FaultAction::DelayedCompletion {
                payload: 7,
                extra_ns: 5_000,
            },
        );
        s.install_faults(plan);
        s.submit(Step::transfer(10.0, [r]), OpId(1));
        let mut w = FaultRecorder::default();
        run(&mut s, &mut w);
        assert_eq!(w.faults.len(), 2);
        assert_eq!(w.faults[0].0.action, FaultAction::TargetCrash(42));
        assert_eq!(w.faults[0].1, SimTime::from_millis(100));
        assert_eq!(
            w.faults[1].0.action,
            FaultAction::DelayedCompletion {
                payload: 7,
                extra_ns: 5_000
            }
        );
    }

    #[test]
    fn faults_wait_for_pending_work() {
        // A fault scheduled past the end of the current run stays armed
        // instead of fast-forwarding time, and fires (at its scheduled
        // digest time, clamped to now) once later work crosses it.
        let mut s = Scheduler::new();
        let r = s.add_resource("disk", 100.0);
        let mut plan = FaultPlan::new();
        plan.at(SimTime::from_secs_f64(2.0), FaultAction::TargetCrash(1));
        s.install_faults(plan);
        s.submit(Step::transfer(50.0, [r]), OpId(1));
        let mut w = FaultRecorder::default();
        run(&mut s, &mut w);
        assert!((secs(s.now()) - 0.5).abs() < 1e-9);
        assert_eq!(s.pending_fault_count(), 1, "fault stays armed");
        assert!(w.faults.is_empty());
        // next phase crosses t=2.0 → the fault fires mid-run
        s.submit(Step::transfer(300.0, [r]), OpId(2));
        run(&mut s, &mut w);
        assert_eq!(w.faults.len(), 1);
        assert!((secs(w.faults[0].1) - 2.0).abs() < 1e-9);
        assert_eq!(s.pending_fault_count(), 0);
    }

    #[test]
    fn faults_fold_into_replay_digest() {
        let run_with = |faulted: bool| {
            let mut s = Scheduler::new();
            let r = s.add_resource("disk", 100.0);
            if faulted {
                let mut plan = FaultPlan::new();
                plan.at(SimTime::from_millis(1), FaultAction::TargetCrash(3));
                s.install_faults(plan);
            }
            s.submit(Step::transfer(100.0, [r]), OpId(1));
            let mut w = FaultRecorder::default();
            run_digest(&mut s, &mut w)
        };
        assert_eq!(run_with(true), run_with(true), "faulted runs replay");
        assert_ne!(
            run_with(true),
            run_with(false),
            "the failure schedule is part of the digest"
        );
    }

    #[test]
    fn spans_follow_dynamic_nesting() {
        let mut s = Scheduler::new();
        s.enable_spans();
        let r = s.add_resource("disk", 100.0);
        // outer(ior) -> Seq[delay, inner(libdaos) -> transfer]
        s.submit(
            Step::span(
                "ior",
                "write",
                100,
                Step::seq([
                    Step::delay(1_000),
                    Step::span("libdaos", "update", 100, Step::transfer(100.0, [r])),
                ]),
            ),
            OpId(1),
        );
        let mut w = Recorder::default();
        run(&mut s, &mut w);
        let recs = s.spans().records();
        assert_eq!(recs.len(), 2);
        let outer = &recs[0];
        let inner = &recs[1];
        assert_eq!(outer.layer, "ior");
        assert!(outer.parent.is_none());
        assert_eq!(inner.layer, "libdaos");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.root, outer.id);
        // inner opens after the delay, both close at op completion.
        assert_eq!(inner.start.as_nanos(), 1_000);
        assert_eq!(inner.end, outer.end);
        assert_eq!(outer.end, w.completed[0].1);
        assert!(outer.is_closed() && inner.is_closed());
    }

    #[test]
    fn spans_do_not_perturb_replay_digest() {
        let build = |traced: bool| {
            let mut s = Scheduler::new();
            if traced {
                s.enable_spans();
            }
            let r = s.add_resource("disk", 50.0);
            for i in 0..8u64 {
                s.submit(
                    Step::span(
                        "ior",
                        "write",
                        10,
                        Step::seq([
                            Step::delay(i * 100),
                            Step::span("libdaos", "update", 10, Step::transfer(10.0, [r])),
                        ]),
                    ),
                    OpId(i),
                );
            }
            let mut w = Recorder::default();
            let d = run_digest(&mut s, &mut w);
            (d, s.span_digest(), s.spans().len())
        };
        let (d_off, sd_off, n_off) = build(false);
        let (d_on, sd_on, n_on) = build(true);
        assert_eq!(d_off, d_on, "tracing must not perturb the replay digest");
        assert_eq!(n_off, 0);
        assert_eq!(n_on, 16);
        assert_ne!(sd_off, sd_on, "the span digest sees the span stream");
        let (d_on2, sd_on2, _) = build(true);
        assert_eq!((d_on, sd_on), (d_on2, sd_on2), "traced runs replay");
    }

    #[test]
    fn telemetry_does_not_perturb_replay_digest() {
        let build = |telemetered: bool| {
            let mut s = Scheduler::new();
            if telemetered {
                s.enable_telemetry(1_000);
            }
            let r = s.add_resource("disk", 50.0);
            for i in 0..8u64 {
                s.submit(
                    Step::span(
                        "ior",
                        "write",
                        10,
                        Step::seq([
                            Step::delay(i * 100),
                            Step::span("libdaos", "update", 10, Step::transfer(10.0, [r])),
                        ]),
                    ),
                    OpId(i),
                );
            }
            let mut w = Recorder::default();
            let d = run_digest(&mut s, &mut w);
            (d, s)
        };
        let (d_off, s_off) = build(false);
        let (d_on, s_on) = build(true);
        assert_eq!(d_off, d_on, "telemetry must not perturb the replay digest");
        assert!(s_off.telemetry().is_empty());
        assert_eq!(s_on.telemetry().total("engine.ops.completed"), 8);
        assert_eq!(s_on.telemetry().total("span.ior.write"), 8);
        assert_eq!(s_on.telemetry().total("span.libdaos.update"), 8);
        assert!(s_on.telemetry().total("engine.fairshare.resolves") > 0);
        assert_eq!(s_on.telemetry().total("engine.flows.inflight"), 0);
        assert_eq!(s_on.telemetry().total("engine.flows.started"), 8);
        assert_eq!(s_on.telemetry().total("engine.flows.completed"), 8);
        assert_eq!(s_on.telemetry().total("res.disk.flows"), 0);
        // Two telemetered runs export byte-identically.
        let (_, s_on2) = build(true);
        assert_eq!(
            s_on.telemetry().counter_events_json(),
            s_on2.telemetry().counter_events_json()
        );
    }

    #[test]
    fn fault_marks_enter_span_log() {
        let mut s = Scheduler::new();
        s.enable_spans();
        let r = s.add_resource("disk", 100.0);
        let mut plan = FaultPlan::new();
        let ev_id = plan.at(SimTime::from_millis(1), FaultAction::TargetCrash(9));
        s.install_faults(plan);
        s.submit(Step::transfer(100.0, [r]), OpId(1));
        let mut w = FaultRecorder::default();
        run(&mut s, &mut w);
        assert_eq!(s.spans().marks().len(), 1);
        assert_eq!(s.spans().marks()[0].fault_id, ev_id);
        assert_eq!(s.spans().marks()[0].at, SimTime::from_millis(1));
    }

    #[test]
    fn determinism_across_runs() {
        let build = || {
            let mut s = Scheduler::new();
            let a = s.add_resource("a", 33.0);
            let b = s.add_resource("b", 77.0);
            for i in 0..50u64 {
                let step = if i % 2 == 0 {
                    Step::transfer(10.0 + i as f64, [a, b])
                } else {
                    Step::seq([Step::delay(i * 1000), Step::transfer(5.0, [b])])
                };
                s.submit(step, OpId(i));
            }
            let mut w = Recorder::default();
            run(&mut s, &mut w);
            w.completed
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.len(), r2.len());
        for (x, y) in r1.iter().zip(r2.iter()) {
            assert_eq!(x, y);
        }
    }
}
