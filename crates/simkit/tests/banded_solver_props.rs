//! Property tests for the banded (tolerance > 0) fair-share solver:
//! its allocation must stay close to the exact max-min allocation and
//! must never violate capacities by more than the band.

use proptest::prelude::*;
use simkit::fairshare::FairShare;
use simkit::units::Rate;
use simkit::ResourceId;

fn scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<u32>>)> {
    (2usize..10).prop_flat_map(|nres| {
        let caps = proptest::collection::vec(0.5f64..200.0, nres);
        let flow = proptest::collection::btree_set(0u32..nres as u32, 1..=nres.min(4))
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
        let flows = proptest::collection::vec(flow, 1..32);
        (caps, flows)
    })
}

fn solve_with(caps: &[f64], flows: &[Vec<u32>], tol: f64) -> Vec<f64> {
    let mut fs = FairShare::new();
    fs.set_tolerance(tol);
    fs.begin(caps.len());
    for (i, path) in flows.iter().enumerate() {
        let p: Vec<ResourceId> = path.iter().map(|&r| ResourceId(r)).collect();
        fs.add_flow(i as u32, &p);
    }
    let caps: Vec<Rate> = caps.iter().map(|&c| Rate(c)).collect();
    fs.solve(&caps);
    let mut rates = vec![0.0; flows.len()];
    for (k, r) in fs.results() {
        rates[k as usize] = r.get();
    }
    rates
}

proptest! {
    /// Banded capacities stay within (1 + tol) of nominal.
    #[test]
    fn banded_respects_capacity_within_band((caps, flows) in scenario()) {
        let tol = 0.02;
        let rates = solve_with(&caps, &flows, tol);
        for (r, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(path, _)| path.contains(&(r as u32)))
                .map(|(_, rate)| *rate)
                .sum();
            prop_assert!(
                load <= cap * (1.0 + tol) + 1e-9,
                "resource {r} load {load} vs cap {cap}"
            );
        }
    }

    /// Total allocated throughput deviates from the exact solution by at
    /// most the order of the band.
    #[test]
    fn banded_total_close_to_exact((caps, flows) in scenario()) {
        let exact: f64 = solve_with(&caps, &flows, 0.0).iter().sum();
        let banded: f64 = solve_with(&caps, &flows, 0.02).iter().sum();
        let err = (banded - exact).abs() / exact.max(1e-9);
        prop_assert!(err < 0.05, "total deviates {:.2}% (exact {exact}, banded {banded})", err * 100.0);
    }

    /// No flow is starved by the band.
    #[test]
    fn banded_rates_positive((caps, flows) in scenario()) {
        let rates = solve_with(&caps, &flows, 0.02);
        for (i, r) in rates.iter().enumerate() {
            prop_assert!(*r > 0.0, "flow {i} starved");
        }
    }
}
