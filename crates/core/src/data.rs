//! Object payload storage: Key-Value maps and sparse byte Arrays.
//!
//! In **Full** data mode Arrays keep real bytes — erasure-coded objects
//! keep their actual `k + p` cells so reconstruction after target loss
//! runs the real Reed-Solomon decode.  In **Sized** mode only logical
//! sizes are tracked, which is what the large bandwidth sweeps use.

use crate::csum::CsumCodec;
use crate::ec::ErasureCode;
use cluster::payload::{Payload, ReadPayload};
use std::collections::BTreeMap;

/// Whether object payloads carry real bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Real bytes, real parity, verifiable reads.
    Full,
    /// Sizes only; timing-identical, memory-light.
    Sized,
}

/// Availability of the shard-group members backing one Array chunk.
#[derive(Debug, Clone)]
pub enum CellAvailability {
    /// Every member up.
    All,
    /// Plain (unreplicated) shard whose target is down.
    Unavailable,
    /// Per-member availability mask (erasure-coded groups; length `k+p`).
    Mask(Vec<bool>),
}

/// Errors surfaced by the data layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Data lives on down targets and cannot be reconstructed.
    Unavailable,
}

/// A stored checksum that no longer verifies against its bytes — the
/// data layer's report of latent bit rot, consumed by the verified-read
/// and scrubber paths in [`crate::DaosSystem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsumMismatch {
    /// Chunk index whose stored checksum failed verification.
    pub chunk: u64,
    /// Mismatching cell indices for erasure-coded chunks (data cells
    /// `0..k`, parity `k..k+p`); empty for plain chunks.
    pub cells: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Key-Value objects
// ---------------------------------------------------------------------------

/// A Key-Value object: ordered map from small keys to values.  Every
/// value carries a whole-value checksum computed on put and verified on
/// fetch and by the scrubber.
#[derive(Debug, Clone, Default)]
pub struct KvData {
    entries: BTreeMap<Vec<u8>, Payload>,
    csums: BTreeMap<Vec<u8>, u64>,
    codec: CsumCodec,
}

impl KvData {
    /// Empty KV object.
    pub fn new() -> Self {
        Self::default()
    }

    fn value_sum(&self, value: &Payload) -> u64 {
        match value.bytes() {
            Some(b) => self.codec.sum(b),
            None => self.codec.sum_sized(value.len()),
        }
    }

    /// Insert or replace a value, recording its whole-value checksum.
    // simlint::allow(hot-alloc) — the KV store owns its value bytes: copying the payload in is the put contract
    pub fn put(&mut self, key: &[u8], value: Payload) {
        self.csums.insert(key.to_vec(), self.value_sum(&value));
        self.entries.insert(key.to_vec(), value);
    }

    /// Look up a value.
    pub fn get(&self, key: &[u8]) -> Option<&Payload> {
        self.entries.get(key)
    }

    /// Does the stored value still verify against its checksum?
    /// `None` when the key does not exist.
    pub fn verify(&self, key: &[u8]) -> Option<bool> {
        let v = self.entries.get(key)?;
        let stored = self.csums.get(key)?;
        Some(self.value_sum(v) == *stored)
    }

    /// Flip the first byte of the stored value — a planted-rot test
    /// hook.  Returns `false` for sized values (no bytes at rest).
    pub fn corrupt_value(&mut self, key: &[u8]) -> bool {
        match self.entries.get_mut(key) {
            Some(Payload::Bytes(b)) if !b.is_empty() => {
                b[0] ^= 0xFF;
                true
            }
            _ => false,
        }
    }

    /// Remove a key; true if it existed.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        self.csums.remove(key);
        self.entries.remove(key).is_some()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys in order, optionally restricted to a prefix.
    pub fn list(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        self.entries
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Array objects
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Chunk {
    /// Sized-mode marker: the chunk has been written.
    Sized,
    /// Full-mode plain or replicated chunk (one logical copy) with its
    /// stored whole-chunk checksum, computed at write time.
    Plain(Vec<u8>, u64),
    /// Full-mode erasure-coded chunk: `k` data cells then `p` parity,
    /// each cell with its own stored checksum.
    Ec(Vec<Vec<u8>>, Vec<u64>),
}

/// A sparse one-dimensional byte array, chunked by `chunk_size`.
#[derive(Debug, Clone)]
pub struct ArrayData {
    chunk_size: u64,
    size: u64,
    chunks: BTreeMap<u64, Chunk>,
    codec: CsumCodec,
}

impl ArrayData {
    /// Empty array with the given chunk size (DAOS `cell_size = 1`,
    /// `chunk_size` as in `daos_array_create`).
    pub fn new(chunk_size: u64) -> Self {
        assert!(chunk_size > 0);
        ArrayData {
            chunk_size,
            size: 0,
            chunks: BTreeMap::new(),
            codec: CsumCodec::default(),
        }
    }

    /// Chunk size in bytes.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Highest written byte + 1 (what `daos_array_get_size` reports).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Chunk indices touched by `[offset, offset+len)`.
    pub fn chunks_in_range(&self, offset: u64, len: u64) -> std::ops::Range<u64> {
        if len == 0 {
            return 0..0;
        }
        (offset / self.chunk_size)..((offset + len - 1) / self.chunk_size + 1)
    }

    /// Write `payload` at `offset`.  `ec` must be given for erasure-coded
    /// objects in Full mode so cells and parity are materialised.
    // simlint::allow(hot-alloc) — extent bookkeeping grows the backing store only when full-data payloads arrive; sized-payload runs take the metadata-only path
    pub fn write(
        &mut self,
        offset: u64,
        payload: &Payload,
        mode: DataMode,
        ec: Option<&ErasureCode>,
    ) {
        let len = payload.len();
        if len == 0 {
            return;
        }
        self.size = self.size.max(offset + len);
        match (mode, payload.bytes()) {
            (DataMode::Full, Some(bytes)) => self.write_bytes(offset, bytes, ec),
            // Full mode with a sized payload: materialise zeros so byte
            // chunks written earlier are not clobbered by markers.
            (DataMode::Full, None) => {
                let zeros = vec![0u8; len as usize];
                self.write_bytes(offset, &zeros, ec);
            }
            // Sized mode: record chunk presence only.
            (DataMode::Sized, _) => {
                for c in self.chunks_in_range(offset, len) {
                    self.chunks.insert(c, Chunk::Sized);
                }
            }
        }
    }

    fn write_bytes(&mut self, offset: u64, bytes: &[u8], ec: Option<&ErasureCode>) {
        let cs = self.chunk_size;
        let mut cursor = 0usize;
        let mut pos = offset;
        let end = offset + bytes.len() as u64;
        while pos < end {
            let chunk_idx = pos / cs;
            let within = (pos % cs) as usize;
            let take = ((cs as usize - within) as u64).min(end - pos) as usize;
            let seg = &bytes[cursor..cursor + take];
            // Materialise the chunk's logical buffer, apply, re-store.
            let mut buf = self.chunk_bytes_full(chunk_idx, ec);
            buf[within..within + take].copy_from_slice(seg);
            let chunk = match ec {
                None => {
                    let sum = self.codec.sum(&buf);
                    Chunk::Plain(buf, sum)
                }
                Some(code) => {
                    let cells = Self::encode_cells(&buf, code);
                    let sums = cells.iter().map(|c| self.codec.sum(c)).collect();
                    Chunk::Ec(cells, sums)
                }
            };
            self.chunks.insert(chunk_idx, chunk);
            pos += take as u64;
            cursor += take;
        }
    }

    /// The logical bytes of a chunk (zeros if unwritten), assuming all
    /// cells available.  Used for read-modify-write.
    // simlint::allow(panic-path) — EC chunks are created only for objects carrying an erasure code, so `ec` is Some wherever an `Chunk::Ec` is met (constructor invariant)
    // simlint::allow(hot-alloc) — full-data chunk materialisation; sized-payload runs never reach this
    fn chunk_bytes_full(&self, idx: u64, ec: Option<&ErasureCode>) -> Vec<u8> {
        match self.chunks.get(&idx) {
            None | Some(Chunk::Sized) => vec![0u8; self.chunk_size as usize],
            Some(Chunk::Plain(b, _)) => b.clone(),
            Some(Chunk::Ec(cells, _)) => {
                let code = ec.expect("EC chunk without code");
                let k = code.data_cells();
                let mut out = Vec::with_capacity(self.chunk_size as usize);
                for cell in &cells[..k] {
                    out.extend_from_slice(cell);
                }
                out.truncate(self.chunk_size as usize);
                out
            }
        }
    }

    // simlint::allow(hot-alloc) — full-data cell packing for EC; sized-payload runs never reach this
    fn encode_cells(buf: &[u8], code: &ErasureCode) -> Vec<Vec<u8>> {
        let k = code.data_cells();
        let cell_len = buf.len().div_ceil(k);
        let mut padded = buf.to_vec();
        padded.resize(cell_len * k, 0);
        let data: Vec<&[u8]> = padded.chunks(cell_len).collect();
        let parity = code.encode(&data);
        data.into_iter().map(|c| c.to_vec()).chain(parity).collect()
    }

    /// Read `len` bytes at `offset`.  Holes read as zeros (sparse-array
    /// semantics).  `avail` reports the health of the shard group backing
    /// each chunk; erasure-coded chunks with missing cells are
    /// reconstructed with the real decode.
    // simlint::allow(panic-path) — EC chunks are created only for objects carrying an erasure code, so `ec` is Some wherever an `Chunk::Ec` is met (constructor invariant)
    // simlint::allow(hot-alloc) — a read materialises the returned payload; the caller owns those bytes by contract
    pub fn read(
        &self,
        offset: u64,
        len: u64,
        mode: DataMode,
        ec: Option<&ErasureCode>,
        avail: &dyn Fn(u64) -> CellAvailability,
    ) -> Result<ReadPayload, DataError> {
        if mode == DataMode::Sized {
            // Availability still gates the read.
            for c in self.chunks_in_range(offset, len) {
                match avail(c) {
                    CellAvailability::All => {}
                    CellAvailability::Unavailable => return Err(DataError::Unavailable),
                    CellAvailability::Mask(mask) => {
                        let code = ec.expect("EC availability without code");
                        let alive = mask.iter().filter(|&&a| a).count();
                        if alive < code.data_cells() {
                            return Err(DataError::Unavailable);
                        }
                    }
                }
            }
            return Ok(ReadPayload::Sized(len));
        }
        let mut out = vec![0u8; len as usize];
        let cs = self.chunk_size;
        let mut pos = offset;
        let end = offset + len;
        let mut cursor = 0usize;
        while pos < end {
            let chunk_idx = pos / cs;
            let within = (pos % cs) as usize;
            let take = ((cs as usize - within) as u64).min(end - pos) as usize;
            let dst = &mut out[cursor..cursor + take];
            match self.chunks.get(&chunk_idx) {
                None => {}               // hole: zeros
                Some(Chunk::Sized) => {} // sized marker in full mode: zeros
                Some(Chunk::Plain(b, _)) => match avail(chunk_idx) {
                    CellAvailability::Unavailable => return Err(DataError::Unavailable),
                    _ => dst.copy_from_slice(&b[within..within + take]),
                },
                Some(Chunk::Ec(cells, _)) => {
                    let code = ec.expect("EC chunk without code");
                    let masked: Vec<Option<Vec<u8>>> = match avail(chunk_idx) {
                        CellAvailability::All => cells.iter().cloned().map(Some).collect(),
                        CellAvailability::Unavailable => return Err(DataError::Unavailable),
                        CellAvailability::Mask(mask) => {
                            assert_eq!(mask.len(), cells.len());
                            cells
                                .iter()
                                .zip(&mask)
                                .map(|(c, &up)| up.then(|| c.clone()))
                                .collect()
                        }
                    };
                    let data = code.reconstruct(&masked).ok_or(DataError::Unavailable)?;
                    let mut logical = Vec::with_capacity(cs as usize);
                    for cell in &data {
                        logical.extend_from_slice(cell);
                    }
                    logical.truncate(cs as usize);
                    dst.copy_from_slice(&logical[within..within + take]);
                }
            }
            pos += take as u64;
            cursor += take;
        }
        Ok(ReadPayload::Bytes(out))
    }

    /// Whether a chunk has ever been written.
    pub fn chunk_written(&self, idx: u64) -> bool {
        self.chunks.contains_key(&idx)
    }

    /// Flip one stored byte backing `offset` — a **planted-violation test
    /// hook** for the durability oracles, never called by any data path.
    /// For erasure-coded chunks the flip lands inside the data cell
    /// holding the byte, modelling silent on-device corruption of a
    /// single EC cell.  Returns `false` when no real byte backs the
    /// offset (hole, or Sized mode).
    pub fn corrupt_at(&mut self, offset: u64) -> bool {
        let idx = offset / self.chunk_size;
        let within = (offset % self.chunk_size) as usize;
        match self.chunks.get_mut(&idx) {
            Some(Chunk::Plain(b, _)) => match b.get_mut(within) {
                Some(byte) => {
                    *byte ^= 0xFF;
                    true
                }
                None => false,
            },
            Some(Chunk::Ec(cells, _)) => {
                let cell_len = match cells.first() {
                    Some(c) if !c.is_empty() => c.len(),
                    _ => return false,
                };
                match cells
                    .get_mut(within / cell_len)
                    .and_then(|cell| cell.get_mut(within % cell_len))
                {
                    Some(byte) => {
                        *byte ^= 0xFF;
                        true
                    }
                    None => false,
                }
            }
            None | Some(Chunk::Sized) => false,
        }
    }

    /// Flip one stored byte inside parity cell `parity_idx` of the
    /// erasure-coded chunk containing `offset` — the planted-rot hook
    /// for cells no logical byte offset addresses.  Returns `false` for
    /// non-EC chunks or out-of-range parity indices.
    pub fn corrupt_parity_at(&mut self, offset: u64, parity_idx: usize, ec: &ErasureCode) -> bool {
        let idx = offset / self.chunk_size;
        let within = (offset % self.chunk_size) as usize;
        match self.chunks.get_mut(&idx) {
            Some(Chunk::Ec(cells, _)) => {
                let cell = ec.data_cells() + parity_idx;
                let cell_len = match cells.first() {
                    Some(c) if !c.is_empty() => c.len(),
                    _ => return false,
                };
                match cells
                    .get_mut(cell)
                    .and_then(|c| c.get_mut(within % cell_len))
                {
                    Some(byte) => {
                        *byte ^= 0xFF;
                        true
                    }
                    None => false,
                }
            }
            _ => false,
        }
    }

    /// Recompute and compare the stored checksum of chunk `idx`.
    /// `None` when the chunk verifies (or holds no bytes at rest);
    /// otherwise the mismatch with the offending EC cells.
    pub fn verify_chunk(&self, idx: u64) -> Option<CsumMismatch> {
        match self.chunks.get(&idx)? {
            Chunk::Sized => None,
            Chunk::Plain(b, stored) => (!self.codec.verify(b, *stored)).then(|| CsumMismatch {
                chunk: idx,
                cells: Vec::new(),
            }),
            Chunk::Ec(cells, sums) => {
                let bad: Vec<usize> = cells
                    .iter()
                    .zip(sums)
                    .enumerate()
                    .filter(|(_, (c, s))| !self.codec.verify(c, **s))
                    .map(|(i, _)| i)
                    .collect();
                (!bad.is_empty()).then_some(CsumMismatch {
                    chunk: idx,
                    cells: bad,
                })
            }
        }
    }

    /// Recompute checksums over every chunk touched by
    /// `[offset, offset+len)` and return the mismatches in chunk order.
    pub fn verify_range(&self, offset: u64, len: u64) -> Vec<CsumMismatch> {
        self.chunks_in_range(offset, len)
            .filter_map(|c| self.verify_chunk(c))
            .collect()
    }

    /// Written chunk indices in order — the scrubber's scan domain.
    pub fn written_chunks(&self) -> impl Iterator<Item = u64> + '_ {
        self.chunks.keys().copied()
    }

    /// Bytes at rest backing chunk `idx` (cells included for EC; 0 for
    /// holes and Sized markers).
    pub fn chunk_stored_bytes(&self, idx: u64) -> u64 {
        match self.chunks.get(&idx) {
            None | Some(Chunk::Sized) => 0,
            Some(Chunk::Plain(b, _)) => b.len() as u64,
            Some(Chunk::Ec(cells, _)) => cells.iter().map(|c| c.len() as u64).sum(),
        }
    }

    /// Truncate/extend the array's logical size (`daos_array_set_size`).
    pub fn set_size(&mut self, size: u64) {
        if size < self.size {
            let first_dead = size.div_ceil(self.chunk_size);
            self.chunks.retain(|&c, _| c < first_dead);
        }
        self.size = size;
    }
}

/// An object's payload: KV or Array.
#[derive(Debug, Clone)]
pub enum ObjData {
    /// Key-Value object.
    Kv(KvData),
    /// Array object.
    Array(ArrayData),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::payload::Payload;

    fn all(_c: u64) -> CellAvailability {
        CellAvailability::All
    }

    #[test]
    fn kv_put_get_list_remove() {
        let mut kv = KvData::new();
        kv.put(b"step/0001", Payload::Bytes(vec![1, 2]));
        kv.put(b"step/0002", Payload::Sized(100));
        kv.put(b"other", Payload::Sized(1));
        assert_eq!(kv.get(b"step/0001").unwrap().len(), 2);
        assert_eq!(kv.list(b"step/").len(), 2);
        assert_eq!(kv.len(), 3);
        assert!(kv.remove(b"other"));
        assert!(!kv.remove(b"other"));
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn array_write_read_round_trip() {
        let mut a = ArrayData::new(64);
        let data: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
        a.write(10, &Payload::Bytes(data.clone()), DataMode::Full, None);
        assert_eq!(a.size(), 210);
        let r = a.read(10, 200, DataMode::Full, None, &all).unwrap();
        assert_eq!(r.bytes().unwrap(), &data[..]);
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut a = ArrayData::new(64);
        a.write(128, &Payload::Bytes(vec![7; 64]), DataMode::Full, None);
        let r = a.read(0, 192, DataMode::Full, None, &all).unwrap();
        let b = r.bytes().unwrap();
        assert!(b[..128].iter().all(|&x| x == 0));
        assert!(b[128..].iter().all(|&x| x == 7));
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut a = ArrayData::new(32);
        a.write(0, &Payload::Bytes(vec![1; 64]), DataMode::Full, None);
        a.write(16, &Payload::Bytes(vec![2; 32]), DataMode::Full, None);
        let b = a.read(0, 64, DataMode::Full, None, &all).unwrap();
        let b = b.bytes().unwrap().to_vec();
        assert!(b[..16].iter().all(|&x| x == 1));
        assert!(b[16..48].iter().all(|&x| x == 2));
        assert!(b[48..].iter().all(|&x| x == 1));
    }

    #[test]
    fn sized_mode_tracks_size_only() {
        let mut a = ArrayData::new(1024);
        a.write(0, &Payload::Sized(4096), DataMode::Sized, None);
        assert_eq!(a.size(), 4096);
        let r = a.read(0, 4096, DataMode::Sized, None, &all).unwrap();
        assert_eq!(r, ReadPayload::Sized(4096));
    }

    #[test]
    fn ec_write_read_and_degraded_reconstruction() {
        let code = ErasureCode::new(2, 1);
        let mut a = ArrayData::new(128);
        let mut rng = simkit::SplitMix64::new(9);
        let mut data = vec![0u8; 256];
        rng.fill_bytes(&mut data);
        a.write(
            0,
            &Payload::Bytes(data.clone()),
            DataMode::Full,
            Some(&code),
        );

        // healthy read
        let r = a.read(0, 256, DataMode::Full, Some(&code), &all).unwrap();
        assert_eq!(r.bytes().unwrap(), &data[..]);

        // degraded read: first data cell of every chunk lost
        let degraded = |_c: u64| CellAvailability::Mask(vec![false, true, true]);
        let r = a
            .read(0, 256, DataMode::Full, Some(&code), &degraded)
            .unwrap();
        assert_eq!(r.bytes().unwrap(), &data[..], "reconstructed from parity");

        // two cells lost: unrecoverable
        let dead = |_c: u64| CellAvailability::Mask(vec![false, false, true]);
        assert_eq!(
            a.read(0, 256, DataMode::Full, Some(&code), &dead),
            Err(DataError::Unavailable)
        );
    }

    #[test]
    fn ec_partial_chunk_rmw() {
        let code = ErasureCode::new(2, 1);
        let mut a = ArrayData::new(100); // not divisible by k: exercises padding
        a.write(
            0,
            &Payload::Bytes(vec![3; 100]),
            DataMode::Full,
            Some(&code),
        );
        a.write(
            25,
            &Payload::Bytes(vec![9; 10]),
            DataMode::Full,
            Some(&code),
        );
        let degraded = |_c: u64| CellAvailability::Mask(vec![true, false, true]);
        let r = a
            .read(0, 100, DataMode::Full, Some(&code), &degraded)
            .unwrap();
        let b = r.bytes().unwrap();
        assert!(b[..25].iter().all(|&x| x == 3));
        assert!(b[25..35].iter().all(|&x| x == 9));
        assert!(b[35..].iter().all(|&x| x == 3));
    }

    #[test]
    fn corrupt_at_flips_real_bytes_only() {
        // Plain chunk: the flip is visible to a healthy read.
        let mut a = ArrayData::new(64);
        a.write(0, &Payload::Bytes(vec![5; 64]), DataMode::Full, None);
        assert!(a.corrupt_at(10));
        let b = a.read(0, 64, DataMode::Full, None, &all).unwrap();
        assert_eq!(b.bytes().unwrap()[10], 5 ^ 0xFF);

        // EC chunk: the flip lands in the data cell backing the offset.
        let code = ErasureCode::new(2, 1);
        let mut e = ArrayData::new(128);
        e.write(
            0,
            &Payload::Bytes(vec![7; 128]),
            DataMode::Full,
            Some(&code),
        );
        assert!(e.corrupt_at(100)); // second data cell (cell_len = 64)
        let b = e.read(0, 128, DataMode::Full, Some(&code), &all).unwrap();
        assert_eq!(b.bytes().unwrap()[100], 7 ^ 0xFF);

        // Holes and Sized chunks hold no bytes to corrupt.
        let mut s = ArrayData::new(64);
        s.write(0, &Payload::Sized(64), DataMode::Sized, None);
        assert!(!s.corrupt_at(0));
        assert!(!s.corrupt_at(1 << 20));
    }

    #[test]
    fn verify_detects_flips_and_repair_by_reflip() {
        // Plain chunk: clean until rot lands, clean again when the
        // repair path restores the byte (xor is an involution).
        let mut a = ArrayData::new(64);
        a.write(0, &Payload::Bytes(vec![5; 64]), DataMode::Full, None);
        assert!(a.verify_range(0, 64).is_empty());
        assert!(a.corrupt_at(10));
        let bad = a.verify_range(0, 64);
        assert_eq!(
            bad,
            vec![CsumMismatch {
                chunk: 0,
                cells: vec![]
            }]
        );
        assert!(a.corrupt_at(10)); // repair = restore from a healthy copy
        assert!(a.verify_range(0, 64).is_empty());

        // EC chunk: the mismatch names the offending cell, including
        // parity cells that no logical offset addresses.
        let code = ErasureCode::new(2, 1);
        let mut e = ArrayData::new(128);
        e.write(
            0,
            &Payload::Bytes(vec![7; 128]),
            DataMode::Full,
            Some(&code),
        );
        assert!(e.corrupt_at(100)); // second data cell
        assert!(e.corrupt_parity_at(0, 0, &code));
        let bad = e.verify_chunk(0).expect("rot detected");
        assert_eq!(bad.cells, vec![1, 2]);
        assert!(e.corrupt_at(100));
        assert!(e.corrupt_parity_at(0, 0, &code));
        assert!(e.verify_chunk(0).is_none());

        // Sized chunks hold no bytes at rest: nothing to verify.
        let mut s = ArrayData::new(64);
        s.write(0, &Payload::Sized(64), DataMode::Sized, None);
        assert!(s.verify_range(0, 64).is_empty());
        assert!(!s.corrupt_parity_at(0, 0, &code));
    }

    #[test]
    fn overwrite_recomputes_checksums() {
        let mut a = ArrayData::new(64);
        a.write(0, &Payload::Bytes(vec![5; 64]), DataMode::Full, None);
        assert!(a.corrupt_at(10));
        // A full-chunk overwrite replaces bytes and checksum together.
        a.write(0, &Payload::Bytes(vec![9; 64]), DataMode::Full, None);
        assert!(a.verify_range(0, 64).is_empty());
        assert_eq!(a.chunk_stored_bytes(0), 64);
    }

    #[test]
    fn kv_values_are_checksummed() {
        let mut kv = KvData::new();
        kv.put(b"k", Payload::Bytes(vec![1, 2, 3]));
        kv.put(b"sized", Payload::Sized(100));
        assert_eq!(kv.verify(b"k"), Some(true));
        assert_eq!(kv.verify(b"sized"), Some(true));
        assert_eq!(kv.verify(b"missing"), None);
        assert!(kv.corrupt_value(b"k"));
        assert_eq!(kv.verify(b"k"), Some(false));
        assert!(kv.corrupt_value(b"k")); // repair restores the byte
        assert_eq!(kv.verify(b"k"), Some(true));
        assert!(!kv.corrupt_value(b"sized"));
    }

    #[test]
    fn plain_chunk_unavailable() {
        let mut a = ArrayData::new(64);
        a.write(0, &Payload::Bytes(vec![1; 64]), DataMode::Full, None);
        let down = |_c: u64| CellAvailability::Unavailable;
        assert_eq!(
            a.read(0, 64, DataMode::Full, None, &down),
            Err(DataError::Unavailable)
        );
    }

    #[test]
    fn sized_mode_respects_availability() {
        let code = ErasureCode::new(2, 1);
        let mut a = ArrayData::new(64);
        a.write(0, &Payload::Sized(64), DataMode::Sized, Some(&code));
        let dead = |_c: u64| CellAvailability::Mask(vec![false, false, true]);
        assert!(a.read(0, 64, DataMode::Sized, Some(&code), &dead).is_err());
    }

    #[test]
    fn set_size_truncates_chunks() {
        let mut a = ArrayData::new(64);
        a.write(0, &Payload::Bytes(vec![5; 256]), DataMode::Full, None);
        a.set_size(100);
        assert_eq!(a.size(), 100);
        assert!(a.chunk_written(0));
        assert!(a.chunk_written(1));
        assert!(!a.chunk_written(3));
        a.set_size(300);
        assert_eq!(a.size(), 300);
    }

    #[test]
    fn chunk_range_math() {
        let a = ArrayData::new(100);
        assert_eq!(a.chunks_in_range(0, 0), 0..0);
        assert_eq!(a.chunks_in_range(0, 100), 0..1);
        assert_eq!(a.chunks_in_range(0, 101), 0..2);
        assert_eq!(a.chunks_in_range(99, 2), 0..2);
        assert_eq!(a.chunks_in_range(250, 1), 2..3);
    }
}
