//! Property tests: placement balance, EC round trips, array semantics.

use cluster::payload::Payload;
use daos_core::data::{ArrayData, CellAvailability, DataMode};
use daos_core::{ErasureCode, ObjectClass, OidAllocator, PoolMap};
use proptest::prelude::*;

proptest! {
    /// Any k-subset of EC cells reconstructs the stripe.
    #[test]
    fn ec_any_k_of_n_recovers(
        k in 2usize..6,
        p in 1usize..4,
        cell_len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let ec = ErasureCode::new(k, p);
        let mut rng = simkit::SplitMix64::new(seed);
        let data: Vec<Vec<u8>> = (0..k).map(|_| {
            let mut c = vec![0u8; cell_len];
            rng.fill_bytes(&mut c);
            c
        }).collect();
        let refs: Vec<&[u8]> = data.iter().map(|c| c.as_slice()).collect();
        let parity = ec.encode(&refs);
        // choose p cells to drop, pseudo-randomly
        let mut cells: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
            .chain(parity.into_iter().map(Some)).collect();
        let mut dropped = 0;
        while dropped < p {
            let i = (rng.next_below((k + p) as u64)) as usize;
            if cells[i].is_some() {
                cells[i] = None;
                dropped += 1;
            }
        }
        let rec = ec.reconstruct(&cells).expect("k cells survive");
        prop_assert_eq!(rec, data);
    }

    /// S1 objects spread evenly over pool targets.
    #[test]
    fn placement_is_balanced(
        servers in 2usize..8,
        tps in 4usize..16,
        objects in 200usize..400,
    ) {
        let pm = PoolMap::new(servers, tps);
        let mut alloc = OidAllocator::new();
        let n = pm.total_targets();
        let mut counts = vec![0usize; n];
        for _ in 0..objects {
            let oid = alloc.next(ObjectClass::S1, 0);
            let l = pm.layout(&oid, ObjectClass::S1);
            counts[pm.index(l.groups[0][0])] += 1;
        }
        let mean = objects as f64 / n as f64;
        let max = *counts.iter().max().unwrap() as f64;
        prop_assert!(max < mean * 4.0 + 8.0, "hot target: max {max}, mean {mean:.1}");
    }

    /// Array write-then-read returns exactly what was written, for any
    /// offsets/lengths/chunk sizes, plain or EC.
    #[test]
    fn array_rw_roundtrip(
        chunk in 1u64..200,
        writes in proptest::collection::vec((0u64..500, 1usize..300, any::<u8>()), 1..12),
        use_ec in any::<bool>(),
    ) {
        let ec = use_ec.then(|| ErasureCode::new(2, 1));
        let mut a = ArrayData::new(chunk);
        let mut model = vec![0u8; 1024];
        let mut high = 0u64;
        for (off, len, byte) in &writes {
            let data = vec![*byte; *len];
            a.write(*off, &Payload::Bytes(data.clone()), DataMode::Full, ec.as_ref());
            model[*off as usize..*off as usize + len].copy_from_slice(&data);
            high = high.max(off + *len as u64);
        }
        prop_assert_eq!(a.size(), high);
        let all = |_c: u64| CellAvailability::All;
        let r = a.read(0, high, DataMode::Full, ec.as_ref(), &all).unwrap();
        prop_assert_eq!(r.bytes().unwrap(), &model[..high as usize]);
    }

    /// EC arrays survive the loss of any single cell per group.
    #[test]
    fn ec_array_degraded_read(
        chunk in 8u64..100,
        len in 1usize..512,
        lost in 0usize..3,
        seed in any::<u64>(),
    ) {
        let ec = ErasureCode::new(2, 1);
        let mut rng = simkit::SplitMix64::new(seed);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        let mut a = ArrayData::new(chunk);
        a.write(0, &Payload::Bytes(data.clone()), DataMode::Full, Some(&ec));
        let mask: Vec<bool> = (0..3).map(|i| i != lost).collect();
        let avail = move |_c: u64| CellAvailability::Mask(mask.clone());
        let r = a.read(0, len as u64, DataMode::Full, Some(&ec), &avail).unwrap();
        prop_assert_eq!(r.bytes().unwrap(), &data[..]);
    }
}
