//! Shape assertions: miniature versions of the paper's experiments that
//! assert its qualitative findings hold in the reproduction.  These are
//! the contract the full `repro` figures are built on — if one of these
//! breaks, a figure's trend broke too.
//!
//! Scales are kept small so `cargo test` stays fast; the bandwidth
//! *ratios* asserted here are robust to scale.

use benchkit::scenarios::{run_scenario, RunSpec, Scenario};
use cluster::Calibration;
use daos_core::ObjectClass;

fn spec(servers: usize, nodes: usize, ppn: usize, ops: usize) -> RunSpec {
    let mut s = RunSpec::new(servers, nodes, ppn);
    s.ops_per_proc = ops;
    s
}

/// C3 (§III-D): erasure coding 2+1 cuts write bandwidth to about two
/// thirds and leaves reads untouched.
#[test]
fn ec_2p1_writes_two_thirds_reads_unchanged() {
    // the redundancy ladder shows at saturation (the paper's regime):
    // give the 4 servers plenty of concurrent writers
    let cal = Calibration::default();
    let base = spec(4, 8, 32, 32);
    let none = run_scenario(&base, Scenario::IorDaos, &cal);
    let mut ec = base.clone();
    ec.data_class = ObjectClass::EC_2P1;
    ec.meta_class = ObjectClass::RP_2;
    let coded = run_scenario(&ec, Scenario::IorDaos, &cal);
    let w_ratio = coded.write.bandwidth() / none.write.bandwidth();
    let r_ratio = coded.read.bandwidth() / none.read.bandwidth();
    assert!(
        (0.5..0.85).contains(&w_ratio),
        "EC write ratio {w_ratio:.2}, expected ~2/3"
    );
    assert!(
        (0.8..1.2).contains(&r_ratio),
        "EC read ratio {r_ratio:.2}, expected ~1"
    );
}

/// C3 (§III-D): replication factor 2 halves write bandwidth.
#[test]
fn rf2_halves_writes() {
    let cal = Calibration::default();
    let base = spec(4, 8, 32, 32);
    let none = run_scenario(&base, Scenario::IorDaos, &cal);
    let mut rp = base.clone();
    rp.data_class = ObjectClass::RP_2;
    rp.meta_class = ObjectClass::RP_2;
    let mirrored = run_scenario(&rp, Scenario::IorDaos, &cal);
    let w_ratio = mirrored.write.bandwidth() / none.write.bandwidth();
    assert!(
        (0.38..0.65).contains(&w_ratio),
        "RF2 write ratio {w_ratio:.2}, expected ~1/2"
    );
}

/// Fig. 2: the interception library beats plain DFUSE clearly at 1 KiB.
#[test]
fn interception_beats_dfuse_at_small_io() {
    let cal = Calibration::default();
    let mut s = spec(4, 4, 16, 128);
    s.transfer = 1 << 10;
    let dfuse = run_scenario(&s, Scenario::IorDfuse, &cal);
    let il = run_scenario(&s, Scenario::IorDfuseIl, &cal);
    let ratio = il.write.iops() / dfuse.write.iops();
    assert!(
        ratio > 2.0,
        "IL/DFUSE write IOPS ratio {ratio:.2}, expected >2"
    );
    let ratio_r = il.read.iops() / dfuse.read.iops();
    assert!(ratio_r > 1.3, "IL/DFUSE read IOPS ratio {ratio_r:.2}");
}

/// Fig. 1: at 1 MiB the four APIs converge (DFUSE within ~25% of
/// libdaos at saturation).
#[test]
fn apis_converge_for_large_io() {
    let cal = Calibration::default();
    let s = spec(2, 4, 16, 32);
    let native = run_scenario(&s, Scenario::IorDaos, &cal);
    let dfuse = run_scenario(&s, Scenario::IorDfuse, &cal);
    let ratio = dfuse.write.bandwidth() / native.write.bandwidth();
    assert!(ratio > 0.75, "DFUSE/libdaos 1 MiB ratio {ratio:.2}");
}

/// Fig. 7: fdb-hammer writes on Lustre stay comparable to DAOS (the
/// buffered large flushes), while the metadata-heavy reads are capped by
/// the single MDS.  At full paper scale the default MDS rate binds at
/// 16 servers; this miniature pins the mechanism by scaling the MDS
/// capacity down with the deployment.
#[test]
fn lustre_fdb_reads_mds_bound() {
    // 4-server miniature of the 16-server experiment: scale the MDS the
    // same way the hardware scaled (4x fewer data servers -> exercise
    // the ceiling at 1/4 the op rate)
    let cal = Calibration {
        mds_iops: 45_000.0,
        ..Calibration::default()
    };
    let s = spec(4, 8, 16, 32);
    let daos = run_scenario(&s, Scenario::FdbDaos, &cal);
    let lustre = run_scenario(&s, Scenario::FdbLustre, &cal);
    let w_ratio = lustre.write.bandwidth() / daos.write.bandwidth();
    let r_ratio = lustre.read.bandwidth() / daos.read.bandwidth();
    assert!(w_ratio > 0.6, "Lustre fdb writes comparable: {w_ratio:.2}");
    assert!(
        r_ratio < 0.75,
        "Lustre fdb reads must trail DAOS: ratio {r_ratio:.2}"
    );
    // and the ceiling is the metadata rate: ~4 MDS ops per field
    let fields_per_sec = lustre.read.bandwidth() / (1 << 20) as f64;
    assert!(
        fields_per_sec < 45_000.0 / 4.0 * 1.2,
        "read field rate {fields_per_sec:.0}/s must sit at the MDS ceiling"
    );
}

/// Fig. 8/9: fdb-hammer on Ceph lands at roughly two thirds of DAOS.
#[test]
fn ceph_fdb_two_thirds_of_daos() {
    let cal = Calibration::default();
    let s = spec(4, 8, 16, 32);
    let daos = run_scenario(&s, Scenario::FdbDaos, &cal);
    let ceph = run_scenario(&s, Scenario::FdbCeph, &cal);
    let w_ratio = ceph.write.bandwidth() / daos.write.bandwidth();
    let r_ratio = ceph.read.bandwidth() / daos.read.bandwidth();
    assert!(
        (0.4..0.95).contains(&w_ratio),
        "Ceph/DAOS fdb write ratio {w_ratio:.2}"
    );
    assert!(
        (0.4..0.98).contains(&r_ratio),
        "Ceph/DAOS fdb read ratio {r_ratio:.2}"
    );
}

/// §III-F: IOR's object-per-process pattern on Ceph is much slower than
/// on DAOS — no sharding, short-lived streams.
#[test]
fn ior_on_ceph_underperforms() {
    let cal = Calibration::default();
    let s = spec(4, 8, 16, 64);
    let daos = run_scenario(&s, Scenario::IorDaos, &cal);
    let ceph = run_scenario(&s, Scenario::IorCeph, &cal);
    let w_ratio = ceph.write.bandwidth() / daos.write.bandwidth();
    assert!(
        w_ratio < 0.7,
        "IOR-Ceph/DAOS write ratio {w_ratio:.2}, expected ~1/2"
    );
}

/// Fig. 4 vs Fig. 3: HDF5 on libdaos keeps up at small server counts but
/// collapses at 16 servers (container-per-process metadata ceiling).
#[test]
fn hdf5_daos_scaling_break() {
    let cal = Calibration::default();
    // small pool: HDF5 close to IOR
    let s4 = spec(2, 4, 16, 24);
    let ior4 = run_scenario(&s4, Scenario::IorDaos, &cal);
    let h54 = run_scenario(&s4, Scenario::IorHdf5Daos, &cal);
    let small_ratio = h54.write.bandwidth() / ior4.write.bandwidth();
    // large pool: HDF5 falls away
    let s16 = spec(16, 8, 16, 24);
    let ior16 = run_scenario(&s16, Scenario::IorDaos, &cal);
    let h516 = run_scenario(&s16, Scenario::IorHdf5Daos, &cal);
    let large_ratio = h516.write.bandwidth() / ior16.write.bandwidth();
    assert!(
        small_ratio > 0.55,
        "HDF5/libdaos keeps up at small scale: {small_ratio:.2}"
    );
    assert!(
        large_ratio < small_ratio * 0.8,
        "HDF5/libdaos must fall away at scale: {large_ratio:.2} vs {small_ratio:.2}"
    );
}

/// §III-B: Field I/O's size check makes its reads slower than
/// fdb-hammer's on the same deployment.
#[test]
fn fieldio_reads_trail_fdb() {
    let cal = Calibration::default();
    let s = spec(4, 4, 8, 32);
    let fio = run_scenario(&s, Scenario::FieldIo, &cal);
    let fdb = run_scenario(&s, Scenario::FdbDaos, &cal);
    assert!(
        fio.read.bandwidth() < fdb.read.bandwidth(),
        "size check must cost read bandwidth: fieldio {:.2} vs fdb {:.2}",
        fio.read.bandwidth() / cluster::GIB,
        fdb.read.bandwidth() / cluster::GIB
    );
}

/// Scalability (Fig. 5): doubling DAOS servers roughly doubles IOR
/// bandwidth in the scaling regime.
#[test]
fn ior_scales_with_servers() {
    let cal = Calibration::default();
    let small = run_scenario(&spec(4, 8, 16, 64), Scenario::IorDaos, &cal);
    let big = run_scenario(&spec(8, 8, 16, 64), Scenario::IorDaos, &cal);
    let ratio = big.write.bandwidth() / small.write.bandwidth();
    assert!(
        (1.5..2.3).contains(&ratio),
        "2x servers -> {ratio:.2}x write bandwidth"
    );
}

/// Ceph PG tuning (§III-F): too few placement groups hurt bandwidth.
#[test]
fn ceph_pg_count_matters() {
    let cal = Calibration::default();
    let mut few = spec(4, 8, 16, 32);
    few.pg_num = 24;
    let mut many = few.clone();
    many.pg_num = 1024;
    let r_few = run_scenario(&few, Scenario::FdbCeph, &cal);
    let r_many = run_scenario(&many, Scenario::FdbCeph, &cal);
    assert!(
        r_many.write.bandwidth() > r_few.write.bandwidth() * 1.05,
        "1024 PGs {:.2} must beat 24 PGs {:.2}",
        r_many.write.bandwidth() / cluster::GIB,
        r_few.write.bandwidth() / cluster::GIB
    );
}

/// The object-class ablation's core finding (the paper selected SX for
/// IOR): max sharding beats single-shard objects for parallel bulk I/O.
#[test]
fn sx_beats_s1_for_parallel_bulk_io() {
    let cal = Calibration::default();
    let mut sx = spec(4, 8, 16, 32);
    sx.data_class = ObjectClass::SX;
    let mut s1 = sx.clone();
    s1.data_class = ObjectClass::S1;
    let r_sx = run_scenario(&sx, Scenario::IorDaos, &cal);
    let r_s1 = run_scenario(&s1, Scenario::IorDaos, &cal);
    // with one target per object and 128 processes over 64 targets, the
    // per-object ceiling and placement imbalance cost bandwidth
    assert!(
        r_sx.write.bandwidth() > r_s1.write.bandwidth(),
        "SX {:.2} must beat S1 {:.2} GiB/s",
        r_sx.write.bandwidth() / cluster::GIB,
        r_s1.write.bandwidth() / cluster::GIB
    );
}

/// mdtest (conclusion C4): DAOS metadata rates scale with client load
/// while Lustre's MDS saturates.
#[test]
fn mdtest_daos_scales_lustre_saturates() {
    use benchkit::scenarios::{run_mdtest, MdStore};
    let cal = Calibration::default();
    let mut small = RunSpec::new(8, 4, 16);
    small.ops_per_proc = 24;
    let mut large = RunSpec::new(8, 32, 32);
    large.ops_per_proc = 24;
    let daos_small = run_mdtest(&small, MdStore::Dfuse, &cal)[0].iops();
    let daos_large = run_mdtest(&large, MdStore::Dfuse, &cal)[0].iops();
    let lustre_small = run_mdtest(&small, MdStore::Lustre, &cal)[0].iops();
    let lustre_large = run_mdtest(&large, MdStore::Lustre, &cal)[0].iops();
    assert!(
        daos_large > daos_small * 2.5,
        "DAOS creates scale with load: {daos_small:.0} -> {daos_large:.0}"
    );
    assert!(
        lustre_large < lustre_small * 1.5,
        "Lustre creates MDS-bound: {lustre_small:.0} -> {lustre_large:.0}"
    );
    assert!(daos_large > lustre_large * 2.0, "C4: DAOS wins at scale");
}
