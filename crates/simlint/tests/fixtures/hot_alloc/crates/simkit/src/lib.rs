//! Hot-alloc fixture: per-event allocation inside the engine crate.
//!
//! `pump` is the registered hot root.  `drain_batch` allocates on every
//! call and is reachable, so it is the Error-level true positive (the
//! fixture lives under a `crates/simkit/` path on purpose).  The
//! amortized setup and the cold reporter are the clean negatives, and
//! `stamp` in the sibling crate shows the Warn severity outside the
//! engine crate.

pub struct Engine {
    queue: Vec<u64>,
    tables: Vec<u64>,
}

impl Engine {
    // simlint::hot_root — fixture event loop
    pub fn pump(&mut self) {
        self.ensure_tables();
        let batch = self.drain_batch();
        for ev in batch {
            self.dispatch(ev);
        }
    }

    // Allocates a fresh batch buffer per call while hot-reachable: the
    // Error-level true positive.
    fn drain_batch(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(ev) = self.queue.pop() {
            out.push(ev);
        }
        out
    }

    fn dispatch(&mut self, ev: u64) {
        self.note(stamp(ev));
    }

    fn note(&mut self, ev: u64) {
        self.queue.push(ev);
    }

    // simlint::amortized — fixture: the table is built on first pump and
    // reused by every later one
    fn ensure_tables(&mut self) {
        if self.tables.is_empty() {
            self.tables = vec![0; 64];
        }
    }

    // Cold: allocates, but nothing on the hot path calls it.
    pub fn report(&self) -> String {
        format!("queue depth {}", self.queue.len())
    }
}
