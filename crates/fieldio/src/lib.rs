//! # field-io — ECMWF's Field I/O benchmark (§II-A3)
//!
//! A standalone tool that measures what DAOS can provide for numerical
//! weather prediction I/O without the full operational stack: a set of
//! independent processes, each writing a sequence of weather fields as
//! **S1 Arrays** (one Array per field) and indexing them through
//! **SX Key-Values** — some exclusive to the process, some shared by all
//! processes (~10 KV operations per field).
//!
//! In read mode the processes retrieve the same sequence by querying the
//! Key-Values, then — unlike fdb-hammer — performing an
//! **`array_get_size` check before every read**, the extra round trip
//! the paper identifies as the cause of Field I/O's merely linear read
//! scaling (§III-B).

use cluster::payload::{Payload, ReadPayload};
use daos_core::{
    ContainerId, DaosError, DaosSystem, DataMode, ObjectClass, Oid, OracleKind, OracleReport,
    Retriable, RetryExec, RetryPolicy, RetryStats, Violation,
};
use simkit::Step;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Errors surfaced by the benchmark library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldIoError {
    /// Field index out of range / never written.
    NoSuchField,
    /// Underlying DAOS failure.
    Daos(DaosError),
}

impl From<DaosError> for FieldIoError {
    fn from(e: DaosError) -> Self {
        FieldIoError::Daos(e)
    }
}

impl Retriable for FieldIoError {
    fn is_retriable(&self) -> bool {
        match self {
            FieldIoError::NoSuchField => false,
            FieldIoError::Daos(e) => e.is_retriable(),
        }
    }
}

/// Field I/O client state over one container.
// simlint::sim_state — replay-visible simulation state
pub struct FieldIo {
    daos: Rc<RefCell<DaosSystem>>,
    cid: ContainerId,
    array_class: ObjectClass,
    kv_class: ObjectClass,
    /// Shared SX Key-Values, updated by every process.
    shared_kvs: Vec<Oid>,
    /// Exclusive per-process Key-Values.
    proc_kvs: BTreeMap<usize, Oid>,
    fields: BTreeMap<(usize, usize), (Oid, u64)>,
    kv_ops_per_field: u32,
    kv_entry_bytes: f64,
    /// Whether reads perform the size check (on by default, as in the
    /// real tool; switchable for the ablation experiment).
    pub size_check_on_read: bool,
    /// Retry machinery around whole field operations (off by default).
    retry: RetryExec,
}

/// Shared KV updates per field (the rest go to the exclusive KV).
const SHARED_KV_OPS: u32 = 3;

impl FieldIo {
    /// Set up the benchmark in `cid`.  The paper's optimal classes:
    /// `SX` for Key-Values, `S1` for Arrays.
    pub fn new(
        daos: Rc<RefCell<DaosSystem>>,
        node: usize,
        cid: ContainerId,
    ) -> Result<(FieldIo, Step), FieldIoError> {
        Self::with_classes(daos, node, cid, ObjectClass::S1, ObjectClass::SX)
    }

    /// Set up with explicit object classes — the §III-D redundancy runs
    /// pair erasure-coded Arrays with replicated Key-Values.
    pub fn with_classes(
        daos: Rc<RefCell<DaosSystem>>,
        node: usize,
        cid: ContainerId,
        array_class: ObjectClass,
        kv_class: ObjectClass,
    ) -> Result<(FieldIo, Step), FieldIoError> {
        let (kv_ops_per_field, kv_entry_bytes) = {
            let d = daos.borrow();
            (d.cal().kv_ops_per_field, d.cal().kv_entry_bytes)
        };
        let mut steps = Vec::new();
        let mut shared_kvs = Vec::new();
        for _ in 0..2 {
            let (kv, s) = daos.borrow_mut().kv_create(node, cid, kv_class)?;
            shared_kvs.push(kv);
            steps.push(s);
        }
        Ok((
            FieldIo {
                daos,
                cid,
                array_class,
                kv_class,
                shared_kvs,
                proc_kvs: BTreeMap::new(),
                fields: BTreeMap::new(),
                kv_ops_per_field,
                kv_entry_bytes,
                size_check_on_read: true,
                retry: RetryExec::disabled(),
            },
            Step::seq(steps),
        ))
    }

    /// Use a different Array object class (the redundancy experiments
    /// switch to `EC_2P1`).
    pub fn set_array_class(&mut self, class: ObjectClass) {
        self.array_class = class;
    }

    /// The backing store.
    pub fn daos(&self) -> &Rc<RefCell<DaosSystem>> {
        &self.daos
    }

    /// The container the benchmark writes into.
    pub fn container(&self) -> ContainerId {
        self.cid
    }

    /// Configure retry/timeout/backoff on field operations (`seed`
    /// drives the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    /// Per-process preparation: create the exclusive index Key-Value.
    /// Benchmark harnesses run this outside the measured window.
    pub fn setup_proc(&mut self, node: usize, proc: usize) -> Result<Step, FieldIoError> {
        let (_, s) = self.proc_kv(node, proc)?;
        Ok(s)
    }

    fn proc_kv(&mut self, node: usize, proc: usize) -> Result<(Oid, Step), FieldIoError> {
        if let Some(&kv) = self.proc_kvs.get(&proc) {
            return Ok((kv, Step::Noop));
        }
        let kv_class = self.kv_class;
        let (kv, s) = self.daos.borrow_mut().kv_create(node, self.cid, kv_class)?;
        self.proc_kvs.insert(proc, kv);
        Ok((kv, s))
    }

    fn index_entry(&self, mode: DataMode) -> Payload {
        match mode {
            DataMode::Full => Payload::Bytes(vec![0xfe; self.kv_entry_bytes as usize]),
            DataMode::Sized => Payload::Sized(self.kv_entry_bytes as u64),
        }
    }

    /// Write field `idx` of process `proc`: one S1 Array plus the index
    /// Key-Value updates.
    pub fn write_field(
        &mut self,
        node: usize,
        proc: usize,
        idx: usize,
        data: Payload,
    ) -> Result<Step, FieldIoError> {
        // Take the executor out so the retried closure can borrow `self`.
        let bytes = data.len();
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run_step(|| self.write_field_inner(node, proc, idx, data.clone()));
        self.retry = retry;
        Ok(Step::span("fieldio", "write_field", bytes, r?))
    }

    fn write_field_inner(
        &mut self,
        node: usize,
        proc: usize,
        idx: usize,
        data: Payload,
    ) -> Result<Step, FieldIoError> {
        let len = data.len();
        let (own_kv, setup) = self.proc_kv(node, proc)?;
        let array_class = self.array_class;
        let mut daos = self.daos.borrow_mut();
        let (oid, s1) = daos.array_create(node, self.cid, array_class, 1 << 20)?;
        let s2 = daos.array_write(node, self.cid, oid, 0, data)?;
        let mode = daos.data_mode();
        let mut kv_steps = Vec::new();
        for i in 0..self.kv_ops_per_field {
            let key = format!("f/{proc}/{idx}/{i}");
            let value = self.index_entry(mode);
            let target = if i < SHARED_KV_OPS {
                self.shared_kvs[i as usize % self.shared_kvs.len()]
            } else {
                own_kv
            };
            kv_steps.push(daos.kv_put(node, self.cid, target, key.as_bytes(), value)?);
        }
        drop(daos);
        self.fields.insert((proc, idx), (oid, len));
        Ok(Step::seq([setup, s1, s2, Step::par(kv_steps)]))
    }

    /// Read field `idx` of process `proc`: index queries, then (in the
    /// real tool's fashion) a size check, then the Array read.
    pub fn read_field(
        &mut self,
        node: usize,
        proc: usize,
        idx: usize,
    ) -> Result<(ReadPayload, Step), FieldIoError> {
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run(|| self.read_field_inner(node, proc, idx));
        self.retry = retry;
        let (data, s) = r?;
        let bytes = data.len();
        Ok((data, Step::span("fieldio", "read_field", bytes, s)))
    }

    fn read_field_inner(
        &mut self,
        node: usize,
        proc: usize,
        idx: usize,
    ) -> Result<(ReadPayload, Step), FieldIoError> {
        let &(oid, len) = self
            .fields
            .get(&(proc, idx))
            .ok_or(FieldIoError::NoSuchField)?;
        let own_kv = *self.proc_kvs.get(&proc).ok_or(FieldIoError::NoSuchField)?;
        let mut daos = self.daos.borrow_mut();
        // index lookups mirror the write-side distribution
        let mut kv_steps = Vec::new();
        for i in 0..self.kv_ops_per_field {
            let key = format!("f/{proc}/{idx}/{i}");
            let target = if i < SHARED_KV_OPS {
                self.shared_kvs[i as usize % self.shared_kvs.len()]
            } else {
                own_kv
            };
            let (_, s) = daos.kv_get(node, self.cid, target, key.as_bytes())?;
            kv_steps.push(s);
        }
        // the size check: a serial round trip before the data read
        let size_step = if self.size_check_on_read {
            let (size, s) = daos.array_get_size(node, self.cid, oid)?;
            debug_assert_eq!(size, len);
            s
        } else {
            Step::Noop
        };
        let (data, s_read) = daos.array_read(node, self.cid, oid, 0, len)?;
        drop(daos);
        Ok((data, Step::seq([Step::par(kv_steps), size_step, s_read])))
    }

    /// Number of fields stored.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Cross-check the KV index against the Array data: every field ever
    /// written must still have all of its index entries (shared and
    /// exclusive), an `array_get_size` matching the written length, and
    /// a servable Array read.  An index entry without data (or data
    /// without its index) is exactly the torn state a crash mid-
    /// `write_field` could leave behind.
    ///
    /// Offline audit for the chaos oracles: returned `Step` costs are
    /// discarded and the simulated schedule is not perturbed.
    // simlint::allow(digest-taint) — offline audit: cost steps are discarded; only crash-detection bookkeeping is touched, after quiescence
    pub fn verify_consistency(&mut self, node: usize) -> OracleReport {
        let mut report = OracleReport::default();
        let mut daos = self.daos.borrow_mut();
        // detection is monotone per (client, target), so one retry per
        // pool target bounds the TargetDown absorption loop
        let budget = daos.pool().total_targets();
        for (&(proc, idx), &(oid, len)) in &self.fields {
            report.checked_kv += 1;
            for i in 0..self.kv_ops_per_field {
                let key = format!("f/{proc}/{idx}/{i}");
                let target = if i < SHARED_KV_OPS {
                    self.shared_kvs[i as usize % self.shared_kvs.len()]
                } else {
                    match self.proc_kvs.get(&proc) {
                        Some(&kv) => kv,
                        None => {
                            report.violations.push(Violation {
                                oracle: OracleKind::FieldIoConsistency,
                                subject: format!("field {proc}/{idx}"),
                                detail: "field recorded but its process index KV was never created"
                                    .into(),
                            });
                            continue;
                        }
                    }
                };
                let mut got = daos.kv_get(node, self.cid, target, key.as_bytes());
                let mut left = budget;
                while matches!(got, Err(DaosError::TargetDown)) && left > 0 {
                    left -= 1;
                    got = daos.kv_get(node, self.cid, target, key.as_bytes());
                }
                if let Err(e) = got {
                    report.violations.push(Violation {
                        oracle: OracleKind::FieldIoConsistency,
                        subject: format!("field {proc}/{idx} index key {key}"),
                        detail: format!("index entry unreadable: {e:?}"),
                    });
                }
            }
            report.checked_extents += 1;
            let mut got = daos.array_get_size(node, self.cid, oid);
            let mut left = budget;
            while matches!(got, Err(DaosError::TargetDown)) && left > 0 {
                left -= 1;
                got = daos.array_get_size(node, self.cid, oid);
            }
            match got {
                Ok((size, _s)) if size != len => report.violations.push(Violation {
                    oracle: OracleKind::FieldIoConsistency,
                    subject: format!("field {proc}/{idx}"),
                    detail: format!("index records {len} bytes, array reports {size}"),
                }),
                Err(e) => report.violations.push(Violation {
                    oracle: OracleKind::FieldIoConsistency,
                    subject: format!("field {proc}/{idx}"),
                    detail: format!("size check failed: {e:?}"),
                }),
                Ok(_) => {
                    let mut got = daos.array_read(node, self.cid, oid, 0, len);
                    let mut left = budget;
                    while matches!(got, Err(DaosError::TargetDown)) && left > 0 {
                        left -= 1;
                        got = daos.array_read(node, self.cid, oid, 0, len);
                    }
                    match got {
                        Ok((data, _s)) if data.len() != len => report.violations.push(Violation {
                            oracle: OracleKind::FieldIoConsistency,
                            subject: format!("field {proc}/{idx}"),
                            detail: format!("read returned {} of {len} bytes", data.len()),
                        }),
                        Err(e) => report.violations.push(Violation {
                            oracle: OracleKind::FieldIoConsistency,
                            subject: format!("field {proc}/{idx}"),
                            detail: format!("field data unreadable: {e:?}"),
                        }),
                        Ok(_) => {}
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::ContainerProps;
    use simkit::{run, OpId, Scheduler, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    fn fixture(mode: DataMode) -> (Scheduler, FieldIo) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, mode);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (fio, s) = FieldIo::new(daos, 0, cid).unwrap();
        exec(&mut sched, s);
        (sched, fio)
    }

    #[test]
    fn write_read_round_trip() {
        let (mut sched, mut fio) = fixture(DataMode::Full);
        let mut rng = simkit::SplitMix64::new(8);
        let mut field = vec![0u8; 80_000];
        rng.fill_bytes(&mut field);
        exec(
            &mut sched,
            fio.write_field(0, 0, 0, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        let (data, s) = fio.read_field(0, 0, 0).unwrap();
        exec(&mut sched, s);
        assert_eq!(data.bytes().unwrap(), &field[..]);
        assert_eq!(
            fio.read_field(0, 0, 9).unwrap_err(),
            FieldIoError::NoSuchField
        );
    }

    #[test]
    fn array_per_field_and_kv_objects() {
        let (mut sched, mut fio) = fixture(DataMode::Sized);
        for p in 0..2 {
            for i in 0..5 {
                exec(
                    &mut sched,
                    fio.write_field(0, p, i, Payload::Sized(1 << 20)).unwrap(),
                );
            }
        }
        assert_eq!(fio.field_count(), 10);
        // 10 arrays + 2 shared KVs + 2 proc KVs
        let count = fio.daos().borrow().object_count(fio.container()).unwrap();
        assert_eq!(count, 14);
    }

    #[test]
    fn size_check_adds_a_round_trip() {
        let (mut sched, mut fio) = fixture(DataMode::Sized);
        exec(
            &mut sched,
            fio.write_field(0, 0, 0, Payload::Sized(1 << 20)).unwrap(),
        );
        let (_, with_check) = fio.read_field(0, 0, 0).unwrap();
        let t_with = exec(&mut sched, with_check);
        fio.size_check_on_read = false;
        let (_, without) = fio.read_field(0, 0, 0).unwrap();
        let t_without = exec(&mut sched, without);
        assert!(
            t_with > t_without,
            "size check must cost time: {t_with} vs {t_without}"
        );
    }

    #[test]
    fn consistency_oracle_catches_torn_index() {
        let (mut sched, mut fio) = fixture(DataMode::Full);
        for i in 0..3 {
            let mut rng = simkit::SplitMix64::new(20 + i as u64);
            let mut field = vec![0u8; 10_000];
            rng.fill_bytes(&mut field);
            exec(
                &mut sched,
                fio.write_field(0, 0, i, Payload::Bytes(field)).unwrap(),
            );
        }
        let report = fio.verify_consistency(0);
        assert!(
            report.ok(),
            "healthy index must audit clean:\n{}",
            report.render()
        );
        assert_eq!(report.checked_kv, 3);
        // Tear field 1: drop one of its exclusive index entries behind
        // the benchmark's back (i = 3 is past the shared ops).
        let cid = fio.container();
        let own_kv = *fio.proc_kvs.get(&0).unwrap();
        let s = fio
            .daos()
            .borrow_mut()
            .kv_remove(0, cid, own_kv, b"f/0/1/3")
            .unwrap();
        exec(&mut sched, s);
        let report = fio.verify_consistency(0);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.oracle, OracleKind::FieldIoConsistency);
        assert!(v.subject.contains("f/0/1/3"), "{}", v.subject);
        assert!(v.detail.contains("NoSuchKey"), "{}", v.detail);
    }

    #[test]
    fn ec_arrays_supported() {
        let (mut sched, mut fio) = fixture(DataMode::Full);
        fio.set_array_class(ObjectClass::EC_2P1);
        let mut rng = simkit::SplitMix64::new(9);
        let mut field = vec![0u8; 40_000];
        rng.fill_bytes(&mut field);
        exec(
            &mut sched,
            fio.write_field(0, 0, 0, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        let (data, s) = fio.read_field(0, 0, 0).unwrap();
        exec(&mut sched, s);
        assert_eq!(data.bytes().unwrap(), &field[..]);
    }
}
