//! # fdb-sim — ECMWF's FDB domain object store, re-implemented
//!
//! FDB archives and retrieves weather fields by scientific key, fully
//! abstracting the storage system (§II-A4).  This crate provides the
//! [`Fdb`] interface plus the three backends the paper exercises with
//! fdb-hammer:
//!
//! * [`FdbPosix`] — per-writer index/data file pairs with client-side
//!   write buffering and large sequential flushes (the Lustre runs);
//! * [`FdbDaos`] — one S1 Array per field, S1 Key-Value indexing, ~10 KV
//!   ops per field, no read-time size checks;
//! * [`FdbCeph`] — one RADOS object per field plus index objects.

pub mod backend;
pub mod ceph;
pub mod daos;
pub mod key;
pub mod posix;

pub use backend::{Fdb, FdbError};
pub use ceph::FdbCeph;
pub use daos::FdbDaos;
pub use key::{FieldKey, KeyQuery};
pub use posix::FdbPosix;
