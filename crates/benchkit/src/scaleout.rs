//! Scale-out sweeps: delivered bandwidth versus server count, and the
//! paper's **+3.86 GiB/s per added server** claim.
//!
//! §III-A of the paper measures each storage server's local NVMe at
//! 3.86 GiB/s sustained write bandwidth, and the scaling experiments
//! hinge on aggregate IOR write bandwidth growing by about that much for
//! every server added.  This module reruns that ladder on the simulated
//! deployment: a geometric rung sweep (4 → 256 servers by default),
//! clients scaled with servers so the client side never bottlenecks,
//! and an optionally **heterogeneous** fleet (a repeating cycle of
//! per-server NVMe speed factors modelling mixed device generations).
//!
//! Every rung runs **twice from fresh state** and the two replay
//! digests must be byte-identical — the same determinism bar as the
//! chaos families.  The fitted least-squares slope of bandwidth over
//! server count is compared against `min(speed cycle) × 3.86 GiB/s` —
//! uniform placement spreads data evenly, so the slowest device
//! generation paces time-to-last-byte — with an EXPERIMENTS.md-style
//! shape verdict ([`Verdict`]).

use crate::driver::run_phase;
use crate::scenarios::{exec, make_sched, RunSpec};
use crate::verdict::Verdict;
use cluster::{Calibration, ClusterSpec, GIB};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use ior_bench::{Ior, IorBackend, IorConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of a scale-out sweep.
#[derive(Debug, Clone)]
pub struct ScaleoutConfig {
    /// Server counts to run, in order (the ladder).
    pub rungs: Vec<usize>,
    /// Client nodes per rung = `servers` (each client NIC carries
    /// 6.25 GiB/s against 3.86 GiB/s of server NVMe, so matching counts
    /// keeps the server side the bottleneck).
    /// Processes per client node.
    pub ppn: usize,
    /// Write ops per process.
    pub ops_per_proc: usize,
    /// Transfer size per op in bytes.
    pub transfer: u64,
    /// In-flight ops per process (saturation without a paper-scale
    /// process count).
    pub queue_depth: usize,
    /// Per-server NVMe speed factors, applied cyclically by rank —
    /// `[1.0]` is a homogeneous fleet.  The claim's expected slope
    /// scales by the cycle minimum (the slowest generation paces
    /// time-to-last-byte under uniform placement).
    pub speed_cycle: Vec<f64>,
}

impl Default for ScaleoutConfig {
    fn default() -> Self {
        ScaleoutConfig {
            rungs: vec![4, 8, 16, 32, 64, 128, 256],
            ppn: 16,
            ops_per_proc: 16,
            transfer: 4 << 20,
            queue_depth: 2,
            // mixed device generations averaging to the calibrated speed
            speed_cycle: vec![1.0, 0.85, 1.15, 1.0],
        }
    }
}

/// One rung of the ladder.
#[derive(Debug, Clone)]
pub struct ScaleoutRung {
    /// Deployed servers.
    pub servers: usize,
    /// Client nodes.
    pub clients: usize,
    /// Delivered write bandwidth, GiB/s (first run).
    pub write_bw_gib: f64,
    /// Bandwidth per server at this rung.
    pub per_server_gib: f64,
    /// Replay digest of the first run.
    pub digest: u64,
    /// Both runs produced byte-identical digests and bandwidths.
    pub deterministic: bool,
}

/// The sweep's result: rungs, fitted slope, and the claim verdicts.
#[derive(Debug, Clone)]
pub struct ScaleoutReport {
    /// One entry per rung, in ladder order.
    pub rungs: Vec<ScaleoutRung>,
    /// Least-squares slope of bandwidth over server count, GiB/s per
    /// added server.
    pub slope_gib_per_server: f64,
    /// The claim's slope for this fleet: `min(speed_cycle) × 3.86`.
    pub expected_slope: f64,
    /// Shape verdicts (scaling linearity, slope band, determinism).
    pub verdicts: Vec<Verdict>,
}

impl ScaleoutReport {
    /// Every verdict green.
    pub fn passed(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// Aligned text table plus the verdict lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>12} {:>12} {:>7}  digest",
            "servers", "clients", "GiB/s", "GiB/s/srv", "replay"
        );
        for r in &self.rungs {
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>12.2} {:>12.2} {:>7} {:#018x}",
                r.servers,
                r.clients,
                r.write_bw_gib,
                r.per_server_gib,
                if r.deterministic { "ok" } else { "DIVERGE" },
                r.digest
            );
        }
        let _ = writeln!(
            out,
            "slope {:.2} GiB/s per server (claim {:.2})",
            self.slope_gib_per_server, self.expected_slope
        );
        out.push_str(&crate::verdict::render(&self.verdicts));
        out
    }

    /// The machine-readable artifact CI commits: rungs, slope, claim
    /// band and per-verdict results (hand-rolled JSON, stable field
    /// order).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"claim\": \"+3.86 GiB/s per added server\",\n");
        s.push_str(&format!(
            "  \"slope_gib_per_server\": {:.4},\n  \"expected_slope\": {:.4},\n  \"pass\": {},\n",
            self.slope_gib_per_server,
            self.expected_slope,
            self.passed()
        ));
        s.push_str("  \"rungs\": [\n");
        for (i, r) in self.rungs.iter().enumerate() {
            s.push_str(&format!(
                concat!(
                    "    {{\"servers\": {}, \"clients\": {}, \"write_bw_gib\": {:.4}, ",
                    "\"per_server_gib\": {:.4}, \"digest\": \"{:#018x}\", ",
                    "\"deterministic\": {}}}{}\n"
                ),
                r.servers,
                r.clients,
                r.write_bw_gib,
                r.per_server_gib,
                r.digest,
                r.deterministic,
                if i + 1 < self.rungs.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"verdicts\": [\n");
        for (i, v) in self.verdicts.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"claim\": \"{}\", \"pass\": {}, \"evidence\": \"{}\"}}{}\n",
                v.claim,
                v.pass,
                v.evidence,
                if i + 1 < self.verdicts.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// One measured run at `servers` servers: write-phase IOR over a fleet
/// with the cyclic speed mix, returning (bandwidth GiB/s, digest).
// simlint::digest_root — scale-out replay digest entry
fn run_rung(cfg: &ScaleoutConfig, cal: &Calibration, servers: usize) -> (f64, u64) {
    let clients = servers;
    let mut spec = RunSpec::new(servers, clients, cfg.ppn);
    spec.ops_per_proc = cfg.ops_per_proc;
    spec.transfer = cfg.transfer;
    spec.queue_depth = cfg.queue_depth;
    let mut sched = make_sched(&spec, false);
    let speeds: Vec<f64> = (0..servers)
        .map(|s| cfg.speed_cycle[s % cfg.speed_cycle.len()])
        .collect();
    let topo = ClusterSpec::new(servers, clients)
        .with_cal(cal.clone())
        .with_server_speeds(speeds)
        .build(&mut sched);
    let mut daos_sys = DaosSystem::deploy(&topo, &mut sched, servers, DataMode::Sized);
    let (cid, s) = daos_sys.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos_sys));
    let mut ior_cfg = IorConfig::new(spec.procs(), clients, cfg.ops_per_proc);
    ior_cfg.transfer_size = cfg.transfer;
    ior_cfg.queue_depth = spec.queue_depth;
    let backend = IorBackend::Daos {
        daos: daos.clone(),
        cid,
        // each file shards over one server's worth of targets; the
        // placement hash spreads files across the fleet
        oclass: ObjectClass::Sharded(cal.targets_per_server as u16),
    };
    let mut ior = Ior::new(ior_cfg, backend);
    let write = run_phase(&mut sched, &mut ior);
    (write.bandwidth() / GIB, sched.digest())
}

/// Least-squares slope of `y` over `x`.
fn ls_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let num: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let den: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    num / den.max(1e-9)
}

/// Run the ladder under `cfg`: every rung twice from fresh state
/// (byte-identical digests required), then fit the slope and evaluate
/// the claim verdicts.
pub fn run_scaleout_with(cfg: &ScaleoutConfig, cal: &Calibration) -> ScaleoutReport {
    let mut rungs = Vec::with_capacity(cfg.rungs.len());
    for &servers in &cfg.rungs {
        let (bw_a, digest_a) = run_rung(cfg, cal, servers);
        let (bw_b, digest_b) = run_rung(cfg, cal, servers);
        rungs.push(ScaleoutRung {
            servers,
            clients: servers,
            write_bw_gib: bw_a,
            per_server_gib: bw_a / servers as f64,
            digest: digest_a,
            deterministic: digest_a == digest_b && bw_a == bw_b,
        });
    }
    let points: Vec<(f64, f64)> = rungs
        .iter()
        .map(|r| (r.servers as f64, r.write_bw_gib))
        .collect();
    let slope = ls_slope(&points);
    // uniform random placement spreads data evenly, so time-to-last-byte
    // is paced by the slowest device generation in the cycle
    let min_speed = cfg.speed_cycle.iter().copied().fold(f64::MAX, f64::min);
    let expected = min_speed * cal.server_nvme_write_bw / GIB;

    let mut verdicts = Vec::new();
    // shape: every doubling of servers lands close to doubled bandwidth
    let mut worst_ratio = f64::MAX;
    let mut best_ratio = 0.0f64;
    for w in rungs.windows(2) {
        let growth = w[1].servers as f64 / w[0].servers as f64;
        let ratio = w[1].write_bw_gib / w[0].write_bw_gib.max(1e-9) / growth;
        worst_ratio = worst_ratio.min(ratio);
        best_ratio = best_ratio.max(ratio);
    }
    verdicts.push(Verdict {
        claim: "scaleout-linear".into(),
        expectation: "bandwidth grows ~linearly with server count".into(),
        pass: rungs.len() < 2 || (worst_ratio > 0.8 && best_ratio < 1.2),
        evidence: format!("per-doubling efficiency {worst_ratio:.2}..{best_ratio:.2}"),
    });
    // the NVMe rate is the ideal; random placement leaves some straggler
    // skew in time-to-last-byte, so the band admits up to 25% shortfall
    verdicts.push(Verdict {
        claim: "scaleout-slope".into(),
        expectation: format!("+{expected:.2} GiB/s per added server (§III-A NVMe rate)"),
        pass: slope > expected * 0.75 && slope < expected * 1.05,
        evidence: format!("fitted slope {slope:.2} GiB/s/server"),
    });
    verdicts.push(Verdict {
        claim: "scaleout-replay".into(),
        expectation: "every rung replays byte-identically".into(),
        pass: rungs.iter().all(|r| r.deterministic),
        evidence: format!(
            "{}/{} rungs deterministic",
            rungs.iter().filter(|r| r.deterministic).count(),
            rungs.len()
        ),
    });

    ScaleoutReport {
        rungs,
        slope_gib_per_server: slope,
        expected_slope: expected,
        verdicts,
    }
}

/// Run the default 4 → 256 ladder.
pub fn run_scaleout(cal: &Calibration) -> ScaleoutReport {
    run_scaleout_with(&ScaleoutConfig::default(), cal)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short homogeneous ladder: slope lands inside the claim band
    /// and every rung replays identically.
    #[test]
    fn short_ladder_tracks_the_claim_slope() {
        let cfg = ScaleoutConfig {
            rungs: vec![4, 8, 16],
            speed_cycle: vec![1.0],
            ..ScaleoutConfig::default()
        };
        let report = run_scaleout_with(&cfg, &Calibration::default());
        assert_eq!(report.rungs.len(), 3);
        assert!(
            report.passed(),
            "short ladder verdicts:\n{}",
            report.render()
        );
    }

    /// A heterogeneous mix scales the expected slope by the cycle
    /// minimum.
    #[test]
    fn hetero_cycle_scales_expected_slope() {
        let cfg = ScaleoutConfig {
            rungs: vec![4, 8],
            speed_cycle: vec![0.5],
            ..ScaleoutConfig::default()
        };
        let report = run_scaleout_with(&cfg, &Calibration::default());
        let full = 3.86;
        assert!((report.expected_slope - 0.5 * full).abs() < 0.01);
    }

    #[test]
    fn json_artifact_has_stable_shape() {
        let cfg = ScaleoutConfig {
            rungs: vec![4],
            ..ScaleoutConfig::default()
        };
        let report = run_scaleout_with(&cfg, &Calibration::default());
        let json = report.render_json();
        let doc = simkit::json::parse(&json).expect("artifact parses");
        assert!(doc.get("slope_gib_per_server").is_some());
        assert!(doc.get("rungs").and_then(|r| r.as_arr()).is_some());
        assert_eq!(doc.get("rungs").unwrap().as_arr().unwrap().len(), 1);
    }
}
