//! Causal span tracing: a per-run log of `(layer, op)` intervals forming
//! a tree per submitted I/O.
//!
//! A [`Step::Span`](crate::step::Step::Span) node annotates the sub-tree
//! it wraps; when span recording is enabled the engine opens a
//! [`SpanRecord`] on entry and closes it when the wrapped work completes.
//! Parentage follows the *dynamic* nesting of span steps — the nearest
//! enclosing open span at `exec` time — which matches the real call path
//! each interface crate models (IOR → POSIX → DFUSE → DFS → libdaos →
//! target, …), so one completed op yields one causal tree.
//!
//! Ids are allocated deterministically in `exec` order, and every span
//! open/close (plus fault marks) folds into a dedicated FNV-1a **span
//! digest** — the same machinery as the replay digest, kept separate so
//! enabling tracing never perturbs the `(time, op)` completion digest.
//! Two traced runs of the same workload must report identical span
//! digests; a drifting span id, start or end time changes the value.
//!
//! Off by default: with recording disabled a span step costs one branch
//! and allocates nothing, mirroring the completion trace.

use crate::time::SimTime;
use crate::trace::ReplayDigest;

/// Identifier of an open or closed span.  `SpanId::NONE` (zero) means
/// "no enclosing span" — the parent of every root span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots).
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One completed (or still-open) span interval.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id (1-based; index into the log is `id - 1`).
    pub id: SpanId,
    /// Nearest enclosing span at open time; `NONE` for roots.
    pub parent: SpanId,
    /// Root of this span's tree (its own id for roots).
    pub root: SpanId,
    /// Layer that emitted the span ("dfuse", "libdaos", "target", …).
    pub layer: &'static str,
    /// Operation within the layer ("write", "kv_put", "rebuild", …).
    pub op: &'static str,
    /// Payload bytes moved under this span (0 for metadata ops).
    // simlint::dim(bytes)
    pub bytes: u64,
    /// Retry attempt ordinal (0 = first try; >0 marks retried work).
    pub attempt: u32,
    /// Open time.
    pub start: SimTime,
    /// Close time; [`SimTime::NEVER`] while still open.
    pub end: SimTime,
}

impl SpanRecord {
    /// Duration in nanoseconds (zero while the span is still open).
    #[inline]
    pub fn duration_ns(&self) -> u64 {
        if self.end == SimTime::NEVER {
            0
        } else {
            self.end.nanos_since(self.start)
        }
    }

    /// True once the span has been closed.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.end != SimTime::NEVER
    }
}

/// An instantaneous event pinned to the span timeline (fired faults).
#[derive(Debug, Clone, Copy)]
pub struct SpanMark {
    /// Firing time.
    pub at: SimTime,
    /// Fault event id (see [`crate::faults::FaultEvent`]).
    pub fault_id: u64,
    /// Enclosing span, if any (faults are global today: `NONE`).
    pub span: SpanId,
}

// Digest tag bytes separating the three span event streams from each
// other and from the completion/fault streams of the replay digest.
const TAG_OPEN: u8 = 0x51;
const TAG_CLOSE: u8 = 0x52;
const TAG_MARK: u8 = 0x53;

/// The per-run span log: records, fault marks, and the span digest.
// simlint::span_source — span open/close must fold into the span digest on every mutation path
#[derive(Debug, Default)]
pub struct SpanLog {
    enabled: bool,
    records: Vec<SpanRecord>,
    marks: Vec<SpanMark>,
    digest: ReplayDigest,
}

impl SpanLog {
    /// A log that records nothing (the default; one branch of overhead).
    pub fn disabled() -> SpanLog {
        SpanLog::default()
    }

    /// A recording log.
    pub fn recording() -> SpanLog {
        SpanLog {
            enabled: true,
            ..SpanLog::default()
        }
    }

    /// Whether spans are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span; returns its id.  Ids are dense and 1-based, so the
    /// record lives at `records[id - 1]` and close is O(1).
    // simlint::hot_root — span recorder: one open per traced op hop
    pub(crate) fn open(
        &mut self,
        at: SimTime,
        parent: SpanId,
        layer: &'static str,
        op: &'static str,
        bytes: u64,
        attempt: u32,
    ) -> SpanId {
        debug_assert!(self.enabled, "open() on a disabled SpanLog");
        let id = SpanId(self.records.len() as u64 + 1);
        let root = if parent.is_none() {
            id
        } else {
            self.records[parent.0 as usize - 1].root
        };
        self.digest.update_tagged(TAG_OPEN, at, id.0);
        self.digest.update_bytes(layer.as_bytes());
        self.digest.update_bytes(op.as_bytes());
        self.records.push(SpanRecord {
            id,
            parent,
            root,
            layer,
            op,
            bytes,
            attempt,
            start: at,
            end: SimTime::NEVER,
        });
        id
    }

    /// Close span `id` at `at`.
    pub(crate) fn close(&mut self, at: SimTime, id: SpanId) {
        debug_assert!(!id.is_none());
        self.digest.update_tagged(TAG_CLOSE, at, id.0);
        if let Some(rec) = self.records.get_mut(id.0 as usize - 1) {
            rec.end = at;
        }
    }

    /// Record an instantaneous fault mark on the span timeline.
    pub(crate) fn mark_fault(&mut self, at: SimTime, fault_id: u64, span: SpanId) {
        if !self.enabled {
            return;
        }
        self.digest.update_tagged(TAG_MARK, at, fault_id);
        self.marks.push(SpanMark { at, fault_id, span });
    }

    /// All spans in id order (open spans have `end == SimTime::NEVER`).
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// All fault marks in firing order.
    pub fn marks(&self) -> &[SpanMark] {
        &self.marks
    }

    /// Number of spans opened so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no span has been opened.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Order-sensitive FNV-1a digest of every span open/close and fault
    /// mark.  Separate from the replay digest: enabling tracing changes
    /// this value only, never the `(time, op)` completion digest.
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_is_empty_and_stable() {
        let log = SpanLog::disabled();
        assert!(!log.is_enabled());
        assert!(log.is_empty());
        assert_eq!(log.digest(), SpanLog::disabled().digest());
    }

    #[test]
    fn parentage_and_roots() {
        let mut log = SpanLog::recording();
        let a = log.open(SimTime::ZERO, SpanId::NONE, "ior", "write", 8, 0);
        let b = log.open(SimTime::from_nanos(1), a, "dfuse", "write", 8, 0);
        let c = log.open(SimTime::from_nanos(2), b, "libdaos", "array_write", 8, 0);
        log.close(SimTime::from_nanos(5), c);
        log.close(SimTime::from_nanos(7), b);
        log.close(SimTime::from_nanos(9), a);
        let recs = log.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].parent, SpanId::NONE);
        assert_eq!(recs[0].root, a);
        assert_eq!(recs[2].parent, b);
        assert_eq!(recs[2].root, a);
        assert_eq!(recs[2].duration_ns(), 3);
        assert!(recs.iter().all(SpanRecord::is_closed));
    }

    #[test]
    fn digest_tracks_span_stream() {
        let run = |shift: u64| {
            let mut log = SpanLog::recording();
            let a = log.open(SimTime::from_nanos(shift), SpanId::NONE, "l", "o", 0, 0);
            log.close(SimTime::from_nanos(shift + 4), a);
            log.digest()
        };
        assert_eq!(run(0), run(0), "identical span streams hash identically");
        assert_ne!(run(0), run(1), "a shifted span changes the digest");
    }

    #[test]
    fn fault_marks_fold_into_digest() {
        let mut a = SpanLog::recording();
        let mut b = SpanLog::recording();
        a.mark_fault(SimTime::from_nanos(3), 7, SpanId::NONE);
        assert_ne!(a.digest(), b.digest());
        b.mark_fault(SimTime::from_nanos(3), 7, SpanId::NONE);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.marks().len(), 1);
    }
}
