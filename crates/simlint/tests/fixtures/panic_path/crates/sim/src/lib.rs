//! panic-path fixture: reachable and unreachable panic sites.

// simlint::panic_root — fixture fault handler: must never panic
pub fn on_fault(slot: Option<u32>, table: &[u32]) -> u32 {
    lookup(slot) + pick(table)
}

/// Reachable from the root: the unwrap is an error-level finding.
fn lookup(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

/// Reachable from the root: indexing is reported at warn level only.
fn pick(table: &[u32]) -> u32 {
    table[0]
}

/// Same unwrap, but nothing reaches this function: clean.
pub fn offline_lookup(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

// simlint::retry_entry — fixture closure executor
pub fn run_retry<F: FnMut() -> Option<u32>>(mut op: F) -> Option<u32> {
    op()
}

/// Calls the retry executor, so its own expect fires mid-retry: finding.
pub fn drive() -> u32 {
    run_retry(|| Some(7)).expect("retry gave up")
}
