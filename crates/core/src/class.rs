//! Object classes: sharding, replication and erasure-coding policies.
//!
//! DAOS object classes are chosen at object-create time and control how
//! an object is laid out across targets.  The paper exercises:
//!
//! * `S1` — a single shard, no redundancy (Arrays/KVs of Field I/O and
//!   fdb-hammer);
//! * `SX` — sharded across *all* pool targets (IOR Arrays, dfs files);
//! * `RP_2` — two-way replication (directories/KVs in the redundancy
//!   tests);
//! * `EC_2P1` — 2 data + 1 parity erasure coding (Fig. 6).

use std::fmt;

/// Layout policy of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// `S<n>`: sharded over `n` targets, no redundancy.
    Sharded(u16),
    /// `SX`: sharded over every target in the pool, no redundancy.
    ShardedMax,
    /// `RP_<r>`: every shard group holds `r` full replicas.
    Replicated {
        /// Number of replicas (≥ 2).
        replicas: u8,
        /// Shard groups (`None` = all targets, like `GX`).
        shards: Option<u16>,
    },
    /// `EC_<k>P<p>`: stripes of `k` data plus `p` parity cells.
    ErasureCoded {
        /// Data cells per stripe.
        k: u8,
        /// Parity cells per stripe.
        p: u8,
    },
}

impl ObjectClass {
    /// Single-shard class `S1`.
    pub const S1: ObjectClass = ObjectClass::Sharded(1);
    /// Max-sharded class `SX`.
    pub const SX: ObjectClass = ObjectClass::ShardedMax;
    /// Two-way replication, `RP_2`.
    pub const RP_2: ObjectClass = ObjectClass::Replicated {
        replicas: 2,
        shards: Some(1),
    };
    /// Three-way replication, `RP_3`.
    pub const RP_3: ObjectClass = ObjectClass::Replicated {
        replicas: 3,
        shards: Some(1),
    };
    /// 2 + 1 erasure coding, `EC_2P1`.
    pub const EC_2P1: ObjectClass = ObjectClass::ErasureCoded { k: 2, p: 1 };
    /// 4 + 2 erasure coding, `EC_4P2`.
    pub const EC_4P2: ObjectClass = ObjectClass::ErasureCoded { k: 4, p: 2 };

    /// Replication factor `r` with all-target sharding (`RP_<r>GX`).
    pub fn rp_gx(replicas: u8) -> ObjectClass {
        ObjectClass::Replicated {
            replicas,
            shards: None,
        }
    }

    /// Number of shard groups given the pool's target count.
    pub fn shard_groups(&self, pool_targets: usize) -> usize {
        let g = match self {
            ObjectClass::Sharded(n) => *n as usize,
            ObjectClass::ShardedMax => pool_targets,
            ObjectClass::Replicated { replicas, shards } => match shards {
                Some(n) => *n as usize,
                // all targets divided into groups of `replicas`
                None => (pool_targets / *replicas as usize).max(1),
            },
            ObjectClass::ErasureCoded { k, p } => {
                (pool_targets / (*k as usize + *p as usize)).max(1)
            }
        };
        g.clamp(1, pool_targets.max(1))
    }

    /// Targets per shard group (1, `r`, or `k + p`).
    pub fn group_width(&self) -> usize {
        match self {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => 1,
            ObjectClass::Replicated { replicas, .. } => *replicas as usize,
            ObjectClass::ErasureCoded { k, p } => *k as usize + *p as usize,
        }
    }

    /// Bytes physically written per logical byte (1.0, `r`, or
    /// `(k+p)/k` — the paper's ½ and ⅔ write-bandwidth results).
    pub fn write_amplification(&self) -> f64 {
        match self {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => 1.0,
            ObjectClass::Replicated { replicas, .. } => *replicas as f64,
            ObjectClass::ErasureCoded { k, p } => (*k as f64 + *p as f64) / *k as f64,
        }
    }

    /// How many target losses per group the class tolerates.
    pub fn redundancy(&self) -> usize {
        match self {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => 0,
            ObjectClass::Replicated { replicas, .. } => *replicas as usize - 1,
            ObjectClass::ErasureCoded { p, .. } => *p as usize,
        }
    }

    /// Whether this class may be used for Key-Value objects.  DAOS
    /// erasure-codes only byte-array extents; KV redundancy uses
    /// replication (the paper makes the same distinction in §III-D).
    pub fn supports_kv(&self) -> bool {
        !matches!(self, ObjectClass::ErasureCoded { .. })
    }

    /// Numeric id embedded in the OID's reserved bits.
    pub fn encode(&self) -> u16 {
        match self {
            ObjectClass::Sharded(n) => *n, // 1..=0x7fff
            ObjectClass::ShardedMax => 0x8000,
            ObjectClass::Replicated { replicas, shards } => {
                0x9000 | ((*replicas as u16) << 8) | shards.map_or(0xff, |s| s.min(0xfe)) & 0x00ff
            }
            ObjectClass::ErasureCoded { k, p } => 0xa000 | ((*k as u16) << 4) | *p as u16,
        }
    }

    /// Inverse of [`ObjectClass::encode`].
    pub fn decode(bits: u16) -> Option<ObjectClass> {
        match bits {
            0 => None,
            n if n < 0x8000 => Some(ObjectClass::Sharded(n)),
            0x8000 => Some(ObjectClass::ShardedMax),
            n if n & 0xf000 == 0x9000 => {
                let replicas = ((n >> 8) & 0xf) as u8;
                let s = n & 0xff;
                let shards = if s == 0xff { None } else { Some(s) };
                (replicas >= 2).then_some(ObjectClass::Replicated { replicas, shards })
            }
            n if n & 0xf000 == 0xa000 => {
                let k = ((n >> 4) & 0xff) as u8;
                let p = (n & 0xf) as u8;
                (k >= 1 && p >= 1).then_some(ObjectClass::ErasureCoded { k, p })
            }
            _ => None,
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectClass::Sharded(n) => write!(f, "S{n}"),
            ObjectClass::ShardedMax => write!(f, "SX"),
            ObjectClass::Replicated {
                replicas,
                shards: Some(1),
            } => write!(f, "RP_{replicas}"),
            ObjectClass::Replicated {
                replicas,
                shards: None,
            } => write!(f, "RP_{replicas}GX"),
            ObjectClass::Replicated {
                replicas,
                shards: Some(s),
            } => {
                write!(f, "RP_{replicas}G{s}")
            }
            ObjectClass::ErasureCoded { k, p } => write!(f, "EC_{k}P{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_groups_respect_pool_size() {
        assert_eq!(ObjectClass::S1.shard_groups(256), 1);
        assert_eq!(ObjectClass::SX.shard_groups(256), 256);
        assert_eq!(ObjectClass::Sharded(8).shard_groups(256), 8);
        // clamped to pool size
        assert_eq!(ObjectClass::Sharded(300).shard_groups(16), 16);
        assert_eq!(ObjectClass::EC_2P1.shard_groups(256), 85);
        assert_eq!(ObjectClass::rp_gx(2).shard_groups(256), 128);
    }

    #[test]
    fn widths_and_amplification() {
        assert_eq!(ObjectClass::S1.group_width(), 1);
        assert_eq!(ObjectClass::RP_2.group_width(), 2);
        assert_eq!(ObjectClass::EC_2P1.group_width(), 3);
        assert_eq!(ObjectClass::S1.write_amplification(), 1.0);
        assert_eq!(ObjectClass::RP_2.write_amplification(), 2.0);
        assert!((ObjectClass::EC_2P1.write_amplification() - 1.5).abs() < 1e-12);
        assert_eq!(ObjectClass::EC_2P1.redundancy(), 1);
        assert_eq!(ObjectClass::RP_3.redundancy(), 2);
    }

    #[test]
    fn kv_support() {
        assert!(ObjectClass::S1.supports_kv());
        assert!(ObjectClass::RP_2.supports_kv());
        assert!(!ObjectClass::EC_2P1.supports_kv());
    }

    #[test]
    fn encode_decode_round_trip() {
        for class in [
            ObjectClass::S1,
            ObjectClass::SX,
            ObjectClass::Sharded(12),
            ObjectClass::RP_2,
            ObjectClass::RP_3,
            ObjectClass::rp_gx(2),
            ObjectClass::EC_2P1,
            ObjectClass::EC_4P2,
        ] {
            assert_eq!(ObjectClass::decode(class.encode()), Some(class), "{class}");
        }
        assert_eq!(ObjectClass::decode(0), None);
    }

    #[test]
    fn display_names_match_daos() {
        assert_eq!(ObjectClass::S1.to_string(), "S1");
        assert_eq!(ObjectClass::SX.to_string(), "SX");
        assert_eq!(ObjectClass::RP_2.to_string(), "RP_2");
        assert_eq!(ObjectClass::EC_2P1.to_string(), "EC_2P1");
        assert_eq!(ObjectClass::rp_gx(2).to_string(), "RP_2GX");
    }
}
