//! Byte-size units used throughout the workspace.
//!
//! The canonical definitions now live in [`simkit::units`] (where the
//! `Bytes`/`Rate` newtypes and second↔nanosecond helpers are); this
//! module re-exports them so existing `cluster::units` / `cluster::GIB`
//! call sites keep working unchanged.

pub use simkit::units::{
    fmt_bw, fmt_bytes, ns_to_secs, ops_interval_ns, secs_to_ns, Bytes, Rate, GB, GIB, KIB, MB, MIB,
    NS_PER_SEC,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_match_canonical_values() {
        assert_eq!(KIB, 1024.0);
        assert_eq!(MIB, 1048576.0);
        assert_eq!(GIB, 1073741824.0);
        assert_eq!(fmt_bw(61.76 * GIB), "61.76 GiB/s");
    }
}
