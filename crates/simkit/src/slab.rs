//! A minimal slab allocator: stable integer keys, O(1) insert/remove.
//!
//! Used by the engine for flows and continuations.  Kept dependency-free
//! on purpose.

/// Slab of `T` with reusable `u32` keys.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: Option<u32>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    Vacant { next_free: Option<u32> },
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, returning its key.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        match self.free_head {
            Some(idx) => {
                match self.entries[idx as usize] {
                    Entry::Vacant { next_free } => self.free_head = next_free,
                    Entry::Occupied(_) => unreachable!("free list points at occupied entry"),
                }
                self.entries[idx as usize] = Entry::Occupied(value);
                idx
            }
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry::Occupied(value));
                idx
            }
        }
    }

    /// Remove and return the value at `key`.
    ///
    /// Panics if `key` is vacant — removal of a dead key is always an
    /// engine bug, never a recoverable condition.
    pub fn remove(&mut self, key: u32) -> T {
        let slot = &mut self.entries[key as usize];
        match std::mem::replace(
            slot,
            Entry::Vacant {
                next_free: self.free_head,
            },
        ) {
            Entry::Occupied(v) => {
                self.free_head = Some(key);
                self.len -= 1;
                v
            }
            vacant @ Entry::Vacant { .. } => {
                *slot = vacant;
                panic!("slab: remove of vacant key {key}");
            }
        }
    }

    /// Shared access.
    pub fn get(&self, key: u32) -> Option<&T> {
        match self.entries.get(key as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        match self.entries.get_mut(key as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Iterate `(key, &value)` over live entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied(v) => Some((i as u32, v)),
                Entry::Vacant { .. } => None,
            })
    }

    /// Iterate `(key, &mut value)` over live entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut T)> {
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied(v) => Some((i as u32, v)),
                Entry::Vacant { .. } => None,
            })
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free_head = None;
        self.len = 0;
    }
}

impl<T> std::ops::Index<u32> for Slab<T> {
    type Output = T;
    fn index(&self, key: u32) -> &T {
        // simlint::allow(panic-path) — std `Index` contract: vacant-key indexing is a caller bug; fallible access goes through `get()`
        self.get(key).expect("slab: index of vacant key")
    }
}

impl<T> std::ops::IndexMut<u32> for Slab<T> {
    fn index_mut(&mut self, key: u32) -> &mut T {
        self.get_mut(key).expect("slab: index of vacant key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s[a], "a");
        assert_eq!(s[b], "b");
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.len(), 1);
        assert!(s.get(a).is_none());
    }

    #[test]
    fn keys_are_reused() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a, b, "vacant slot reused");
        assert_eq!(s[b], 2);
    }

    #[test]
    fn iteration_skips_vacant() {
        let mut s = Slab::new();
        let _a = s.insert(1);
        let b = s.insert(2);
        let _c = s.insert(3);
        s.remove(b);
        let vals: Vec<i32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn remove_vacant_panics() {
        let mut s = Slab::new();
        let a = s.insert(0u8);
        s.remove(a);
        s.remove(a);
    }

    #[test]
    fn clear_resets() {
        let mut s = Slab::new();
        s.insert(1);
        s.insert(2);
        s.clear();
        assert!(s.is_empty());
        let k = s.insert(9);
        assert_eq!(s[k], 9);
    }

    #[test]
    fn interleaved_stress() {
        let mut s = Slab::new();
        let mut keys = Vec::new();
        for i in 0..1000u32 {
            keys.push(s.insert(i));
            if i % 3 == 0 {
                let k = keys.swap_remove((i as usize) / 2 % keys.len());
                s.remove(k);
            }
        }
        let live: Vec<u32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(live.len(), s.len());
        assert_eq!(keys.len(), s.len());
    }
}
