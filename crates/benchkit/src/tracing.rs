//! Causal-trace harness: run a scenario with span recording enabled and
//! collect the exported artifacts — a Chrome `trace_event` JSON
//! (loadable in Perfetto or `chrome://tracing`), the text critical-path
//! report with per-layer latency quantiles, and the raw critical-path
//! attribution rows.
//!
//! Tracing is opt-in per run: this module (and the faulted family's
//! [`crate::faulted::run_faulted_traced`]) are the only places that call
//! [`simkit::Scheduler::enable_spans`].  The span determinism suite
//! asserts the two contract halves: enabling tracing never changes the
//! replay digest, and two traced runs export byte-identical artifacts.

use crate::scenarios::{make_sched, run_scenario_on, RunResult, RunSpec, Scenario};
use cluster::Calibration;
use simkit::{chrome_trace_json, critical_path, critical_path_report, PathContribution, Scheduler};

/// Exported artifacts of one traced run.
#[derive(Debug, Clone)]
pub struct SpanExports {
    /// Order-sensitive digest of the span open/close/mark stream (see
    /// [`simkit::SpanLog::digest`]); identical across replays.
    pub span_digest: u64,
    /// Number of spans recorded.
    pub span_count: usize,
    /// Chrome `trace_event` JSON.
    pub chrome_json: String,
    /// Text critical-path + latency report.
    pub critical_path: String,
    /// Critical-path attribution rows, self-time descending.
    pub path: Vec<PathContribution>,
}

impl SpanExports {
    /// Collect every export from a scheduler that ran with spans on.
    pub fn collect(sched: &Scheduler) -> SpanExports {
        let log = sched.spans();
        SpanExports {
            span_digest: sched.span_digest(),
            span_count: log.len(),
            chrome_json: chrome_trace_json(log),
            critical_path: critical_path_report(log),
            path: critical_path(log),
        }
    }

    /// Top `n` critical-path contributors of `layer`, self-time
    /// descending (the rows are already globally sorted).
    pub fn top_of_layer(&self, layer: &str, n: usize) -> Vec<&PathContribution> {
        self.path
            .iter()
            .filter(|c| c.layer == layer)
            .take(n)
            .collect()
    }

    /// Every layer that appears on the critical path, in first-appearance
    /// (self-time descending) order.
    pub fn layers(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for c in &self.path {
            if !seen.contains(&c.layer) {
                seen.push(c.layer);
            }
        }
        seen
    }
}

/// One traced scenario run.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// The usual two-phase measurement (identical to the untraced run).
    pub result: RunResult,
    /// Replay digest — must equal [`crate::run_scenario_digest`]'s value
    /// for the same arguments: tracing never perturbs the schedule.
    pub replay_digest: u64,
    /// The span-derived artifacts.
    pub exports: SpanExports,
}

/// Run `scen` once with span recording on and collect every export.
pub fn trace_scenario(spec: &RunSpec, scen: Scenario, cal: &Calibration) -> TracedRun {
    let mut sched = make_sched(spec, false);
    sched.enable_spans();
    let (result, _) = run_scenario_on(&mut sched, spec, scen, cal);
    let exports = SpanExports::collect(&sched);
    TracedRun {
        scenario: scen,
        result,
        replay_digest: sched.digest(),
        exports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::run_scenario_digest;

    fn small_spec() -> RunSpec {
        let mut spec = RunSpec::new(1, 1, 2);
        spec.ops_per_proc = 8;
        spec
    }

    #[test]
    fn tracing_does_not_perturb_replay_digest() {
        let spec = small_spec();
        let cal = Calibration::default();
        let (_, untraced) = run_scenario_digest(&spec, Scenario::IorDfuseIl, &cal);
        let traced = trace_scenario(&spec, Scenario::IorDfuseIl, &cal);
        assert_eq!(traced.replay_digest, untraced, "spans change the schedule");
        assert!(traced.exports.span_count > 0, "no spans recorded");
    }

    #[test]
    fn traced_replay_is_byte_identical() {
        let spec = small_spec();
        let cal = Calibration::default();
        let a = trace_scenario(&spec, Scenario::IorDaos, &cal);
        let b = trace_scenario(&spec, Scenario::IorDaos, &cal);
        assert_eq!(a.exports.span_digest, b.exports.span_digest);
        assert_eq!(a.exports.chrome_json, b.exports.chrome_json);
        assert_eq!(a.exports.critical_path, b.exports.critical_path);
    }

    #[test]
    fn dfuse_stack_layers_on_path() {
        let t = trace_scenario(&small_spec(), Scenario::IorDfuse, &Calibration::default());
        let layers = t.exports.layers();
        for want in ["ior", "dfuse", "libdfs", "libdaos", "target"] {
            assert!(layers.contains(&want), "missing {want} in {layers:?}");
        }
        let top = t.exports.top_of_layer("ior", 3);
        assert!(!top.is_empty() && top.len() <= 3);
    }
}
