//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build container has no registry access, so this shim provides
//! the bench-group API the workspace's benches use, backed by a plain
//! best-of-N wall-clock timer.  It reports `name: median ns/iter` lines
//! instead of criterion's statistical analysis — enough to compare hot
//! paths across commits without any external dependency.

use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement backends (only wall time here).
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// How `iter_batched` sizes its batches (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
}

/// The benchmark context handed to `bench_function` closures.
pub struct Bencher {
    samples: u64,
    /// Collected per-sample mean ns/iter.
    results: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, running it repeatedly per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            // adaptively pick an inner count so one sample is >= ~1 ms
            let mut iters = 1u64;
            loop {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let dt = t0.elapsed();
                if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                    self.results.push(dt.as_nanos() as f64 / iters as f64);
                    break;
                }
                iters *= 4;
            }
        }
    }

    /// Time `routine` over fresh values from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.results.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 100);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        let mut r = b.results;
        r.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if r.is_empty() { 0.0 } else { r[r.len() / 2] };
        println!(
            "{}/{name}: {median:.0} ns/iter ({} samples)",
            self.name,
            r.len()
        );
        self
    }

    /// Finish the group (printing is immediate; nothing buffered).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Collect benchmark functions into a runner (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
