//! The Lustre-like distributed POSIX file system.
//!
//! Reproduces the architecture the paper deploys in §III-E: 16 OSS nodes
//! with 16 OSTs each (one per NVMe device) and **one** Metadata Service
//! node.  The defining performance property is the *centralised* MDS: all
//! namespace operations (open, create, close, stat, unlink) funnel
//! through a single finite service, which is exactly what caps
//! fdb-hammer's metadata-heavy read workload at ~40 GiB/s in Fig. 7
//! while bulk file-per-process I/O matches DAOS.
//!
//! File data is striped over `stripe_count` OSTs in `stripe_size` units
//! (the paper's fdb runs use 8 OSTs × 8 MiB).  Clients take extent locks
//! on first contact with a stripe (Lustre's distributed lock manager),
//! adding round trips that matter for shared-file workloads.

use cluster::payload::{Payload, ReadPayload};
use cluster::posix::{components, FileId, FileStat, FsError, PosixFs};
use cluster::Topology;
use daos_core::{RetryExec, RetryPolicy, RetryStats};
use simkit::{ResourceId, Scheduler, Step};
use std::collections::{BTreeMap, BTreeSet};

/// Data-mode mirror of the store (bytes or sizes only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LustreDataMode {
    /// Keep real bytes.
    Full,
    /// Track sizes only.
    Sized,
}

/// Striping configuration (`lfs setstripe`).
#[derive(Debug, Clone, Copy)]
pub struct StripeOpts {
    /// OSTs per file.
    pub count: usize,
    /// Stripe unit in bytes.
    // simlint::dim(bytes)
    pub size: u64,
}

impl Default for StripeOpts {
    fn default() -> Self {
        StripeOpts {
            count: 1,
            size: 1 << 20,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct OstId {
    server: u16,
    ost: u16,
}

#[derive(Debug)]
enum Node {
    Dir(BTreeMap<String, u32>),
    File(FileNode),
}

#[derive(Debug)]
struct FileNode {
    /// OSTs this file stripes over.
    layout: Vec<OstId>,
    stripe_size: u64,
    size: u64,
    data: FileData,
}

#[derive(Debug)]
enum FileData {
    Bytes(Vec<u8>),
    Sized,
}

/// The deployed file system: one MDS, `servers × osts_per_server` OSTs.
// simlint::sim_state — replay-visible simulation state
pub struct LustreSystem {
    topo: Topology,
    servers: usize,
    mode: LustreDataMode,
    stripe: StripeOpts,
    mds_svc: ResourceId,
    ost_svc: Vec<Vec<ResourceId>>,
    nodes: Vec<Node>,
    handles: BTreeMap<u64, u32>,
    next_handle: u64,
    /// Granted extent locks: (file node, ost index, client node).
    locks: BTreeSet<(u32, usize, usize)>,
    /// Round-robin allocator for stripe starting OSTs.
    next_ost: usize,
    op_ns: u64,
    rtt_ns: u64,
    lock_rtts: u32,
    /// Retry machinery around the data path (off by default).
    retry: RetryExec,
}

impl LustreSystem {
    /// Deploy over the first `servers` nodes of `topo` plus an implicit
    /// MDS node, creating service resources.
    pub fn deploy(
        topo: &Topology,
        sched: &mut Scheduler,
        servers: usize,
        mode: LustreDataMode,
        stripe: StripeOpts,
    ) -> LustreSystem {
        assert!(servers >= 1 && servers <= topo.server_count());
        let cal = &topo.cal;
        let mds_svc = sched.add_resource("lustre.mds", cal.mds_iops);
        let ost_svc = (0..servers)
            .map(|s| {
                (0..cal.osts_per_server)
                    .map(|o| sched.add_resource(format!("lustre.oss{s}.ost{o}"), cal.ost_svc_iops))
                    .collect()
            })
            .collect();
        LustreSystem {
            topo: topo.clone(),
            servers,
            mode,
            stripe,
            mds_svc,
            ost_svc,
            nodes: vec![Node::Dir(BTreeMap::new())],
            handles: BTreeMap::new(),
            next_handle: 1,
            locks: BTreeSet::new(),
            next_ost: 0,
            op_ns: cal.lustre_op_ns,
            rtt_ns: cal.net_rtt_ns,
            lock_rtts: cal.lustre_lock_rtts,
            retry: RetryExec::disabled(),
        }
    }

    /// Configure retry/timeout/backoff on the data path (`seed` drives
    /// the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    /// OSS nodes in the deployment.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Striping in effect for new files.
    pub fn stripe(&self) -> StripeOpts {
        self.stripe
    }

    /// Change striping for subsequently created files (`lfs setstripe`).
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn set_stripe(&mut self, stripe: StripeOpts) {
        self.stripe = stripe;
    }

    fn osts_per_server(&self) -> usize {
        self.ost_svc[0].len()
    }

    /// One metadata operation: client overhead, round trip, MDS service.
    fn mds_op(&self, n: f64) -> Step {
        Step::seq([
            Step::delay(self.op_ns),
            Step::delay(self.rtt_ns),
            Step::transfer(n, [self.mds_svc]),
        ])
    }

    /// Allocate a file's stripe OSTs: a per-file pseudorandom draw
    /// rather than a literal contiguous round-robin window.
    ///
    /// Rationale: with contiguous windows, files created back-to-back
    /// share OST groups and their sequential writers stride over the
    /// group in lockstep — a convoy that leaves 7 of 8 OSTs idle at any
    /// instant.  Real Lustre avoids this through QOS-weighted allocation
    /// and, more importantly, client page-cache write-back that smears
    /// dirty data across all stripes of a file; a randomised layout is
    /// the fluid-model equivalent.
    fn alloc_layout(&mut self) -> Vec<OstId> {
        let total = self.servers * self.osts_per_server();
        let count = self.stripe.count.min(total);
        self.next_ost = self.next_ost.wrapping_add(1);
        let mut rng = simkit::SplitMix64::new(self.next_ost as u64);
        let mut chosen: Vec<usize> = Vec::with_capacity(count);
        while chosen.len() < count {
            let idx = rng.next_below(total as u64) as usize;
            if !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
        chosen
            .into_iter()
            .map(|idx| OstId {
                server: (idx / self.osts_per_server()) as u16,
                ost: (idx % self.osts_per_server()) as u16,
            })
            .collect()
    }

    fn ost_write(&self, client: usize, ost: OstId, bytes: f64) -> Step {
        let srv = &self.topo.servers[ost.server as usize];
        let cli = &self.topo.clients[client];
        let dev = ost.ost as usize % srv.nvme_w.len();
        Step::seq([
            Step::transfer(1.0, [self.ost_svc[ost.server as usize][ost.ost as usize]]),
            Step::transfer(
                bytes,
                [cli.nic_tx, srv.nic_rx, srv.nvme_w[dev], srv.nvme_w_pool],
            ),
            Step::delay(self.topo.cal.nvme_write_lat_ns),
        ])
    }

    fn ost_read(&self, client: usize, ost: OstId, bytes: f64) -> Step {
        let srv = &self.topo.servers[ost.server as usize];
        let cli = &self.topo.clients[client];
        let dev = ost.ost as usize % srv.nvme_r.len();
        Step::seq([
            Step::transfer(1.0, [self.ost_svc[ost.server as usize][ost.ost as usize]]),
            Step::delay(self.topo.cal.nvme_read_lat_ns),
            Step::transfer(
                bytes,
                [srv.nvme_r[dev], srv.nvme_r_pool, srv.nic_tx, cli.nic_rx],
            ),
        ])
    }

    fn resolve(&self, path: &str) -> Result<u32, FsError> {
        let mut cur = 0u32;
        for c in components(path) {
            match &self.nodes[cur as usize] {
                Node::Dir(entries) => cur = *entries.get(c).ok_or(FsError::NotFound)?,
                Node::File(_) => return Err(FsError::NotDir),
            }
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(u32, &'p str), FsError> {
        let comps = components(path);
        let (name, parents) = comps.split_last().ok_or(FsError::Exists)?;
        let pid = self.resolve(&parents.join("/"))?;
        match &self.nodes[pid as usize] {
            Node::Dir(_) => Ok((pid, name)),
            Node::File(_) => Err(FsError::NotDir),
        }
    }

    fn file_mut(&mut self, f: FileId) -> Result<(u32, &mut FileNode), FsError> {
        let id = *self.handles.get(&f.0).ok_or(FsError::BadHandle)?;
        match &mut self.nodes[id as usize] {
            Node::File(fnode) => Ok((id, fnode)),
            Node::Dir(_) => Err(FsError::IsDir),
        }
    }

    /// Extent-lock acquisition cost for the stripes of `[off, off+len)`
    /// not yet locked by this client; records the grants.
    fn lock_cost(&mut self, client: usize, id: u32, off: u64, len: u64) -> Step {
        let (nstripes, ss) = match &self.nodes[id as usize] {
            Node::File(f) => (f.layout.len(), f.stripe_size),
            Node::Dir(_) => return Step::Noop,
        };
        if len == 0 {
            return Step::Noop;
        }
        let first = (off / ss) as usize;
        let last = ((off + len - 1) / ss) as usize;
        let mut rtts = 0u64;
        for s in first..=last {
            let stripe_ost = s % nstripes;
            if self.locks.insert((id, stripe_ost, client)) {
                rtts += self.lock_rtts as u64;
            }
        }
        Step::delay(rtts * self.rtt_ns)
    }
}

impl FileNode {
    fn write(&mut self, offset: u64, data: &Payload, mode: LustreDataMode) {
        let len = data.len();
        self.size = self.size.max(offset + len);
        match (mode, &mut self.data) {
            (LustreDataMode::Full, FileData::Bytes(buf)) => {
                let end = (offset + len) as usize;
                if buf.len() < end {
                    buf.resize(end, 0);
                }
                match data.bytes() {
                    Some(bytes) => buf[offset as usize..end].copy_from_slice(bytes),
                    // sized payload in Full mode: synthetic zeros, but
                    // never clobber byte-mode storage
                    None => buf[offset as usize..end].fill(0),
                }
            }
            _ => self.data = FileData::Sized,
        }
    }

    fn read(&self, offset: u64, len: u64) -> ReadPayload {
        match &self.data {
            FileData::Bytes(buf) => {
                let mut out = vec![0u8; len as usize];
                let end = ((offset + len) as usize).min(buf.len());
                if (offset as usize) < end {
                    out[..end - offset as usize].copy_from_slice(&buf[offset as usize..end]);
                }
                ReadPayload::Bytes(out)
            }
            FileData::Sized => ReadPayload::Sized(len),
        }
    }

    /// Bytes touching each OST of the layout for `[off, off+len)`.
    fn stripe_bytes(&self, off: u64, len: u64) -> Vec<(usize, f64)> {
        let mut per: BTreeMap<usize, f64> = BTreeMap::new();
        let ss = self.stripe_size;
        let mut pos = off;
        let end = off + len;
        while pos < end {
            let stripe = pos / ss;
            let take = ((stripe + 1) * ss).min(end) - pos;
            // mix the stripe index so sequential writers do not march
            // over the layout in lockstep (write-back smearing)
            let mut z = stripe ^ 0x9e37_79b9_7f4a_7c15;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 27;
            *per.entry((z as usize) % self.layout.len()).or_default() += take as f64;
            pos += take;
        }
        let mut v: Vec<(usize, f64)> = per.into_iter().collect();
        v.sort_by_key(|&(i, _)| i);
        v
    }
}

impl PosixFs for LustreSystem {
    fn mkdir(&mut self, _client: usize, path: &str) -> Result<Step, FsError> {
        let (pid, name) = self.resolve_parent(path)?;
        if let Node::Dir(entries) = &self.nodes[pid as usize] {
            if entries.contains_key(name) {
                return Err(FsError::Exists);
            }
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Dir(BTreeMap::new()));
        if let Node::Dir(entries) = &mut self.nodes[pid as usize] {
            entries.insert(name.to_string(), id);
        }
        Ok(Step::span("lustre", "mkdir", 0, self.mds_op(1.0)))
    }

    fn open(&mut self, client: usize, path: &str, create: bool) -> Result<(FileId, Step), FsError> {
        let _ = client;
        let id = match self.resolve(path) {
            Ok(id) => {
                if matches!(self.nodes[id as usize], Node::Dir(_)) {
                    return Err(FsError::IsDir);
                }
                id
            }
            Err(FsError::NotFound) if create => {
                let (pid, name) = self.resolve_parent(path)?;
                let layout = self.alloc_layout();
                let stripe_size = self.stripe.size;
                let id = self.nodes.len() as u32;
                self.nodes.push(Node::File(FileNode {
                    layout,
                    stripe_size,
                    size: 0,
                    data: match self.mode {
                        LustreDataMode::Full => FileData::Bytes(Vec::new()),
                        LustreDataMode::Sized => FileData::Sized,
                    },
                }));
                if let Node::Dir(entries) = &mut self.nodes[pid as usize] {
                    entries.insert(name.to_string(), id);
                }
                id
            }
            Err(e) => return Err(e),
        };
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, id);
        // open is an MDS transaction (create costs a second one for the
        // layout allocation)
        let ops = if create { 2.0 } else { 1.0 };
        Ok((FileId(h), Step::span("lustre", "open", 0, self.mds_op(ops))))
    }

    fn write(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        data: Payload,
    ) -> Result<Step, FsError> {
        // Take the executor out so the retried closure can borrow `self`.
        let bytes = data.len();
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run_step(|| self.write_inner(client, f, offset, data.clone()));
        self.retry = retry;
        Ok(Step::span("lustre", "write", bytes, r?))
    }

    fn read(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), FsError> {
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run(|| self.read_inner(client, f, offset, len));
        self.retry = retry;
        let (data, s) = r?;
        Ok((data, Step::span("lustre", "read", len, s)))
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn fstat(&mut self, client: usize, f: FileId) -> Result<(FileStat, Step), FsError> {
        let (_, fnode) = self.file_mut(f)?;
        let size = fnode.size;
        let nstripes = fnode.layout.len() as f64;
        // stat needs the MDS plus a size glimpse at every stripe OST
        let layout = fnode.layout.clone();
        let glimpses = layout
            .iter()
            .map(|&o| self.ost_read(client, o, 64.0))
            .collect::<Vec<_>>();
        let _ = nstripes;
        Ok((
            FileStat {
                size,
                is_dir: false,
            },
            Step::span(
                "lustre",
                "fstat",
                0,
                Step::seq([self.mds_op(1.0), Step::par(glimpses)]),
            ),
        ))
    }

    fn stat(&mut self, client: usize, path: &str) -> Result<(FileStat, Step), FsError> {
        let id = self.resolve(path)?;
        match &self.nodes[id as usize] {
            Node::Dir(_) => Ok((
                FileStat {
                    size: 0,
                    is_dir: true,
                },
                Step::span("lustre", "stat", 0, self.mds_op(1.0)),
            )),
            Node::File(fnode) => {
                let size = fnode.size;
                let layout = fnode.layout.clone();
                let glimpses = layout
                    .iter()
                    .map(|&o| self.ost_read(client, o, 64.0))
                    .collect::<Vec<_>>();
                Ok((
                    FileStat {
                        size,
                        is_dir: false,
                    },
                    Step::span(
                        "lustre",
                        "stat",
                        0,
                        Step::seq([self.mds_op(1.0), Step::par(glimpses)]),
                    ),
                ))
            }
        }
    }

    fn close(&mut self, _client: usize, f: FileId) -> Result<Step, FsError> {
        self.handles.remove(&f.0).ok_or(FsError::BadHandle)?;
        // Lustre close is an MDS transaction
        Ok(Step::span("lustre", "close", 0, self.mds_op(1.0)))
    }

    fn unlink(&mut self, _client: usize, path: &str) -> Result<Step, FsError> {
        let (pid, name) = self.resolve_parent(path)?;
        let id = match &self.nodes[pid as usize] {
            Node::Dir(entries) => *entries.get(name).ok_or(FsError::NotFound)?,
            Node::File(_) => return Err(FsError::NotDir),
        };
        if let Node::Dir(entries) = &self.nodes[id as usize] {
            if !entries.is_empty() {
                return Err(FsError::NotEmpty);
            }
        }
        if let Node::Dir(entries) = &mut self.nodes[pid as usize] {
            entries.remove(name);
        }
        self.locks.retain(|&(fid, _, _)| fid != id);
        // unlink + OST object destroys
        Ok(Step::span("lustre", "unlink", 0, self.mds_op(2.0)))
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn readdir(&mut self, _client: usize, path: &str) -> Result<(Vec<String>, Step), FsError> {
        let id = self.resolve(path)?;
        match &self.nodes[id as usize] {
            Node::Dir(entries) => Ok((
                entries.keys().cloned().collect(),
                Step::span("lustre", "readdir", 0, self.mds_op(1.0)),
            )),
            Node::File(_) => Err(FsError::NotDir),
        }
    }
}

impl LustreSystem {
    fn write_inner(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        data: Payload,
    ) -> Result<Step, FsError> {
        let mode = self.mode;
        let (id, _) = self.file_mut(f)?;
        let locks = self.lock_cost(client, id, offset, data.len());
        let (_, fnode) = self.file_mut(f)?;
        let per_ost = fnode.stripe_bytes(offset, data.len());
        let layout = fnode.layout.clone();
        fnode.write(offset, &data, mode);
        let transfers = per_ost
            .into_iter()
            .map(|(i, bytes)| self.ost_write(client, layout[i], bytes))
            .collect::<Vec<_>>();
        Ok(Step::seq([
            Step::delay(self.op_ns),
            locks,
            Step::delay(self.rtt_ns),
            Step::par(transfers),
        ]))
    }

    fn read_inner(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), FsError> {
        let (id, _) = self.file_mut(f)?;
        let locks = self.lock_cost(client, id, offset, len);
        let (_, fnode) = self.file_mut(f)?;
        let data = fnode.read(offset, len);
        let per_ost = fnode.stripe_bytes(offset, len);
        let layout = fnode.layout.clone();
        let transfers = per_ost
            .into_iter()
            .map(|(i, bytes)| self.ost_read(client, layout[i], bytes))
            .collect::<Vec<_>>();
        Ok((
            data,
            Step::seq([
                Step::delay(self.op_ns),
                locks,
                Step::delay(self.rtt_ns),
                Step::par(transfers),
            ]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, GIB, MIB};
    use simkit::{run, OpId, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    fn system(servers: usize, clients: usize, stripe: StripeOpts) -> (Scheduler, LustreSystem) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(servers, clients).build(&mut sched);
        let fs = LustreSystem::deploy(&topo, &mut sched, servers, LustreDataMode::Full, stripe);
        (sched, fs)
    }

    #[test]
    fn posix_round_trip() {
        let (mut sched, mut fs) = system(2, 1, StripeOpts::default());
        exec(&mut sched, fs.mkdir(0, "/d").unwrap());
        let (f, s) = fs.open(0, "/d/file", true).unwrap();
        exec(&mut sched, s);
        let data: Vec<u8> = (0..200u8).collect();
        exec(
            &mut sched,
            fs.write(0, f, 50, Payload::Bytes(data.clone())).unwrap(),
        );
        let (r, s) = fs.read(0, f, 50, 200).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &data[..]);
        let (st, s) = fs.fstat(0, f).unwrap();
        exec(&mut sched, s);
        assert_eq!(st.size, 250);
        exec(&mut sched, fs.close(0, f).unwrap());
        exec(&mut sched, fs.unlink(0, "/d/file").unwrap());
        assert_eq!(fs.open(0, "/d/file", false).unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn striping_spreads_bytes_over_osts() {
        let (mut sched, mut fs) = system(
            2,
            1,
            StripeOpts {
                count: 8,
                size: 1 << 20,
            },
        );
        let (f, s) = fs.open(0, "/f", true).unwrap();
        exec(&mut sched, s);
        let step = fs.write(0, f, 0, Payload::Sized(8 << 20)).unwrap();
        // the 8 MiB spread over the stripe OSTs (hashed routing may fold
        // some stripes onto the same OST, which aggregates their bytes)
        fn sum_transfers(s: &Step, out: &mut (usize, f64)) {
            match s {
                Step::Transfer { units, .. } if *units >= 1.0 * MIB => {
                    out.0 += 1;
                    out.1 += *units;
                }
                Step::Seq(v) | Step::Par(v) => v.iter().for_each(|s| sum_transfers(s, out)),
                Step::Span { inner, .. } => sum_transfers(inner, out),
                _ => {}
            }
        }
        let mut acc = (0usize, 0.0f64);
        sum_transfers(&step, &mut acc);
        assert!((4..=8).contains(&acc.0), "stripe fan-out {}", acc.0);
        assert!((acc.1 - 8.0 * MIB).abs() < 1.0, "all bytes accounted");
        exec(&mut sched, step);
    }

    #[test]
    fn files_spread_over_osts() {
        let (mut sched, mut fs) = system(
            1,
            1,
            StripeOpts {
                count: 1,
                size: 1 << 20,
            },
        );
        let mut osts = BTreeSet::new();
        for i in 0..64 {
            let (f, s) = fs.open(0, &format!("/f{i}"), true).unwrap();
            exec(&mut sched, s);
            let (id, fnode) = fs.file_mut(f).unwrap();
            let _ = id;
            osts.insert(fnode.layout[0]);
        }
        assert!(
            osts.len() >= 13,
            "64 single-stripe files must touch most of the 16 OSTs: {}",
            osts.len()
        );
    }

    #[test]
    fn extent_locks_granted_once_per_client() {
        let (mut sched, mut fs) = system(
            1,
            2,
            StripeOpts {
                count: 1,
                size: 1 << 20,
            },
        );
        let (f, s) = fs.open(0, "/f", true).unwrap();
        exec(&mut sched, s);
        let s1 = fs.write(0, f, 0, Payload::Sized(1024)).unwrap();
        let s2 = fs.write(0, f, 1024, Payload::Sized(1024)).unwrap();
        let d1 = s1.critical_delay_ns();
        let d2 = s2.critical_delay_ns();
        // first write pays a lock round trip, second does not
        assert!(d1 > d2);
        exec(&mut sched, s1);
        exec(&mut sched, s2);
        // another client must acquire its own lock
        let s3 = fs.write(1, f, 2048, Payload::Sized(1024)).unwrap();
        assert!(s3.critical_delay_ns() > d2);
        exec(&mut sched, s3);
    }

    #[test]
    fn bulk_write_approaches_hardware() {
        // 32 writers × 16 files on a 1-server system: aggregate must
        // approach the node's 3.86 GiB/s NVMe write bandwidth.
        let (mut sched, mut fs) = system(
            1,
            8,
            StripeOpts {
                count: 1,
                size: 1 << 20,
            },
        );
        let mut handles = Vec::new();
        for i in 0..32 {
            let (f, s) = fs.open(0, &format!("/f{i}"), true).unwrap();
            exec(&mut sched, s);
            handles.push(f);
        }
        let t0 = sched.now();
        // all writers in flight at once
        let mut steps = Vec::new();
        for (i, &f) in handles.iter().enumerate() {
            for j in 0..8u64 {
                steps.push(
                    fs.write(i % 8, f, j * (1 << 20), Payload::Sized(1 << 20))
                        .unwrap(),
                );
            }
        }
        for (i, s) in steps.into_iter().enumerate() {
            sched.submit(s, OpId(i as u64));
        }
        let mut w = Sink(SimTime::ZERO);
        run(&mut sched, &mut w);
        let bytes = 32.0 * 8.0 * MIB;
        let bw = bytes / w.0.secs_since(t0);
        // random single-stripe placement of 32 short-lived files leaves
        // some OSTs idle during the drain; the node pool still bounds it
        assert!(bw > 2.2 * GIB, "aggregate {} GiB/s", bw / GIB);
        assert!(
            bw <= 3.87 * GIB,
            "aggregate {} GiB/s exceeds node pool",
            bw / GIB
        );
    }

    #[test]
    fn mds_caps_metadata_rate() {
        // Two deployments differing only in MDS capacity: open/close
        // storms must take proportionally longer on the slower MDS.
        let time_with_mds = |iops: f64| {
            let mut sched = Scheduler::new();
            let mut spec = ClusterSpec::new(1, 4);
            spec.cal.mds_iops = iops;
            let topo = spec.build(&mut sched);
            let mut fs = LustreSystem::deploy(
                &topo,
                &mut sched,
                1,
                LustreDataMode::Sized,
                StripeOpts::default(),
            );
            let t0 = sched.now();
            let mut ops = Vec::new();
            for i in 0..200 {
                let (f, s) = fs.open(i % 4, &format!("/f{i}"), true).unwrap();
                ops.push(s);
                ops.push(fs.close(i % 4, f).unwrap());
            }
            for (i, s) in ops.into_iter().enumerate() {
                sched.submit(s, OpId(i as u64));
            }
            let mut w = Sink(SimTime::ZERO);
            run(&mut sched, &mut w);
            w.0.secs_since(t0)
        };
        let fast = time_with_mds(100_000.0);
        let slow = time_with_mds(10_000.0);
        assert!(slow > fast * 5.0, "slow {slow} vs fast {fast}");
    }
}
