//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build container has no registry access, so this workspace vendors
//! the subset of the proptest API its test suites actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * range and `any::<T>()` strategies, tuple strategies,
//! * [`collection::vec`] / [`collection::btree_set`],
//! * [`prop_oneof!`], [`Just`], and the `prop_assert*` / [`prop_assume!`]
//!   macros.
//!
//! Generation is uniform and **deterministic**: each test derives its
//! seed from its own name via FNV-1a, so a failing case reproduces on
//! every run and on every machine.  There is no shrinking — the failing
//! inputs are printed instead, which has proven sufficient for the
//! small strategies used here.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state (SplitMix64; kept local so the shim
/// has no dependencies, not even on `simkit`).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // multiply-shift bounded sampling: deterministic and unbiased
        // enough for test-case generation
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over a string, used to derive per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A failed test case: the `prop_assert*` macros return this through
/// the generated runner.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Rejection (from `prop_assume!`): the case is skipped, not failed.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(format!("{}{}", REJECT_PREFIX, msg.into()))
    }

    /// Whether this is an assumption rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.0.starts_with(REJECT_PREFIX)
    }
}

const REJECT_PREFIX: &str = "\u{1}reject: ";

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values.  Object-safe so `prop_oneof!` can box
/// heterogeneous arms of one value type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then sample the strategy it maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `arms`; sampling picks one arm uniformly.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ---- primitive strategies --------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full-domain inclusive range
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.next_below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// `any::<T>()`: full-domain uniform values.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain uniform generator.
pub trait Arbitrary {
    /// Sample a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite uniform mantissa values are what the tests want; the
        // real crate's NaN/∞ corners are not exercised here
        rng.next_f64() * 2.0 - 1.0
    }
}

// ---- tuple strategies ------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection size specification.
    pub trait SizeRange {
        /// Pick a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.next_below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.next_below((hi - lo + 1) as u64) as usize
        }
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element` whose size lands in `size`
    /// (best-effort: bounded retries against duplicate samples).
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0usize;
            while out.len() < target && tries < target * 20 + 20 {
                out.insert(self.element.sample(rng));
                tries += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The proptest entry macro: wraps `fn name(arg in strategy, ..) { .. }`
/// items into deterministic multi-case `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    // with a leading #![proptest_config(..)]
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test fn under a shared config.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            // generate until `cases` accepted cases (prop_assume! rejects
            // are retried), with a hard attempt cap
            while accepted < config.cases && attempts < config.cases * 20 + 100 {
                let mut rng = $crate::TestRng::new(
                    seed ^ (attempts as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                attempts += 1;
                let result = (|rng: &mut $crate::TestRng| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                    $body
                    Ok(())
                })(&mut rng);
                match result {
                    Ok(()) => accepted += 1,
                    Err(e) if e.is_rejection() => {}
                    Err(e) => panic!(
                        "proptest case {} of {} failed: {}",
                        accepted + 1,
                        config.cases,
                        e.0
                    ),
                }
            }
            assert!(
                accepted > 0,
                "proptest: every generated case was rejected by prop_assume!"
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Assert inside a proptest body; failure reports the case instead of
/// unwinding through generated arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Skip the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategy arms of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = Strategy::sample(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = Strategy::sample(&collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::sample(&collection::btree_set(0u32..100, 1..=4), &mut rng);
            assert!(!s.is_empty() && s.len() <= 4);
            let exact = Strategy::sample(&collection::vec(0u8..10, 3usize), &mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(11);
        let s =
            (1usize..4).prop_flat_map(|n| collection::vec(0u64..10, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = Strategy::sample(&s, &mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn oneof_samples_every_arm() {
        let mut rng = TestRng::new(13);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #[test]
        fn macro_binds_and_asserts(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100, "a = {a}");
            prop_assert_eq!(b, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn assume_retries(a in 0u8..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
