//! Chaos swarm walkthrough: sample a seeded fault schedule, plant a
//! real invariant violation, let the oracles catch it, shrink the
//! schedule to a minimal reproducer with delta debugging, and replay it
//! byte-identically from the emitted JSON artifact.
//!
//! ```text
//! cargo run --release --example chaos_shrink
//! ```

use benchkit::chaos::{
    chaos_space, default_chaos_spec, parse_schedule, replay_archived, run_planned_case,
    schedule_json, shrink_failing,
};
use benchkit::faulted::FaultedScenario;
use cluster::Calibration;
use daos_core::TargetId;
use simkit::{generate, ChaosConfig, FaultAction, FaultPlan, SimTime};

fn main() {
    let mut spec = default_chaos_spec();
    spec.ops_per_proc = 64;
    let cal = Calibration::default();
    let scen = FaultedScenario::IorEasyRp2;

    // --- 1. seeded generation: the swarm's schedules come from here -----
    let space = chaos_space(&spec, &cal);
    let sampled = generate(&space, &ChaosConfig::default(), 7);
    println!("seed 7 samples {} fault events:", sampled.len());
    println!("{}\n", sampled.to_json());

    // --- 2. a schedule that really breaks an invariant -------------------
    // The rebuild chain is armed once, by the first crash; a crash that
    // lands *after* the rescan (crash + 2 ms) stays down with nothing
    // re-protecting its shard groups.  Everything else here is noise.
    let crash = |s: u16, t: u16| {
        FaultAction::TargetCrash(
            TargetId {
                server: s,
                target: t,
            }
            .pack(),
        )
    };
    let mut plan = FaultPlan::new();
    plan.at(SimTime(0), crash(1, 0)); // arms the rebuild
    plan.at(
        SimTime(200_000),
        FaultAction::DelayedCompletion {
            payload: 0,
            extra_ns: 40_000,
        },
    );
    plan.at(SimTime(500_000), crash(1, 1)); // absorbed by the rebuild
    plan.at(SimTime(3_000_000), crash(2, 1)); // stranded: after the rescan
    plan.at(
        SimTime(4_000_000),
        FaultAction::TargetRestart(
            TargetId {
                server: 1,
                target: 1,
            }
            .pack(),
        ),
    );

    let verdict = run_planned_case(&spec, scen, &cal, 0xBAD, plan.clone());
    println!("planted schedule ({} events):", plan.len());
    println!("{}", verdict.render_line());
    print!("{}", verdict.oracle.render());

    // --- 3. shrink to the minimal reproducer ------------------------------
    let outcome = shrink_failing(&spec, scen, &cal, &plan);
    println!(
        "\nshrunk {} -> {} events in {} probes ({} dropped, {} windows tightened):",
        plan.len(),
        outcome.plan.len(),
        outcome.probes,
        outcome.removed,
        outcome.tightened
    );
    println!("{}\n", outcome.plan.to_json());

    // --- 4. archive and replay byte-identically ---------------------------
    let json = schedule_json(scen.name(), 0xBAD, &spec, &outcome.plan);
    let arch = parse_schedule(&json).expect("artifact parses");
    let direct = run_planned_case(&spec, scen, &cal, 0xBAD, outcome.plan.clone());
    let replayed = replay_archived(&arch, &cal).expect("artifact replays");
    println!("archived artifact:\n{json}\n");
    println!(
        "replay digest {:#018x} == direct digest {:#018x}: {}",
        replayed.digest,
        direct.digest,
        replayed.digest == direct.digest
    );
    assert_eq!(replayed.digest, direct.digest);
    assert!(!replayed.passed(), "minimal repro still fails on replay");
}
