//! Payloads shared by all simulated storage systems.
//!
//! Benchmarks can run in two data modes:
//!
//! * **Full** — payloads carry real bytes; stores keep them and reads
//!   hand them back.  Used by correctness tests, the erasure-coding
//!   reconstruction path and the examples.
//! * **Sized** — payloads carry only a length.  Used by the large
//!   bandwidth sweeps, where storing terabytes of synthetic bytes in an
//!   in-memory model would be pointless; timing is identical because the
//!   simulator only sees sizes.

/// Data handed to a store on write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes.
    Bytes(Vec<u8>),
    /// A length only.
    Sized(u64),
}

impl Payload {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Sized(n) => *n,
        }
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes, when present.
    pub fn bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Sized(_) => None,
        }
    }

    /// Consume into bytes, when present.
    pub fn into_bytes(self) -> Option<Vec<u8>> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Sized(_) => None,
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(b: Vec<u8>) -> Self {
        Payload::Bytes(b)
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Self {
        Payload::Bytes(b.to_vec())
    }
}

/// What a store hands back on read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadPayload {
    /// Real bytes (Full mode).
    Bytes(Vec<u8>),
    /// A length only (Sized mode).
    Sized(u64),
}

impl ReadPayload {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            ReadPayload::Bytes(b) => b.len() as u64,
            ReadPayload::Sized(n) => *n,
        }
    }

    /// True when nothing was read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes, when present.
    pub fn bytes(&self) -> Option<&[u8]> {
        match self {
            ReadPayload::Bytes(b) => Some(b),
            ReadPayload::Sized(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(Payload::Bytes(vec![1, 2, 3]).len(), 3);
        assert_eq!(Payload::Sized(77).len(), 77);
        assert!(Payload::Sized(0).is_empty());
        assert_eq!(ReadPayload::Bytes(vec![9]).len(), 1);
    }

    #[test]
    fn conversions() {
        let p: Payload = vec![1u8, 2].into();
        assert_eq!(p.bytes(), Some(&[1u8, 2][..]));
        assert_eq!(p.into_bytes(), Some(vec![1, 2]));
        assert_eq!(Payload::Sized(5).into_bytes(), None);
    }
}
