//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [targets...] [--out DIR]
//!
//! targets: hw fig1 fig2 fig3 fig4 fig5 fig6 fig6-rf2 fig7 fig8 fig9
//!          lustre-ior ceph-ior faulted chaos chaos-replay chaos-shrink
//!          rebalance rebalance-replay scrub scrub-replay scaleout
//!          trace report bench-engine all quick
//! ```
//!
//! `chaos` runs the seeded fault swarm (`--seeds N`, default 8) over
//! both scenario families, archiving and shrinking any failing
//! schedule; `chaos-replay --schedule FILE` reruns an archived schedule
//! byte-identically; `chaos-shrink --schedule FILE` delta-debugs it to
//! a minimal reproducer.
//!
//! `rebalance` swarms the live-membership family (server adds, drains,
//! crashes aimed at migration traffic) with the same archive/shrink
//! machinery; `rebalance-replay --schedule FILE` reruns an archived
//! rebalance schedule.  `scrub` swarms the integrity family (bit-rot
//! chaos against the checksum/scrub machinery) and writes the
//! per-case `integrity.json` artifact; `scrub-replay --schedule FILE`
//! reruns an archived integrity schedule.  `scaleout` runs the
//! 4 → 256 server ladder
//! against the paper's +3.86 GiB/s-per-server claim and writes the
//! `scaleout.json` verdict artifact.
//!
//! Each figure is printed as an aligned table and saved as CSV under the
//! output directory (default `results/`).  `quick` runs a reduced set
//! used for smoke testing.
//!
//! `report` runs every scenario twice with the full telemetry pipeline
//! on (windowed monitor, span log, metrics registry, SLO rules),
//! asserting byte-identical artifacts and untouched replay digests; it
//! writes per-scenario `report-*.report.{json,txt}` and
//! `report-*.counters.trace.json` artifacts plus a `SLO_report.json`
//! verdict summary, gated against the committed `SLO_baseline.json`.
//!
//! `bench-engine` runs the seeded engine workload families (see
//! `bench::engine_bench`), writes `BENCH_engine.json` under the output
//! directory, and exits non-zero if any family's events/sec fell more
//! than 10% below the committed `BENCH_engine.json` — or if a digest or
//! op count drifted at all (a determinism regression, not a slowdown).

use benchkit::chaos;
use benchkit::faulted::{self, FaultedScenario};
use benchkit::figures::{self, Figure};
use benchkit::integrity;
use benchkit::rebalance;
use benchkit::report;
use benchkit::scenarios::{analyze_scenario, RunSpec, Scenario};
use cluster::{Calibration, GIB};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn emit(figs: Vec<Figure>, out: &Path, all: &mut Vec<Figure>) {
    for f in figs {
        println!("{}", report::render_text(&f));
        if f.series.len() > 1 || f.series.iter().any(|s| s.points.len() > 2) {
            println!("{}", report::render_chart(&f, 56, 12));
        }
        if let Err(e) = report::save_csv(&f, out) {
            eprintln!("warning: could not save {}.csv: {e}", f.id);
        }
        all.push(f);
    }
}

/// Artifact-safe file stem for a scenario display name.
fn slug(name: &str) -> String {
    name.to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Causal traces: run every scenario once with span recording on, print
/// the top critical-path contributors and save the Chrome trace JSON +
/// critical-path report per scenario.
fn run_traces(cal: &Calibration, out: &Path) {
    let mut spec = RunSpec::new(2, 2, 4);
    spec.ops_per_proc = 24;
    for scen in Scenario::ALL {
        let t = benchkit::trace_scenario(&spec, scen, cal);
        println!(
            "--- {} ({} spans, span digest {:#018x})",
            scen.name(),
            t.exports.span_count,
            t.exports.span_digest
        );
        print!("{}", t.exports.critical_path);
        let stem = format!("trace-{}", slug(scen.name()));
        if let Err(e) = report::save_trace(&t.exports, out, &stem) {
            eprintln!("warning: could not save {stem}: {e}");
        } else {
            println!("saved {}/{stem}.trace.json", out.display());
        }
    }
}

/// Bandwidth under failure: run every faulted scenario twice (replay
/// check), print the comparison and save the JSON artifact.
fn run_faulted_family(cal: &Calibration, out: &Path) {
    let spec = faulted::default_faulted_spec();
    let mut reports = Vec::new();
    let mut all_ok = true;
    println!(
        "{:<24} {:>10} {:>10} {:>8} {:>8} {:>12} {:>8}",
        "scenario", "write GiB/s", "read GiB/s", "retries", "rebuilt", "restored ms", "replay"
    );
    for scen in FaultedScenario::ALL {
        let rep = faulted::replay_faulted(&spec, scen, cal);
        let ok = rep.deterministic();
        all_ok &= ok;
        let r = &rep.runs[0];
        let rb = r.rebuild.clone().unwrap_or_default();
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>8} {:>8} {:>12} {:>8}",
            scen.name(),
            r.write.bandwidth() / GIB,
            r.read.bandwidth() / GIB,
            r.retry.retries,
            rb.shards_rebuilt,
            r.redundancy_restored_secs
                .map_or("-".to_string(), |v| format!("{:.2}", v * 1e3)),
            if ok { "ok" } else { "DIVERGED" },
        );
        reports.push(rep.runs[0].clone());
        // a third, traced run: digest must match the untraced pair, and
        // the trace itself ships as a CI artifact
        let (traced, exports) = faulted::run_faulted_traced(&spec, scen, cal);
        if traced.digest != rep.runs[0].digest {
            eprintln!("{}: tracing perturbed the replay digest", scen.name());
            std::process::exit(1);
        }
        let stem = format!("faulted-{}", slug(scen.name()));
        if let Err(e) = report::save_trace(&exports, out, &stem) {
            eprintln!("warning: could not save {stem}: {e}");
        }
    }
    let json = faulted::render_json(&reports);
    let path = out.join("faulted.json");
    if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, &json)) {
        eprintln!("warning: could not save {}: {e}", path.display());
    } else {
        println!("saved {}", path.display());
    }
    if !all_ok {
        eprintln!("faulted replay diverged: determinism regression");
        std::process::exit(1);
    }
}

/// Write a failing case's schedule artifact (and its shrunken minimal
/// reproducer) under `out/`, returning the archive path.
fn archive_failure(
    v: &chaos::ChaosVerdict,
    spec: &RunSpec,
    cal: &Calibration,
    out: &Path,
    shrinkable: bool,
) -> PathBuf {
    let stem = format!("chaos-{}-seed{:#06x}", slug(&v.scenario), v.seed);
    let path = out.join(format!("{stem}.json"));
    let json = chaos::schedule_json(&v.scenario, v.seed, spec, &v.plan);
    if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, &json)) {
        eprintln!("warning: could not save {}: {e}", path.display());
        return path;
    }
    println!("archived failing schedule: {}", path.display());
    if !shrinkable {
        return path;
    }
    let scen = FaultedScenario::ALL
        .into_iter()
        .find(|s| s.name() == v.scenario)
        .expect("faulted scenario");
    // a traced replay of the failing schedule: the critical-path report
    // and Chrome trace ship as CI artifacts next to the schedule itself
    let topts = faulted::FaultedOpts {
        plan: faulted::PlanSource::Fixed(v.plan.clone()),
        mode: daos_core::DataMode::Full,
        oracles: false,
        traced: true,
        ..faulted::FaultedOpts::default()
    };
    let (_, exports) = faulted::run_faulted_with(spec, scen, cal, &topts);
    if let Some(exports) = exports {
        if let Err(e) = report::save_trace(&exports, out, &format!("faulted-{}", slug(&v.scenario)))
        {
            eprintln!("warning: could not save failing-run trace: {e}");
        }
    }
    let outcome = chaos::shrink_failing(spec, scen, cal, &v.plan);
    if outcome.reproduced {
        let min_path = out.join(format!("{stem}.min.json"));
        let min_json = chaos::schedule_json(&v.scenario, v.seed, spec, &outcome.plan);
        if std::fs::write(&min_path, &min_json).is_ok() {
            println!(
                "shrunk {} -> {} events ({} probes): {}",
                v.plan.len(),
                outcome.plan.len(),
                outcome.probes,
                min_path.display()
            );
            println!(
                "replay: cargo run --release --bin repro -- chaos-replay --schedule {}",
                min_path.display()
            );
        }
    } else {
        eprintln!("shrinker could not reproduce the failure (flaky oracle?)");
    }
    path
}

/// The chaos swarm: N seeds over the faulted family (full oracle suite)
/// and the engine family (determinism oracle over all 12 generic
/// scenarios).  Failing schedules are archived and shrunk; any failure
/// exits non-zero.
fn run_chaos_swarm_target(cal: &Calibration, out: &Path, seeds: u64) {
    let seed_block: Vec<u64> = (0..seeds).collect();
    let spec = chaos::default_chaos_spec();
    println!(
        "--- faulted family ({} scenarios x {seeds} seeds, full oracles)",
        FaultedScenario::ALL.len()
    );
    let faulted = chaos::run_chaos_swarm(&spec, cal, &seed_block);
    print!("{}", faulted.render());
    let mut failed = false;
    for v in faulted.failures() {
        failed = true;
        print!("{}", v.oracle.render());
        archive_failure(v, &spec, cal, out, true);
    }
    let mut espec = RunSpec::new(4, 2, 4);
    espec.ops_per_proc = 16;
    println!(
        "--- engine family ({} scenarios x {seeds} seeds, determinism oracle)",
        Scenario::ALL.len()
    );
    let engine = chaos::run_engine_swarm(&espec, cal, &seed_block);
    print!("{}", engine.render());
    for v in engine.failures() {
        failed = true;
        print!("{}", v.oracle.render());
        archive_failure(v, &espec, cal, out, false);
    }
    if failed {
        eprintln!("chaos swarm found invariant violations");
        std::process::exit(1);
    }
}

/// Replay an archived schedule byte-for-byte and report the verdict.
/// Exits non-zero when the replay still violates an invariant (i.e. the
/// archived failure reproduces).
fn run_chaos_replay(cal: &Calibration, schedule: &Path) {
    let input = std::fs::read_to_string(schedule)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", schedule.display()));
    let arch = chaos::parse_schedule(&input).expect("schedule artifact parses");
    let v = chaos::replay_archived(&arch, cal).expect("scenario resolves");
    println!("{}", v.render_line());
    if !v.passed() {
        print!("{}", v.oracle.render());
        std::process::exit(1);
    }
}

/// Shrink an archived failing schedule to a minimal reproducer and
/// write it next to the input as `<stem>.min.json`.
fn run_chaos_shrink(cal: &Calibration, out: &Path, schedule: &Path) {
    let input = std::fs::read_to_string(schedule)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", schedule.display()));
    let arch = chaos::parse_schedule(&input).expect("schedule artifact parses");
    let v = chaos::replay_archived(&arch, cal).expect("scenario resolves");
    if v.passed() {
        eprintln!("schedule does not fail any oracle; nothing to shrink");
        std::process::exit(1);
    }
    archive_failure(&v, &arch.spec, cal, out, true);
}

/// Write a failing rebalance case's schedule (and its shrunken minimal
/// reproducer) under `out/`.
fn archive_rebalance_failure(
    v: &chaos::ChaosVerdict,
    spec: &RunSpec,
    cal: &Calibration,
    out: &Path,
) {
    let stem = format!("rebalance-{}-seed{:#06x}", slug(&v.scenario), v.seed);
    let path = out.join(format!("{stem}.json"));
    let json = chaos::schedule_json(&v.scenario, v.seed, spec, &v.plan);
    if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, &json)) {
        eprintln!("warning: could not save {}: {e}", path.display());
        return;
    }
    println!("archived failing schedule: {}", path.display());
    let scen = rebalance::RebalanceScenario::ALL
        .into_iter()
        .find(|s| s.name() == v.scenario)
        .expect("rebalance scenario");
    let outcome = rebalance::shrink_failing_rebalance(spec, scen, cal, &v.plan);
    if outcome.reproduced {
        let min_path = out.join(format!("{stem}.min.json"));
        let min_json = chaos::schedule_json(&v.scenario, v.seed, spec, &outcome.plan);
        if std::fs::write(&min_path, &min_json).is_ok() {
            println!(
                "shrunk {} -> {} events ({} probes): {}",
                v.plan.len(),
                outcome.plan.len(),
                outcome.probes,
                min_path.display()
            );
            println!(
                "replay: cargo run --release --bin repro -- rebalance-replay --schedule {}",
                min_path.display()
            );
        }
    } else {
        eprintln!("shrinker could not reproduce the failure (flaky oracle?)");
    }
}

/// The rebalance swarm: N seeds of live membership churn (adds, drains,
/// migration-aimed crashes) over the redundant scenario classes, full
/// oracle suite.  Failing schedules are archived and shrunk; any
/// failure exits non-zero.
fn run_rebalance_swarm_target(cal: &Calibration, out: &Path, seeds: u64) {
    let seed_block: Vec<u64> = (0..seeds).collect();
    let spec = rebalance::default_rebalance_spec();
    println!(
        "--- rebalance family ({} scenarios x {seeds} seeds, full oracles)",
        rebalance::RebalanceScenario::SWARM.len()
    );
    let report = rebalance::run_rebalance_swarm(&spec, cal, &seed_block);
    print!("{}", report.render());
    let mut failed = false;
    for v in report.failures() {
        failed = true;
        print!("{}", v.oracle.render());
        archive_rebalance_failure(v, &spec, cal, out);
    }
    if failed {
        eprintln!("rebalance swarm found invariant violations");
        std::process::exit(1);
    }
}

/// Replay an archived rebalance schedule byte-for-byte; exits non-zero
/// when the replay still violates an invariant.
fn run_rebalance_replay(cal: &Calibration, schedule: &Path) {
    let input = std::fs::read_to_string(schedule)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", schedule.display()));
    let arch = chaos::parse_schedule(&input).expect("schedule artifact parses");
    let v = rebalance::replay_archived_rebalance(&arch, cal).expect("scenario resolves");
    println!("{}", v.render_line());
    if !v.passed() {
        print!("{}", v.oracle.render());
        std::process::exit(1);
    }
}

/// The integrity swarm: N seeds of bit-rot chaos over the scrub/read
/// race, rot-under-rebalance, and rot-beyond-redundancy scenarios, the
/// scenario-aware verdict applied (the planted beyond-redundancy cases
/// must fail *loudly* to count as green).  Writes the per-case
/// `integrity.json` artifact; failing schedules are archived, shrunk,
/// and — for the faulted-backed scenarios — replayed with tracing on so
/// the critical-path artifacts ship next to the schedule.  Any failure
/// exits non-zero.
fn run_scrub_target(cal: &Calibration, out: &Path, seeds: u64) {
    let seed_block: Vec<u64> = (0..seeds).collect();
    let spec = integrity::default_integrity_spec();
    println!(
        "--- integrity family ({} scenarios x {seeds} seeds, bit-rot chaos)",
        integrity::IntegrityScenario::ALL.len()
    );
    let (report, verdicts) = integrity::run_integrity_swarm(&spec, cal, &seed_block);
    print!("{}", report.render());
    for v in &verdicts {
        println!("{}", v.render_line());
    }
    let path = out.join("integrity.json");
    let json = integrity::render_integrity_json(&verdicts);
    if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, &json)) {
        eprintln!("warning: could not save {}: {e}", path.display());
    } else {
        println!("saved {}", path.display());
    }
    let mut failed = false;
    for v in report.failures() {
        failed = true;
        print!("{}", v.oracle.render());
        let scen = integrity::IntegrityScenario::ALL
            .into_iter()
            .find(|s| s.name() == v.scenario)
            .expect("integrity scenario");
        let stem = format!("integrity-{}-seed{:#06x}", slug(&v.scenario), v.seed);
        let path = out.join(format!("{stem}.json"));
        let json = chaos::schedule_json(&v.scenario, v.seed, &spec, &v.plan);
        if std::fs::write(&path, &json).is_ok() {
            println!("archived failing schedule: {}", path.display());
        }
        // traced replay of the failing schedule (the rebalance-backed
        // scenario has no traced runner; its schedule still archives)
        if scen != integrity::IntegrityScenario::RotUnderRebalance {
            let topts = faulted::FaultedOpts {
                plan: faulted::PlanSource::Fixed(v.plan.clone()),
                mode: daos_core::DataMode::Full,
                oracles: false,
                traced: true,
                scrub: scen == integrity::IntegrityScenario::ScrubReadRace,
                tolerate_unavailable: true,
                ..faulted::FaultedOpts::default()
            };
            let (_, exports) =
                faulted::run_faulted_with(&spec, FaultedScenario::IorEasyRp2, cal, &topts);
            if let Some(exports) = exports {
                if let Err(e) =
                    report::save_trace(&exports, out, &format!("integrity-{}", slug(&v.scenario)))
                {
                    eprintln!("warning: could not save failing-run trace: {e}");
                }
            }
        }
        let outcome = integrity::shrink_failing_integrity(&spec, scen, cal, v.seed, &v.plan);
        if outcome.reproduced {
            let min_path = out.join(format!("{stem}.min.json"));
            let min_json = chaos::schedule_json(&v.scenario, v.seed, &spec, &outcome.plan);
            if std::fs::write(&min_path, &min_json).is_ok() {
                println!(
                    "shrunk {} -> {} events ({} probes): {}",
                    v.plan.len(),
                    outcome.plan.len(),
                    outcome.probes,
                    min_path.display()
                );
                println!(
                    "replay: cargo run --release --bin repro -- scrub-replay --schedule {}",
                    min_path.display()
                );
            }
        } else {
            eprintln!("shrinker could not reproduce the failure (flaky oracle?)");
        }
    }
    if failed {
        eprintln!("integrity swarm found invariant violations");
        std::process::exit(1);
    }
}

/// Replay an archived integrity schedule byte-for-byte; exits non-zero
/// when the case fails its scenario-aware expectation.
fn run_scrub_replay(cal: &Calibration, schedule: &Path) {
    let input = std::fs::read_to_string(schedule)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", schedule.display()));
    let arch = chaos::parse_schedule(&input).expect("schedule artifact parses");
    let v = integrity::replay_archived_integrity(&arch, cal).expect("scenario resolves");
    println!("{}", v.render_line());
    if !v.passed() {
        print!("{}", v.chaos.oracle.render());
        std::process::exit(1);
    }
}

/// The scale-out ladder: 4 → 256 servers against the paper's
/// +3.86 GiB/s-per-server claim, every rung replayed.  Writes the
/// `scaleout.json` verdict artifact; exits non-zero if any verdict
/// fails.
fn run_scaleout_target(cal: &Calibration, out: &Path) {
    let report = benchkit::scaleout::run_scaleout(cal);
    print!("{}", report.render());
    let path = out.join("scaleout.json");
    let json = report.render_json();
    if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, &json)) {
        eprintln!("warning: could not save {}: {e}", path.display());
    } else {
        println!("saved {}", path.display());
    }
    if !report.passed() {
        eprintln!("scale-out ladder failed a claim verdict");
        std::process::exit(1);
    }
}

/// The engine bench trajectory: run every seeded workload family,
/// write `BENCH_engine.json` under `out/`, and gate against the
/// committed copy at the repository root.  Digests and event counts
/// must match exactly (they are seeded and deterministic); events/sec
/// may not regress more than 10%.
fn run_bench_engine(out: &Path) {
    use bench::engine_bench::{
        calibration_spin, run_family, BENCH_OPS, CALIBRATION_ITERS, FAMILIES,
    };
    const REPS: usize = 5;
    const MAX_REGRESSION: f64 = 0.10;

    // Each timing window accumulates whole deterministic runs (or spin
    // blocks) until it is long enough to smother scheduler jitter; the
    // best rep stands in for the machine's attainable rate (the usual
    // defence against a noisy neighbour slowing one rep).
    const MIN_WINDOW_SECS: f64 = 0.15;

    // Machine-speed reference, re-measured inside EVERY rep right
    // before the family windows: the gate compares events/sec divided
    // by the adjacent spin rate, so CPU contention — even the bursty
    // kind that slows whole seconds at a time — rescales both sides,
    // while real per-event cost changes still move the ratio.
    let spin_rate = || {
        let mut iters = 0u64;
        let t0 = Instant::now();
        loop {
            std::hint::black_box(calibration_spin(CALIBRATION_ITERS));
            iters += CALIBRATION_ITERS;
            let dt = t0.elapsed().as_secs_f64();
            if dt >= MIN_WINDOW_SECS {
                return iters as f64 / dt;
            }
        }
    };

    let mut best_eps = vec![0.0f64; FAMILIES.len()];
    let mut norms: Vec<Vec<f64>> = vec![Vec::new(); FAMILIES.len()];
    let mut results: Vec<Option<bench::engine_bench::FamilyResult>> = vec![None; FAMILIES.len()];
    let mut cal = 0.0f64;
    for _ in 0..REPS {
        let rep_cal = spin_rate();
        cal = cal.max(rep_cal);
        for (i, fam) in FAMILIES.iter().enumerate() {
            let mut events = 0u64;
            let t0 = Instant::now();
            let dt = loop {
                let r = run_family(fam, BENCH_OPS);
                if let Some(prev) = &results[i] {
                    assert_eq!(&r, prev, "{fam}: digest drifted between runs");
                }
                events += r.events;
                results[i] = Some(r);
                let dt = t0.elapsed().as_secs_f64();
                if dt >= MIN_WINDOW_SECS {
                    break dt;
                }
            };
            let eps = events as f64 / dt;
            best_eps[i] = best_eps[i].max(eps);
            // Events per million adjacent calibration iterations: a
            // machine-speed-independent cost figure (bigger is faster).
            norms[i].push(eps / rep_cal * 1e6);
        }
    }
    println!("calibration spin: {cal:.0} iters/s");

    // Median of the per-rep ratios: robust against both contention
    // dips (which depress a rep) and anti-correlated luck (a slow spin
    // next to a fast family, which would inflate a best-of).
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };

    let mut rows: Vec<(&str, u64, u64, f64, f64)> = Vec::new();
    for (i, fam) in FAMILIES.iter().enumerate() {
        let r = results[i].as_ref().expect("at least one rep ran");
        let norm = median(&mut norms[i]);
        println!(
            "{:<8} {:>6} events  digest {:#018x}  {:>12.0} events/s  {:>10.1} per-Mspin",
            fam, r.events, r.digest, best_eps[i], norm
        );
        rows.push((fam, r.events, r.digest, best_eps[i], norm));
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(name, events, digest, eps, norm)| {
            format!(
                "  {{\"name\":\"{name}\",\"events\":{events},\"digest\":\"{digest:#018x}\",\"events_per_sec\":{eps:.1},\"normalized\":{norm:.2}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n\"ops\":{BENCH_OPS},\n\"calibration_iters_per_sec\":{cal:.0},\n\"families\":[\n{}\n]\n}}\n",
        entries.join(",\n")
    );
    let path = out.join("BENCH_engine.json");
    if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, &json)) {
        eprintln!("warning: could not save {}: {e}", path.display());
    } else {
        println!("saved {}", path.display());
    }

    let committed = Path::new("BENCH_engine.json");
    let prev = match std::fs::read_to_string(committed) {
        Ok(t) => t,
        Err(_) => {
            println!(
                "no committed {} — recorded a fresh trajectory point, nothing to gate against",
                committed.display()
            );
            return;
        }
    };
    let prev = simkit::json::parse(&prev).expect("committed BENCH_engine.json parses");
    let families = prev
        .get("families")
        .and_then(|f| f.as_arr())
        .expect("committed file lists families");
    let mut failed = false;
    for f in families {
        let name = f.get("name").and_then(|v| v.as_str()).expect("name");
        let events = f.get("events").and_then(|v| v.as_u64()).expect("events");
        let digest = f.get("digest").and_then(|v| v.as_str()).expect("digest");
        let norm = f
            .get("normalized")
            .and_then(|v| v.as_f64())
            .expect("normalized");
        let Some((_, now_events, now_digest, _, now_norm)) = rows.iter().find(|(n, ..)| *n == name)
        else {
            eprintln!("bench-engine: family `{name}` missing from this run");
            failed = true;
            continue;
        };
        let now_digest = format!("{now_digest:#018x}");
        if *now_events != events || now_digest != digest {
            eprintln!(
                "bench-engine: {name}: schedule drifted (events {events} -> {now_events}, digest {digest} -> {now_digest}) — determinism regression"
            );
            failed = true;
        } else if *now_norm < norm * (1.0 - MAX_REGRESSION) {
            eprintln!(
                "bench-engine: {name}: {now_norm:.1} events/Mspin is more than {:.0}% below the committed {norm:.1}",
                MAX_REGRESSION * 100.0
            );
            failed = true;
        } else {
            println!(
                "{name:<8} ok: {now_norm:.1} events/Mspin vs committed {norm:.1} ({:+.1}%)",
                (now_norm / norm - 1.0) * 100.0
            );
        }
    }
    if failed {
        eprintln!("bench-engine: trajectory gate failed");
        std::process::exit(1);
    }
}

/// Unified run reports: every scenario twice with the full telemetry
/// pipeline on (windowed monitor, span log, metrics registry, SLO
/// rules).  The double run is the determinism gate — the report JSON,
/// text and counter-track trace must be byte-identical, and the replay
/// digest must match the untelemetered run.  Artifacts land under
/// `out/` per scenario plus a `SLO_report.json` verdict summary, which
/// is gated against the committed `SLO_baseline.json`: any rule that
/// passed in the baseline must still pass.
fn run_report_target(cal: &Calibration, out: &Path) {
    use simkit::json::Json;
    let mut spec = RunSpec::new(2, 2, 4);
    spec.ops_per_proc = 24;
    let rules = benchkit::default_slo_rules();
    let mut summary: Vec<(String, Vec<simkit::SloVerdict>)> = Vec::new();
    for scen in Scenario::ALL {
        let (_, plain_digest) = benchkit::scenarios::run_scenario_digest(&spec, scen, cal);
        let a = benchkit::run_reported(&spec, scen, cal, &rules);
        let b = benchkit::run_reported(&spec, scen, cal, &rules);
        if a.report.replay_digest != plain_digest {
            eprintln!("{}: telemetry perturbed the replay digest", scen.name());
            std::process::exit(1);
        }
        if a.report.render_json() != b.report.render_json()
            || a.report.render_text() != b.report.render_text()
            || a.trace_json != b.trace_json
        {
            eprintln!(
                "{}: report artifacts not byte-identical across replays",
                scen.name()
            );
            std::process::exit(1);
        }
        print!("{}", a.report.render_text());
        let stem = format!("report-{}", slug(scen.name()));
        let save = |suffix: &str, data: &str| {
            let path = out.join(format!("{stem}{suffix}"));
            if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, data)) {
                eprintln!("warning: could not save {}: {e}", path.display());
            } else {
                println!("saved {}", path.display());
            }
        };
        save(".report.json", &a.report.render_json());
        save(".report.txt", &a.report.render_text());
        save(".counters.trace.json", &a.trace_json);
        summary.push((scen.name().to_string(), a.report.verdicts.clone()));
    }

    let scenarios: Vec<Json> = summary
        .iter()
        .map(|(name, verdicts)| {
            let slo = verdicts
                .iter()
                .map(|v| {
                    Json::Obj(vec![
                        ("rule".to_string(), Json::Str(v.rule.clone())),
                        ("pass".to_string(), Json::Bool(v.pass)),
                        ("observed".to_string(), Json::num_u64(v.observed)),
                        ("limit".to_string(), Json::num_u64(v.limit)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("scenario".to_string(), Json::Str(name.clone())),
                ("slo".to_string(), Json::Arr(slo)),
            ])
        })
        .collect();
    let mut json = Json::Obj(vec![("scenarios".to_string(), Json::Arr(scenarios))]).render();
    json.push('\n');
    let path = out.join("SLO_report.json");
    if let Err(e) = std::fs::create_dir_all(out).and_then(|_| std::fs::write(&path, &json)) {
        eprintln!("warning: could not save {}: {e}", path.display());
    } else {
        println!("saved {}", path.display());
    }

    let committed = Path::new("SLO_baseline.json");
    let prev = match std::fs::read_to_string(committed) {
        Ok(t) => t,
        Err(_) => {
            println!(
                "no committed {} — recorded fresh SLO verdicts, nothing to gate against",
                committed.display()
            );
            return;
        }
    };
    let prev = simkit::json::parse(&prev).expect("committed SLO_baseline.json parses");
    let scens = prev
        .get("scenarios")
        .and_then(|s| s.as_arr())
        .expect("baseline lists scenarios");
    let mut failed = false;
    for s in scens {
        let name = s
            .get("scenario")
            .and_then(|v| v.as_str())
            .expect("scenario");
        let Some((_, verdicts)) = summary.iter().find(|(n, _)| n == name) else {
            eprintln!("report: scenario `{name}` missing from this run");
            failed = true;
            continue;
        };
        for rule in s.get("slo").and_then(|v| v.as_arr()).expect("slo array") {
            let rname = rule.get("rule").and_then(|v| v.as_str()).expect("rule");
            if !matches!(rule.get("pass"), Some(Json::Bool(true))) {
                continue;
            }
            match verdicts.iter().find(|v| v.rule == rname) {
                Some(v) if v.pass => {}
                Some(v) => {
                    eprintln!(
                        "report: {name}: SLO `{rname}` regressed (observed {} vs limit {})",
                        v.observed, v.limit
                    );
                    failed = true;
                }
                None => {
                    eprintln!("report: {name}: SLO `{rname}` missing from this run");
                    failed = true;
                }
            }
        }
    }
    if failed {
        eprintln!("report: SLO verdict gate failed");
        std::process::exit(1);
    }
    println!("all baseline SLO verdicts held");
}

/// Bottleneck analysis: one representative point per scenario against a
/// 16-server deployment, with the top-utilised resources per phase —
/// the reasoning the paper applies when comparing measured bandwidth to
/// the "calculated optimum".
fn analyze(cal: &Calibration) {
    let scenarios = [
        Scenario::IorDaos,
        Scenario::IorDfs,
        Scenario::IorDfuse,
        Scenario::IorDfuseIl,
        Scenario::IorHdf5DfuseIl,
        Scenario::IorHdf5Daos,
        Scenario::FieldIo,
        Scenario::FdbDaos,
        Scenario::IorLustre,
        Scenario::FdbLustre,
        Scenario::IorCeph,
        Scenario::FdbCeph,
    ];
    for scen in scenarios {
        let spec = RunSpec::new(16, 32, 16);
        let (r, uses) = analyze_scenario(&spec, scen, cal, 5);
        println!(
            "
--- {} @ 16 servers, 32x16 clients: write {:.1} GiB/s, read {:.1} GiB/s",
            scen.name(),
            r.write.bandwidth() / GIB,
            r.read.bandwidth() / GIB
        );
        println!(
            "{:<24} {:>12} {:>12}",
            "resource", "write util", "read util"
        );
        for u in uses {
            println!(
                "{:<24} {:>11.1}% {:>11.1}%",
                u.name,
                u.write_frac * 100.0,
                u.read_frac * 100.0
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("results");
    let mut seeds: u64 = 8;
    let mut schedule: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--seeds" => {
                seeds = it
                    .next()
                    .expect("--seeds needs a count")
                    .parse()
                    .expect("--seeds needs a number");
            }
            "--schedule" => {
                schedule = Some(PathBuf::from(it.next().expect("--schedule needs a file")));
            }
            "-h" | "--help" => {
                println!(
                    "usage: repro [hw|fig1..fig9|fig6-rf2|lustre-ior|ceph-ior|faulted|trace|report|bench-engine|ablations|mdtest|analyze|chaos|chaos-replay|chaos-shrink|rebalance|rebalance-replay|scrub|scrub-replay|scaleout|all|quick]* [--out DIR] [--seeds N] [--schedule FILE]"
                );
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "hw",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig6-rf2",
            "fig7",
            "fig8",
            "fig9",
            "lustre-ior",
            "ceph-ior",
            "faulted",
            "ablations",
            "mdtest",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let cal = Calibration::default();
    let mut collected: Vec<Figure> = Vec::new();
    for t in targets {
        let t0 = Instant::now();
        println!("\n################ {t} ################");
        match t.as_str() {
            "hw" => emit(vec![figures::hardware_table()], &out, &mut collected),
            "fig1" => emit(figures::fig1(&cal), &out, &mut collected),
            "fig2" => emit(figures::fig2(&cal), &out, &mut collected),
            "fig3" => emit(figures::fig3(&cal), &out, &mut collected),
            "fig4" => emit(figures::fig4(&cal), &out, &mut collected),
            "fig5" => emit(figures::fig5(&cal), &out, &mut collected),
            "fig6" => emit(figures::fig6(&cal, false), &out, &mut collected),
            "fig6-rf2" => emit(figures::fig6(&cal, true), &out, &mut collected),
            "fig7" => emit(figures::fig7(&cal), &out, &mut collected),
            "fig8" => emit(figures::fig8(&cal), &out, &mut collected),
            "fig9" => emit(figures::fig9(&cal), &out, &mut collected),
            "lustre-ior" => emit(vec![figures::ior_lustre_table(&cal)], &out, &mut collected),
            "ceph-ior" => emit(vec![figures::ior_ceph_table(&cal)], &out, &mut collected),
            "faulted" => run_faulted_family(&cal, &out),
            "chaos" => run_chaos_swarm_target(&cal, &out, seeds),
            "chaos-replay" => run_chaos_replay(
                &cal,
                schedule
                    .as_deref()
                    .expect("chaos-replay needs --schedule FILE"),
            ),
            "chaos-shrink" => run_chaos_shrink(
                &cal,
                &out,
                schedule
                    .as_deref()
                    .expect("chaos-shrink needs --schedule FILE"),
            ),
            "rebalance" => run_rebalance_swarm_target(&cal, &out, seeds),
            "scrub" => run_scrub_target(&cal, &out, seeds),
            "scrub-replay" => run_scrub_replay(
                &cal,
                schedule
                    .as_deref()
                    .expect("scrub-replay needs --schedule FILE"),
            ),
            "rebalance-replay" => run_rebalance_replay(
                &cal,
                schedule
                    .as_deref()
                    .expect("rebalance-replay needs --schedule FILE"),
            ),
            "scaleout" => run_scaleout_target(&cal, &out),
            "trace" => run_traces(&cal, &out),
            "report" => run_report_target(&cal, &out),
            "bench-engine" => run_bench_engine(&out),
            "ablations" => emit(figures::ablations(&cal), &out, &mut collected),
            "mdtest" => emit(vec![figures::mdtest_table(&cal)], &out, &mut collected),
            "analyze" => analyze(&cal),
            "quick" => {
                emit(vec![figures::hardware_table()], &out, &mut collected);
                emit(figures::fig4(&cal), &out, &mut collected);
            }
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        }
        println!("[{t} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
    let verdicts = benchkit::verdict::evaluate(&collected);
    if !verdicts.is_empty() {
        println!("\n################ paper-claim verdicts ################");
        print!("{}", benchkit::verdict::render(&verdicts));
        let failed = verdicts.iter().filter(|v| !v.pass).count();
        println!(
            "\n{} of {} claims reproduced",
            verdicts.len() - failed,
            verdicts.len()
        );
    }
}
