//! Property tests for the calibration: perturbation stays within its
//! amplitude and never changes which hardware bound is the write/read
//! limiter.

use cluster::Calibration;
use proptest::prelude::*;
use simkit::SplitMix64;

proptest! {
    #[test]
    fn perturbation_bounded(seed in any::<u64>()) {
        let base = Calibration::default();
        let mut rng = SplitMix64::new(seed);
        let p = base.perturb(&mut rng);
        let amp = base.jitter_amp;
        prop_assert!((p.server_nvme_write_bw / base.server_nvme_write_bw - 1.0).abs() <= amp);
        prop_assert!((p.server_nvme_read_bw / base.server_nvme_read_bw - 1.0).abs() <= amp);
        prop_assert!((p.engine_xfer_bw / base.engine_xfer_bw - 1.0).abs() <= amp);
        prop_assert!((p.mds_iops / base.mds_iops - 1.0).abs() <= amp + 1e-9);
        // the structural orderings the model depends on survive
        prop_assert!(p.engine_xfer_bw > p.server_nvme_write_bw, "write stays SSD-bound");
        prop_assert!(p.engine_xfer_bw < p.nic_bw, "read stays engine-bound");
    }

    #[test]
    fn perturbations_differ_across_seeds(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let base = Calibration::default();
        let pa = base.perturb(&mut SplitMix64::new(a));
        let pb = base.perturb(&mut SplitMix64::new(b));
        prop_assert!(pa.server_nvme_write_bw != pb.server_nvme_write_bw);
    }
}
