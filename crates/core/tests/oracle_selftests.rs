//! Oracle self-tests: plant deliberate durability violations and assert
//! each invariant oracle catches them with a precise report — and stays
//! silent on healthy systems.  An oracle that cannot see a planted bug
//! would green-light the whole chaos swarm, so these tests are the
//! swarm's own trust anchor.

use cluster::{ClusterSpec, Payload};
use daos_core::{
    ContainerId, ContainerProps, DaosSystem, DataMode, ObjectClass, OracleKind, TargetId,
};
use simkit::{run, OpId, Scheduler, SplitMix64, Step, World};

struct Done;
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

fn exec(sched: &mut Scheduler, step: Step) {
    sched.submit(step, OpId(0));
    run(sched, &mut Done);
}

fn rand_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Deploy with the ledger on, create a container, and write a KV entry
/// plus one RP_2 and one EC_2P1 array.
fn fixture() -> (
    Scheduler,
    DaosSystem,
    ContainerId,
    daos_core::Oid, // kv
    daos_core::Oid, // rp2 array
    daos_core::Oid, // ec array
) {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
    daos.enable_ledger();
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let (kv, s) = daos.kv_create(0, cid, ObjectClass::RP_2).unwrap();
    exec(&mut sched, s);
    let (rp2, s) = daos
        .array_create(0, cid, ObjectClass::RP_2, 1 << 16)
        .unwrap();
    exec(&mut sched, s);
    let (ec, s) = daos
        .array_create(0, cid, ObjectClass::EC_2P1, 1 << 16)
        .unwrap();
    exec(&mut sched, s);
    for i in 0..8u64 {
        let key = format!("k/{i:04}");
        let s = daos
            .kv_put(
                0,
                cid,
                kv,
                key.as_bytes(),
                Payload::Bytes(rand_bytes(i, 128)),
            )
            .unwrap();
        exec(&mut sched, s);
        let s = daos
            .array_write(
                0,
                cid,
                rp2,
                i * 4096,
                Payload::Bytes(rand_bytes(100 + i, 4096)),
            )
            .unwrap();
        exec(&mut sched, s);
        let s = daos
            .array_write(
                0,
                cid,
                ec,
                i * 4096,
                Payload::Bytes(rand_bytes(200 + i, 4096)),
            )
            .unwrap();
        exec(&mut sched, s);
    }
    (sched, daos, cid, kv, rp2, ec)
}

#[test]
fn healthy_system_passes_every_oracle() {
    let (_sched, mut daos, _cid, _kv, _rp2, _ec) = fixture();
    let report = daos.verify_durability(0);
    assert!(
        report.ok(),
        "healthy read-back must be clean:\n{}",
        report.render()
    );
    assert_eq!(report.checked_kv, 8);
    assert_eq!(report.checked_extents, 16, "8 extents on each array");
    let red = daos.verify_redundancy();
    assert!(red.ok());
    assert!(red.checked_groups > 0);
}

#[test]
fn dropped_acked_kv_write_is_caught_with_precise_report() {
    let (_sched, mut daos, cid, kv, _rp2, _ec) = fixture();
    assert!(daos.inject_drop_acked_kv(cid, kv, b"k/0003"));
    let report = daos.verify_durability(0);
    assert_eq!(report.violations.len(), 1, "exactly the planted loss");
    let v = &report.violations[0];
    assert_eq!(v.oracle, OracleKind::AckedDurability);
    assert!(
        v.subject.contains("k/0003"),
        "subject names the key: {}",
        v.subject
    );
    assert!(
        v.detail.contains("NoSuchKey"),
        "detail carries the observed error: {}",
        v.detail
    );
}

#[test]
fn corrupted_ec_cell_is_transparently_repaired() {
    // Rot in one EC cell is within EC_2P1's parity budget: the verified
    // read detects it, repairs it, and the audit stays clean.
    let (_sched, mut daos, cid, _kv, _rp2, ec) = fixture();
    assert!(daos.inject_corrupt_extent(cid, ec, 5 * 4096 + 17));
    let report = daos.verify_durability(0);
    assert!(report.ok(), "single-cell rot repairs:\n{}", report.render());
    let stats = daos.csum_stats();
    assert!(stats.detected >= 1, "the rot was detected");
    assert!(stats.repaired >= 1, "and repaired");
    assert_eq!(stats.served_corrupt, 0);
    assert_eq!(stats.unrepairable, 0);
    // A second audit sees only clean chunks: the repair rewrote the
    // stored bytes, it did not mask them.
    let again = daos.verify_durability(0);
    assert!(again.ok());
    assert_eq!(daos.csum_stats().detected, stats.detected);
}

#[test]
fn ec_rot_beyond_parity_fails_loudly_as_corruption() {
    // Rot two distinct cells of the same EC_2P1 chunk (> p = 1): the
    // read must refuse with BadChecksum — never serve the bytes — and
    // the audit names the extent with a Corruption violation.
    let (_sched, mut daos, cid, _kv, _rp2, ec) = fixture();
    assert!(daos.inject_corrupt_extent(cid, ec, 17)); // cell 0
    assert!(daos.inject_corrupt_extent(cid, ec, 32768 + 17)); // cell 1
    let report = daos.verify_durability(0);
    assert!(!report.ok());
    assert!(report
        .violations
        .iter()
        .all(|v| v.oracle == OracleKind::Corruption));
    assert!(
        report.violations[0].subject.contains("extent"),
        "subject names the extent: {}",
        report.violations[0].subject
    );
    let stats = daos.csum_stats();
    assert!(stats.unrepairable >= 1);
    assert_eq!(stats.served_corrupt, 0, "bad bytes are never served");
}

#[test]
fn corrupted_replica_bytes_are_transparently_repaired() {
    let (_sched, mut daos, cid, _kv, rp2, _ec) = fixture();
    assert!(daos.inject_corrupt_extent(cid, rp2, 0));
    let report = daos.verify_durability(0);
    assert!(
        report.ok(),
        "single-replica rot repairs:\n{}",
        report.render()
    );
    assert!(daos.csum_stats().repaired >= 1);
    assert_eq!(daos.csum_stats().served_corrupt, 0);
}

#[test]
fn rot_on_every_replica_fails_loudly_as_corruption() {
    let (_sched, mut daos, cid, _kv, rp2, _ec) = fixture();
    assert!(daos.inject_corrupt_replica(cid, rp2, 0, 0));
    assert!(daos.inject_corrupt_replica(cid, rp2, 0, 1));
    let report = daos.verify_durability(0);
    assert!(!report.ok(), "rot on both RP_2 replicas is unrepairable");
    assert!(report
        .violations
        .iter()
        .all(|v| v.oracle == OracleKind::Corruption));
    assert_eq!(daos.csum_stats().served_corrupt, 0);
}

#[test]
fn corrupted_kv_value_is_repaired_and_beyond_redundancy_is_loud() {
    let (_sched, mut daos, cid, kv, _rp2, _ec) = fixture();
    // one rotten replica of a value: verified get repairs it
    assert!(daos.inject_corrupt_kv(cid, kv, b"k/0002", 0));
    let report = daos.verify_durability(0);
    assert!(report.ok(), "{}", report.render());
    assert!(daos.csum_stats().repaired >= 1);
    // both replicas rotten: the get refuses, the audit names the key
    assert!(daos.inject_corrupt_kv(cid, kv, b"k/0005", 0));
    assert!(daos.inject_corrupt_kv(cid, kv, b"k/0005", 1));
    let report = daos.verify_durability(0);
    assert!(!report.ok());
    let v = &report.violations[0];
    assert_eq!(v.oracle, OracleKind::Corruption);
    assert!(v.subject.contains("k/0005"), "{}", v.subject);
    assert_eq!(daos.csum_stats().served_corrupt, 0);
}

#[test]
fn corrupted_parity_cell_is_detected_and_repaired_by_scrub() {
    // Parity rot is invisible to plain reads (they only touch data
    // cells) — exactly the latent-rot case the scrubber exists for.
    let (_sched, mut daos, cid, _kv, _rp2, ec) = fixture();
    assert!(daos.inject_corrupt_parity(cid, ec, 0, 0));
    daos.scrub_start();
    while daos.scrub_wave(16).is_some() {}
    let scrub = daos.scrub_progress();
    assert!(scrub.detected >= 1, "scrub found the parity rot");
    assert!(scrub.repaired >= 1, "and repaired it");
    assert_eq!(scrub.unrepairable, 0);
    assert_eq!(scrub.passes, 1);
    let report = daos.verify_durability(0);
    assert!(report.ok(), "{}", report.render());
}

#[test]
fn oracle_rides_through_crash_detection_and_rebuild() {
    // Crash a server, rebuild, then audit: every acked write must still
    // read back through the degraded/rebuilt paths, with the auditor
    // absorbing the one-shot TargetDown detection errors itself.
    let (mut sched, mut daos, _cid, _kv, _rp2, _ec) = fixture();
    daos.crash_target(TargetId {
        server: 1,
        target: 0,
    });
    let (_report, step) = daos.rebuild();
    exec(&mut sched, step);
    let report = daos.verify_durability(0);
    assert!(
        report.ok(),
        "single-fault crash + rebuild must lose nothing:\n{}",
        report.render()
    );
    let red = daos.verify_redundancy();
    assert!(
        red.ok(),
        "rebuild must restore full redundancy:\n{}",
        red.render()
    );
}

#[test]
fn unrebuilt_crash_fails_the_redundancy_oracle() {
    let (_sched, mut daos, _cid, _kv, _rp2, _ec) = fixture();
    daos.crash_target(TargetId {
        server: 2,
        target: 0,
    });
    let red = daos.verify_redundancy();
    assert!(!red.ok(), "down group members with no rebuild = violation");
    assert!(red
        .violations
        .iter()
        .all(|v| v.oracle == OracleKind::RedundancyRestored));
    assert!(
        red.violations[0].detail.contains("2.0"),
        "{}",
        red.violations[0].detail
    );
}

#[test]
fn ledger_respects_removes_punches_and_overwrites() {
    let (mut sched, mut daos, cid, kv, rp2, _ec) = fixture();
    // Remove one key: it must no longer be audited (reading it would
    // report a false loss).
    let s = daos.kv_remove(0, cid, kv, b"k/0000").unwrap();
    exec(&mut sched, s);
    // Overwrite an extent: the audit must expect the new bytes.
    let s = daos
        .array_write(0, cid, rp2, 0, Payload::Bytes(rand_bytes(999, 4096)))
        .unwrap();
    exec(&mut sched, s);
    let report = daos.verify_durability(0);
    assert!(report.ok(), "{}", report.render());
    assert_eq!(report.checked_kv, 7);
    // Punch the whole array: its extents leave the audit set.
    let s = daos.obj_punch(0, cid, rp2).unwrap();
    exec(&mut sched, s);
    let report = daos.verify_durability(0);
    assert!(report.ok(), "{}", report.render());
    assert_eq!(report.checked_extents, 8, "only the EC array remains");
}

#[test]
fn sized_mode_audit_checks_readability_and_length() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Sized);
    daos.enable_ledger();
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let (oid, s) = daos
        .array_create(0, cid, ObjectClass::RP_2, 1 << 16)
        .unwrap();
    exec(&mut sched, s);
    let s = daos
        .array_write(0, cid, oid, 0, Payload::Sized(1 << 20))
        .unwrap();
    exec(&mut sched, s);
    let report = daos.verify_durability(0);
    assert!(report.ok(), "{}", report.render());
    assert_eq!(report.checked_extents, 1);
    // Lose three of the four servers outright: some RP_2 group has
    // both replicas on the dead nodes, so reads fail and the oracle
    // reports the loss.
    let tps = daos.pool().targets_per_server() as u16;
    for server in 0..3u16 {
        for target in 0..tps {
            daos.crash_target(TargetId { server, target });
        }
    }
    let report = daos.verify_durability(0);
    assert!(
        !report.ok(),
        "triple crash in a 4-server RP_2 pool must lose some group"
    );
    assert_eq!(report.violations[0].oracle, OracleKind::AckedDurability);
}

/// The ledger must never alter the simulated schedule: the same faulted
/// workload produces the same digest with the ledger on and off.
#[test]
fn ledger_never_perturbs_the_replay_digest() {
    let run_once = |with_ledger: bool| -> u64 {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(4, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
        if with_ledger {
            daos.enable_ledger();
        }
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let (oid, s) = daos
            .array_create(0, cid, ObjectClass::RP_2, 1 << 16)
            .unwrap();
        exec(&mut sched, s);
        for i in 0..4u64 {
            let s = daos
                .array_write(0, cid, oid, i * 8192, Payload::Bytes(rand_bytes(i, 8192)))
                .unwrap();
            exec(&mut sched, s);
        }
        daos.crash_target(TargetId {
            server: 1,
            target: 0,
        });
        let (_r, step) = daos.rebuild();
        exec(&mut sched, step);
        sched.digest()
    };
    assert_eq!(run_once(true), run_once(false));
}
