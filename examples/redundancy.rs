//! Redundancy in action: replication fail-over and real erasure-coded
//! reconstruction after a server loss — the durability features behind
//! the paper's §III-D performance results.
//!
//! ```text
//! cargo run --release --example redundancy
//! ```

use cluster::{ClusterSpec, Payload, GIB, MIB};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use simkit::{run, OpId, Scheduler, SimTime, SplitMix64, Step, World};

struct Done(SimTime);
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn exec(sched: &mut Scheduler, step: Step) -> f64 {
    let t0 = sched.now();
    sched.submit(step, OpId(0));
    let mut w = Done(SimTime::ZERO);
    run(sched, &mut w);
    w.0.secs_since(t0)
}

fn main() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);

    let mut rng = SplitMix64::new(99);
    let mut field = vec![0u8; (2.0 * MIB) as usize];
    rng.fill_bytes(&mut field);

    // --- write the same data under three protection schemes -------------
    let (plain, s) = daos.array_create(0, cid, ObjectClass::SX, 1 << 20).unwrap();
    exec(&mut sched, s);
    let (mirrored, s) = daos
        .array_create(0, cid, ObjectClass::RP_2, 1 << 20)
        .unwrap();
    exec(&mut sched, s);
    let (coded, s) = daos
        .array_create(0, cid, ObjectClass::EC_2P1, 1 << 20)
        .unwrap();
    exec(&mut sched, s);

    println!("writing 2 MiB under three object classes:");
    for (name, oid, amp) in [
        ("SX (none)", plain, 1.0),
        ("RP_2", mirrored, 2.0),
        ("EC_2P1", coded, 1.5),
    ] {
        let secs = exec(
            &mut sched,
            daos.array_write(0, cid, oid, 0, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        println!(
            "  {name:<12} {secs:.4}s  ({amp}x bytes on devices -> the paper's \
             1/1, 1/2, 2/3 write-bandwidth ladder)"
        );
    }
    let _ = GIB;

    // --- kill a server ----------------------------------------------------
    println!("\nexcluding server 0 (16 targets down) …");
    daos.exclude_server(0);

    // unprotected data may be gone
    match daos.array_read(0, cid, plain, 0, field.len() as u64) {
        Ok(_) => println!("  SX     : data happened to avoid server 0 — lucky"),
        Err(e) => println!("  SX     : read fails as expected ({e:?})"),
    }

    // replicated data fails over
    let (data, s) = daos
        .array_read(0, cid, mirrored, 0, field.len() as u64)
        .unwrap();
    exec(&mut sched, s);
    assert_eq!(data.bytes().unwrap(), &field[..]);
    println!("  RP_2   : served from the surviving replica, verified");

    // erasure-coded data reconstructs through real Reed-Solomon decode
    let (data, s) = daos
        .array_read(0, cid, coded, 0, field.len() as u64)
        .unwrap();
    let secs = exec(&mut sched, s);
    assert_eq!(data.bytes().unwrap(), &field[..]);
    println!("  EC_2P1 : reconstructed from surviving cells + parity in {secs:.4}s, verified");

    // --- reintegrate and confirm reads go clean again ---------------------
    for t in 0..16 {
        daos.reintegrate_target(daos_core::TargetId {
            server: 0,
            target: t,
        });
    }
    let (data, s) = daos
        .array_read(0, cid, coded, 0, field.len() as u64)
        .unwrap();
    exec(&mut sched, s);
    assert_eq!(data.bytes().unwrap(), &field[..]);
    println!("\nserver 0 reintegrated; EC reads healthy again");
}
