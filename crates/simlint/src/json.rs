//! Minimal JSON reader for the baseline and index-cache files.
//!
//! The crate is zero-dependency by policy, so this is a small hand-rolled
//! recursive-descent parser: objects, arrays, strings (with the escapes
//! our own writer emits), numbers, booleans and null.  Numbers are kept
//! as `f64` — line numbers and counts fit exactly; anything that must
//! survive full 64-bit round-trips (the index fingerprint) is stored as a
//! hex string instead.  Writing stays hand-formatted at the call sites,
//! using [`crate::json_escape`].

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && b[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, i),
        Some(b'[') => parse_arr(b, i),
        Some(b'"') => parse_str(b, i).map(Json::Str),
        Some(b't') => parse_lit(b, i, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, i, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, i, "null", Json::Null),
        Some(_) => parse_num(b, i),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {}", *i))
    }
}

fn parse_num(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at offset {start}"))
}

fn parse_str(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    let mut out = String::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {}", *i))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at offset {}", *i)),
                }
                *i += 1;
            }
            c => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*i..*i + ch_len)
                    .ok_or_else(|| format!("truncated UTF-8 at offset {}", *i))?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *i += ch_len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // [
    let mut out = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected , or ] at offset {}", *i)),
        }
    }
}

fn parse_obj(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // {
    let mut out = BTreeMap::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at offset {}", *i));
        }
        let key = parse_str(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected : at offset {}", *i));
        }
        *i += 1;
        let val = parse_value(b, i)?;
        out.insert(key, val);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected , or }} at offset {}", *i)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,{"b":"x"},true],"c":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(|b| b.as_str()), Some("x"));
    }

    #[test]
    fn round_trips_own_finding_json() {
        let f = crate::Finding {
            rule: "wall-clock",
            severity: crate::Severity::Error,
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "msg — with unicode".to_string(),
            excerpt: "let s = \"x\";".to_string(),
        };
        let v = Json::parse(&f.to_json()).unwrap();
        assert_eq!(v.get("path").and_then(|p| p.as_str()), Some("a\"b.rs"));
        assert_eq!(v.get("line").and_then(|l| l.as_u64()), Some(3));
        assert_eq!(
            v.get("message").and_then(|m| m.as_str()),
            Some("msg — with unicode")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
