//! Scenario builders: every system × interface × benchmark combination
//! the paper measures, constructed from scratch per run (one simulated
//! deployment per repetition, like the paper's re-deployed clusters).

use crate::driver::{run_phase, PhaseResult};
use crate::stats::Stats;
use crate::workloads::{FdbWorkload, FieldIoWorkload};
use ceph_sim::{CephDataMode, CephPoolOpts, CephSystem};
use cluster::bench::Phase;
use cluster::{Calibration, ClusterSpec};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use daos_dfs::{Dfs, DfsOpts};
use daos_dfuse::{DfuseMount, DfuseOpts};
use fdb_sim::{FdbCeph, FdbDaos, FdbPosix};
use field_io::FieldIo;
use hdf5_lite::H5Runtime;
use ior_bench::{Ior, IorBackend, IorConfig};
use lustre_sim::{LustreDataMode, LustreSystem, StripeOpts};
use simkit::{run, OpId, Scheduler, SplitMix64, World};
use std::cell::RefCell;
use std::rc::Rc;

/// One point of a sweep: deployment size, client shape, workload size.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Storage-server nodes.
    pub servers: usize,
    /// Client nodes.
    pub client_nodes: usize,
    /// Processes per client node.
    pub ppn: usize,
    /// Operations per process in each measured phase.
    pub ops_per_proc: usize,
    /// Transfer size per operation.
    pub transfer: u64,
    /// Object class for bulk data (Arrays/files); `SX` is the paper's
    /// default, `EC_2P1` in the redundancy experiments.
    pub data_class: ObjectClass,
    /// Object class for metadata entities (Key-Values/directories).
    pub meta_class: ObjectClass,
    /// Ceph placement groups.
    pub pg_num: usize,
    /// Override the DFUSE daemon thread count (ablation knob).
    pub fuse_threads: Option<usize>,
    /// Enable DFUSE client-side data+metadata caching (the paper runs
    /// with caching disabled; ablation knob).
    pub dfuse_caching: bool,
    /// Field I/O's per-read size check (ablation knob; the real tool
    /// always checks).
    pub fieldio_size_check: bool,
    /// IOR in-flight ops per process (1 = the paper's synchronous runs).
    pub queue_depth: usize,
    /// Base RNG seed (repetitions derive from it).
    pub seed: u64,
}

impl RunSpec {
    /// A spec with the paper's defaults and an auto-scaled op count.
    pub fn new(servers: usize, client_nodes: usize, ppn: usize) -> RunSpec {
        let procs = (client_nodes * ppn).max(1);
        RunSpec {
            servers,
            client_nodes,
            ppn,
            ops_per_proc: auto_ops(procs),
            transfer: 1 << 20,
            data_class: ObjectClass::SX,
            meta_class: ObjectClass::SX,
            pg_num: 1024,
            fuse_threads: None,
            dfuse_caching: false,
            fieldio_size_check: true,
            queue_depth: 1,
            seed: 42,
        }
    }

    /// Total parallel processes.
    pub fn procs(&self) -> usize {
        self.client_nodes * self.ppn
    }
}

/// Scale the per-process op count down from the paper's 10k so sweeps
/// stay tractable: steady-state bandwidth is reached long before.
pub fn auto_ops(procs: usize) -> usize {
    (40_000 / procs.max(1)).clamp(24, 256)
}

/// The benchmark × interface × store combinations of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// IOR on native libdaos Arrays (Fig. 1).
    IorDaos,
    /// IOR on libdfs files (Fig. 1).
    IorDfs,
    /// IOR POSIX on a DFUSE mount (Fig. 1, 2).
    IorDfuse,
    /// IOR POSIX on DFUSE with the interception library (Fig. 1, 2).
    IorDfuseIl,
    /// IOR HDF5 backend, POSIX VFD on DFUSE+IL (Fig. 3 a/b).
    IorHdf5DfuseIl,
    /// IOR HDF5 backend, DAOS VOL connector (Fig. 3 c/d, Fig. 4).
    IorHdf5Daos,
    /// Field I/O on libdaos (Fig. 3 e/f).
    FieldIo,
    /// fdb-hammer on libdaos (Fig. 3 g/h, Fig. 6, 9).
    FdbDaos,
    /// IOR POSIX on Lustre (§III-E).
    IorLustre,
    /// fdb-hammer POSIX on Lustre (Fig. 7, 9).
    FdbLustre,
    /// IOR on librados (§III-F).
    IorCeph,
    /// fdb-hammer on librados (Fig. 8, 9).
    FdbCeph,
}

impl Scenario {
    /// Every paper scenario, in presentation order.
    pub const ALL: [Scenario; 12] = [
        Scenario::IorDaos,
        Scenario::IorDfs,
        Scenario::IorDfuse,
        Scenario::IorDfuseIl,
        Scenario::IorHdf5DfuseIl,
        Scenario::IorHdf5Daos,
        Scenario::FieldIo,
        Scenario::FdbDaos,
        Scenario::IorLustre,
        Scenario::FdbLustre,
        Scenario::IorCeph,
        Scenario::FdbCeph,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::IorDaos => "IOR/libdaos",
            Scenario::IorDfs => "IOR/DFS",
            Scenario::IorDfuse => "IOR/DFUSE",
            Scenario::IorDfuseIl => "IOR/DFUSE+IL",
            Scenario::IorHdf5DfuseIl => "IOR-HDF5/DFUSE+IL",
            Scenario::IorHdf5Daos => "IOR-HDF5/libdaos",
            Scenario::FieldIo => "Field I/O",
            Scenario::FdbDaos => "fdb-hammer/libdaos",
            Scenario::IorLustre => "IOR/Lustre",
            Scenario::FdbLustre => "fdb-hammer/Lustre",
            Scenario::IorCeph => "IOR/librados",
            Scenario::FdbCeph => "fdb-hammer/librados",
        }
    }

    /// Whether this scenario runs against the DAOS deployment.
    pub fn on_daos(&self) -> bool {
        !matches!(
            self,
            Scenario::IorLustre | Scenario::FdbLustre | Scenario::IorCeph | Scenario::FdbCeph
        )
    }
}

/// Write- and read-phase results of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Write-phase measurement.
    pub write: PhaseResult,
    /// Read-phase measurement.
    pub read: PhaseResult,
}

struct Sink;
impl World for Sink {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

pub(crate) fn exec(sched: &mut Scheduler, step: simkit::Step) {
    sched.submit(step, OpId(u64::MAX));
    run(sched, &mut Sink);
}

pub(crate) fn make_sched(spec: &RunSpec, with_monitor: bool) -> Scheduler {
    let mut sched = if with_monitor {
        Scheduler::with_monitor()
    } else {
        Scheduler::new()
    };
    // Performance knobs for large sweeps: batch near-simultaneous
    // completions (the quantum is far below any modelled latency but
    // merges whole waves of op completions into one fair-share solve),
    // and allow 2% slack in bottleneck selection.
    sched.set_coalescing(if spec.transfer >= (256 << 10) {
        100_000
    } else {
        2_000
    });
    sched.set_fairshare_tolerance(0.02);
    sched
}

/// Execute one scenario at one sweep point with the given calibration.
pub fn run_scenario(spec: &RunSpec, scen: Scenario, cal: &Calibration) -> RunResult {
    let mut sched = make_sched(spec, false);
    run_scenario_on(&mut sched, spec, scen, cal).0
}

/// Like [`run_scenario`], but also returns the scheduler's replay digest
/// (see [`simkit::trace::ReplayDigest`]): an order-sensitive hash of the
/// full `(time, op)` completion stream, including deployment and setup
/// traffic.  Two calls with equal arguments must return bit-identical
/// results *and* digests — the property the determinism harness checks
/// for every scenario (see [`crate::determinism`]).
// simlint::digest_root — scenario replay-digest entry
pub fn run_scenario_digest(spec: &RunSpec, scen: Scenario, cal: &Calibration) -> (RunResult, u64) {
    let mut sched = make_sched(spec, false);
    let (result, _) = run_scenario_on(&mut sched, spec, scen, cal);
    (result, sched.digest())
}

/// Like [`run_scenario_digest`], but with an engine-level fault
/// schedule installed before the run starts (event times are offsets
/// from run start).  Only engine-applied actions
/// ([`simkit::FaultAction::SlowDisk`] /
/// [`simkit::FaultAction::NicBrownout`]) take effect here — the generic
/// scenario drivers have no fault-aware world, so crash or delay events
/// would fire into the default no-op handler.  The chaos swarm uses
/// this to subject every scenario in [`Scenario::ALL`] to random
/// capacity weather and assert determinism still holds.
// simlint::digest_root — chaos engine-swarm replay-digest entry
pub fn run_scenario_chaos(
    spec: &RunSpec,
    scen: Scenario,
    cal: &Calibration,
    plan: &simkit::FaultPlan,
) -> (RunResult, u64) {
    let mut sched = make_sched(spec, false);
    let t0 = sched.now();
    sched.install_faults(plan.shifted(t0));
    let (result, _) = run_scenario_on(&mut sched, spec, scen, cal);
    (result, sched.digest())
}

/// Like [`run_scenario`], but with per-resource utilisation analysis:
/// returns the top-`top` resources by utilisation in each phase — the
/// saturation reasoning the paper applies to every figure.
pub fn analyze_scenario(
    spec: &RunSpec,
    scen: Scenario,
    cal: &Calibration,
    top: usize,
) -> (RunResult, Vec<ResourceUse>) {
    let mut sched = make_sched(spec, true);
    let (result, mid) = run_scenario_on(&mut sched, spec, scen, cal);
    let n = sched.resource_count();
    let end = sched.monitor().snapshot(n);
    let caps = sched.capacities().to_vec();
    let mut uses: Vec<ResourceUse> = (0..n)
        .filter(|&i| caps[i] > simkit::Rate::ZERO)
        .map(|i| {
            let w_units = mid.get(i).copied().unwrap_or(0.0);
            let r_units = end[i] - w_units;
            ResourceUse {
                name: sched
                    .resource_name(simkit::ResourceId(i as u32))
                    .to_string(),
                write_frac: if result.write.seconds > 0.0 {
                    w_units / caps[i].bytes_in(result.write.seconds).get()
                } else {
                    0.0
                },
                read_frac: if result.read.seconds > 0.0 {
                    r_units / caps[i].bytes_in(result.read.seconds).get()
                } else {
                    0.0
                },
            }
        })
        .collect();
    uses.sort_by(|a, b| {
        b.write_frac
            .max(b.read_frac)
            .partial_cmp(&a.write_frac.max(a.read_frac))
            .unwrap()
    });
    uses.truncate(top);
    (result, uses)
}

/// Utilisation of one resource across the two phases.
#[derive(Debug, Clone)]
pub struct ResourceUse {
    /// Resource name as registered with the scheduler.
    pub name: String,
    /// Mean utilisation during the write phase (0..=1, approximate:
    /// setup traffic is attributed to the write window).
    pub write_frac: f64,
    /// Mean utilisation during the read phase.
    pub read_frac: f64,
}

pub(crate) fn run_scenario_on(
    sched: &mut Scheduler,
    spec: &RunSpec,
    scen: Scenario,
    cal: &Calibration,
) -> (RunResult, Vec<f64>) {
    let sched = &mut *sched;
    let cspec = ClusterSpec::new(spec.servers, spec.client_nodes).with_cal(cal.clone());
    let topo = cspec.build(sched);
    let procs = spec.procs();
    let ior_cfg = |ops: usize| {
        let mut c = IorConfig::new(procs, spec.client_nodes, ops);
        c.transfer_size = spec.transfer;
        c.queue_depth = spec.queue_depth;
        c
    };

    match scen {
        Scenario::IorDaos
        | Scenario::IorDfs
        | Scenario::IorDfuse
        | Scenario::IorDfuseIl
        | Scenario::IorHdf5DfuseIl
        | Scenario::IorHdf5Daos => {
            let mut daos = DaosSystem::deploy(&topo, sched, spec.servers, DataMode::Sized);
            let (cid, s) = daos.cont_create(0, ContainerProps::default());
            exec(sched, s);
            let daos = Rc::new(RefCell::new(daos));
            let dfs_opts = DfsOpts {
                file_class: spec.data_class,
                dir_class: spec.meta_class,
                chunk_size: 1 << 20,
            };
            let backend = match scen {
                Scenario::IorDaos => IorBackend::Daos {
                    daos: daos.clone(),
                    cid,
                    oclass: spec.data_class,
                },
                Scenario::IorDfs => {
                    let (dfs, s) = Dfs::format(daos.clone(), 0, cid, dfs_opts).expect("dfs");
                    exec(sched, s);
                    IorBackend::Dfs(dfs)
                }
                Scenario::IorDfuse | Scenario::IorDfuseIl => {
                    let (dfs, s) = Dfs::format(daos.clone(), 0, cid, dfs_opts).expect("dfs");
                    exec(sched, s);
                    let mut opts = if scen == Scenario::IorDfuseIl {
                        DfuseOpts::with_interception()
                    } else {
                        DfuseOpts::default()
                    };
                    if let Some(threads) = spec.fuse_threads {
                        opts.fuse_threads = threads;
                    }
                    opts.data_caching = spec.dfuse_caching;
                    opts.metadata_caching = spec.dfuse_caching;
                    IorBackend::Posix(Box::new(DfuseMount::mount(dfs, sched, opts)))
                }
                Scenario::IorHdf5DfuseIl => {
                    let (dfs, s) = Dfs::format(daos.clone(), 0, cid, dfs_opts).expect("dfs");
                    exec(sched, s);
                    let rt = H5Runtime::new(sched, spec.client_nodes, cal);
                    let mount = DfuseMount::mount(dfs, sched, DfuseOpts::with_interception());
                    IorBackend::Hdf5Posix {
                        rt,
                        fs: Box::new(mount),
                    }
                }
                Scenario::IorHdf5Daos => {
                    let rt = H5Runtime::new(sched, spec.client_nodes, cal);
                    IorBackend::Hdf5Daos {
                        rt,
                        daos: daos.clone(),
                        oclass: spec.data_class,
                    }
                }
                _ => unreachable!(),
            };
            let mut ior = Ior::new(ior_cfg(spec.ops_per_proc), backend);
            two_phase(sched, &mut ior, |w| w.set_phase(Phase::Read))
        }
        Scenario::FieldIo => {
            let mut daos = DaosSystem::deploy(&topo, sched, spec.servers, DataMode::Sized);
            let (cid, s) = daos.cont_create(0, ContainerProps::default());
            exec(sched, s);
            let daos = Rc::new(RefCell::new(daos));
            let (mut fio, s) = FieldIo::new(daos, 0, cid).expect("fieldio");
            exec(sched, s);
            // paper: S1 Arrays unless the spec overrides for redundancy
            fio.set_array_class(narrow_class(spec.data_class, ObjectClass::S1));
            fio.size_check_on_read = spec.fieldio_size_check;
            let mut wl = FieldIoWorkload::new(
                fio,
                procs,
                spec.client_nodes,
                spec.ops_per_proc,
                spec.transfer,
            );
            two_phase(sched, &mut wl, |w| w.phase = Phase::Read)
        }
        Scenario::FdbDaos => {
            let mut daos = DaosSystem::deploy(&topo, sched, spec.servers, DataMode::Sized);
            let (cid, s) = daos.cont_create(0, ContainerProps::default());
            exec(sched, s);
            let daos = Rc::new(RefCell::new(daos));
            // paper: S1 for both Arrays and Key-Values in fdb-hammer
            let array_class = narrow_class(spec.data_class, ObjectClass::S1);
            let kv_class = narrow_class(spec.meta_class, ObjectClass::S1);
            let (fdb, s) = FdbDaos::new(daos, 0, cid, array_class, kv_class).expect("fdb");
            exec(sched, s);
            run_fdb(sched, fdb, spec)
        }
        Scenario::IorLustre => {
            let fs = LustreSystem::deploy(
                &topo,
                sched,
                spec.servers,
                LustreDataMode::Sized,
                StripeOpts {
                    count: 8,
                    size: 1 << 20,
                },
            );
            let mut ior = Ior::new(ior_cfg(spec.ops_per_proc), IorBackend::Posix(Box::new(fs)));
            two_phase(sched, &mut ior, |w| w.set_phase(Phase::Read))
        }
        Scenario::FdbLustre => {
            let fs = LustreSystem::deploy(
                &topo,
                sched,
                spec.servers,
                LustreDataMode::Sized,
                // the paper's fdb runs: stripe over 8 OSTs, 8 MiB stripes
                StripeOpts {
                    count: 8,
                    size: 8 << 20,
                },
            );
            let fdb = FdbPosix::new(fs, cal.fdb_flush_bytes).expect("fdb");
            run_fdb(sched, fdb, spec)
        }
        Scenario::IorCeph => {
            let ceph = CephSystem::deploy(
                &topo,
                sched,
                spec.servers,
                CephDataMode::Sized,
                CephPoolOpts {
                    pg_num: spec.pg_num,
                    replicas: 1,
                    ec: None,
                },
            )
            .expect("ceph");
            // per-process objects are capped at 132 MiB: the paper runs
            // only 100 × 1 MiB ops per process
            let ops = spec.ops_per_proc.min(100);
            let mut ior = Ior::new(ior_cfg(ops), IorBackend::Rados(ceph));
            two_phase(sched, &mut ior, |w| w.set_phase(Phase::Read))
        }
        Scenario::FdbCeph => {
            let ceph = CephSystem::deploy(
                &topo,
                sched,
                spec.servers,
                CephDataMode::Sized,
                CephPoolOpts {
                    pg_num: spec.pg_num,
                    replicas: 1,
                    ec: None,
                },
            )
            .expect("ceph");
            let fdb = FdbCeph::new(ceph);
            run_fdb(sched, fdb, spec)
        }
    }
}

/// fdb uses `S1` wherever the spec asks for the generic `SX` default;
/// explicit redundancy classes pass through.
fn narrow_class(spec_class: ObjectClass, fdb_default: ObjectClass) -> ObjectClass {
    if spec_class == ObjectClass::SX {
        fdb_default
    } else {
        spec_class
    }
}

/// Drive write phase, snapshot the monitor, switch to read, drive read.
fn two_phase<W: cluster::bench::ProcWorkload>(
    sched: &mut Scheduler,
    wl: &mut W,
    to_read: impl FnOnce(&mut W),
) -> (RunResult, Vec<f64>) {
    let write = run_phase(sched, wl);
    let mid = sched.monitor().snapshot(sched.resource_count());
    to_read(wl);
    let read = run_phase(sched, wl);
    (RunResult { write, read }, mid)
}

fn run_fdb<B: fdb_sim::Fdb>(
    sched: &mut Scheduler,
    fdb: B,
    spec: &RunSpec,
) -> (RunResult, Vec<f64>) {
    let mut wl = FdbWorkload::new(
        fdb,
        spec.procs(),
        spec.client_nodes,
        spec.ops_per_proc,
        spec.transfer,
    );
    two_phase(sched, &mut wl, |w| w.phase = Phase::Read)
}

/// Repetition statistics of one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct PointStats {
    /// Write bandwidth (bytes/s).
    pub write_bw: Stats,
    /// Read bandwidth (bytes/s).
    pub read_bw: Stats,
    /// Write operation rate (ops/s).
    pub write_iops: Stats,
    /// Read operation rate (ops/s).
    pub read_iops: Stats,
}

/// Run a scenario `reps` times (the paper uses 3) with per-repetition
/// calibration perturbation, and aggregate.
pub fn run_reps(spec: &RunSpec, scen: Scenario, base: &Calibration, reps: usize) -> PointStats {
    let mut wbw = Vec::with_capacity(reps);
    let mut rbw = Vec::with_capacity(reps);
    let mut wio = Vec::with_capacity(reps);
    let mut rio = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut rng = SplitMix64::new(spec.seed ^ (0x9e37 + rep as u64 * 7919));
        let cal = base.perturb(&mut rng);
        let r = run_scenario(spec, scen, &cal);
        wbw.push(r.write.bandwidth());
        rbw.push(r.read.bandwidth());
        wio.push(r.write.iops());
        rio.push(r.read.iops());
    }
    PointStats {
        write_bw: Stats::from(&wbw),
        read_bw: Stats::from(&rbw),
        write_iops: Stats::from(&wio),
        read_iops: Stats::from(&rio),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::GIB;

    #[test]
    fn auto_ops_bounds() {
        assert_eq!(auto_ops(1), 256);
        assert_eq!(auto_ops(4096), 24);
        assert!(auto_ops(512) >= 24);
    }

    #[test]
    fn small_ior_daos_run_is_sane() {
        let mut spec = RunSpec::new(2, 2, 8);
        spec.ops_per_proc = 24;
        let r = run_scenario(&spec, Scenario::IorDaos, &Calibration::default());
        let w = r.write.bandwidth() / GIB;
        let rd = r.read.bandwidth() / GIB;
        assert!(w > 1.0 && w <= 2.0 * 3.86, "write {w} GiB/s");
        assert!(rd > w, "read {rd} should beat write {w}");
    }

    #[test]
    fn reps_produce_spread() {
        let mut spec = RunSpec::new(1, 1, 4);
        spec.ops_per_proc = 16;
        let p = run_reps(&spec, Scenario::IorDaos, &Calibration::default(), 3);
        assert_eq!(p.write_bw.n, 3);
        assert!(p.write_bw.mean > 0.0);
        assert!(
            p.write_bw.rel_std() < 0.2,
            "spread {}",
            p.write_bw.rel_std()
        );
        assert!(p.write_bw.std > 0.0, "perturbation must create spread");
    }
}

/// Which mount an mdtest run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdStore {
    /// DFUSE over DAOS (distributed metadata).
    Dfuse,
    /// Lustre (single MDS).
    Lustre,
}

/// Run the mdtest metadata benchmark: returns (create, stat, remove)
/// phase results.  Backs the paper's C4 metadata-performance claim with
/// the IO500-style workload it cites.
pub fn run_mdtest(spec: &RunSpec, store: MdStore, cal: &Calibration) -> [PhaseResult; 3] {
    use ior_bench::{MdPhase, Mdtest, MdtestConfig};
    let mut sched = make_sched(spec, false);
    // metadata ops are small: use the tight quantum
    sched.set_coalescing(2_000);
    let cspec = ClusterSpec::new(spec.servers, spec.client_nodes).with_cal(cal.clone());
    let topo = cspec.build(&mut sched);
    let fs: Box<dyn cluster::posix::PosixFs> = match store {
        MdStore::Dfuse => {
            let mut daos = DaosSystem::deploy(&topo, &mut sched, spec.servers, DataMode::Sized);
            let (cid, s) = daos.cont_create(0, ContainerProps::default());
            exec(&mut sched, s);
            let daos = Rc::new(RefCell::new(daos));
            let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).expect("dfs");
            exec(&mut sched, s);
            // mdtest runs use the kernel dentry cache (IO500 practice)
            let opts = DfuseOpts {
                metadata_caching: true,
                ..Default::default()
            };
            Box::new(DfuseMount::mount(dfs, &mut sched, opts))
        }
        MdStore::Lustre => Box::new(LustreSystem::deploy(
            &topo,
            &mut sched,
            spec.servers,
            LustreDataMode::Sized,
            StripeOpts::default(),
        )),
    };
    let mut md = Mdtest::new(
        MdtestConfig::new(spec.procs(), spec.client_nodes, spec.ops_per_proc),
        fs,
    );
    let create = run_phase(&mut sched, &mut md);
    md.set_phase(MdPhase::Stat);
    let stat = run_phase(&mut sched, &mut md);
    md.set_phase(MdPhase::Remove);
    let remove = run_phase(&mut sched, &mut md);
    [create, stat, remove]
}
