//! # benchkit — the paper-reproduction harness
//!
//! Drives the benchmark workloads over the simulated deployments and
//! regenerates every table and figure of the paper:
//!
//! * [`driver`] — runs a [`cluster::bench::ProcWorkload`] phase and
//!   applies the paper's bandwidth definition (first-op-start to
//!   last-op-end);
//! * [`workloads`] — Field I/O and fdb-hammer process adapters;
//! * [`scenarios`] — builders for every benchmark × interface × store
//!   combination, with three-repetition statistics;
//! * [`determinism`] — the replay harness: every scenario twice from
//!   fresh state, asserting identical digests and bandwidths;
//! * [`figures`] — the per-figure sweeps (Fig. 1–9 plus the §III-A
//!   hardware table and the §III-E/F IOR text results);
//! * [`report`] — rendering to aligned text tables and CSV;
//! * [`tracing`] — span-traced runs: Chrome `trace_event` JSON
//!   (Perfetto-loadable) and critical-path attribution exports.

pub mod chaos;
pub mod determinism;
pub mod driver;
pub mod faulted;
pub mod figures;
pub mod integrity;
pub mod rebalance;
pub mod report;
pub mod runreport;
pub mod scaleout;
pub mod scenarios;
pub mod stats;
pub mod tracing;
pub mod verdict;
pub mod workloads;

pub use chaos::{
    chaos_space, default_chaos_spec, engine_space, parse_schedule, replay_archived, run_chaos_case,
    run_chaos_swarm, run_engine_case, run_engine_swarm, run_planned_case, schedule_json,
    shrink_failing, ArchivedSchedule, ChaosVerdict, SwarmReport,
};
pub use determinism::{replay_all, replay_scenario, ScenarioReplay};
pub use driver::{run_phase, PhaseResult};
pub use faulted::{
    default_faulted_spec, replay_faulted, run_faulted, run_faulted_traced, run_faulted_with,
    FaultedOpts, FaultedReplay, FaultedReport, FaultedScenario, PlanSource,
};
pub use figures::{Figure, Point, Series};
pub use integrity::{
    default_integrity_spec, integrity_case_ok, integrity_plan, render_integrity_json,
    replay_archived_integrity, run_integrity_case, run_integrity_swarm, run_planned_integrity_case,
    shrink_failing_integrity, IntegrityScenario, IntegrityVerdict,
};
pub use rebalance::{
    default_rebalance_spec, rebalance_space, replay_archived_rebalance, run_planned_rebalance_case,
    run_rebalance_case, run_rebalance_swarm, run_rebalance_with, shrink_failing_rebalance,
    RebalanceOpts, RebalanceRunReport, RebalanceScenario,
};
pub use runreport::{
    default_slo_rules, faulted_slo_rules, report_chaos_case, report_faulted, report_rebalance,
    run_reported, LatencyRow, ReportedRun, ResourceReport, RunReport, RUN_REPORT_WINDOW_NS,
};
pub use scaleout::{run_scaleout, run_scaleout_with, ScaleoutConfig, ScaleoutReport, ScaleoutRung};
pub use scenarios::{
    analyze_scenario, auto_ops, run_reps, run_scenario, run_scenario_chaos, run_scenario_digest,
    PointStats, ResourceUse, RunResult, RunSpec, Scenario,
};
pub use stats::Stats;
pub use tracing::{trace_scenario, SpanExports, TracedRun};
pub use verdict::{evaluate, Verdict};
