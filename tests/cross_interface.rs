//! Cross-interface integration: data written through one interface is
//! visible through the others, and every store round-trips real bytes.

use cluster::posix::PosixFs;
use cluster::{ClusterSpec, Payload};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use daos_dfs::{Dfs, DfsOpts};
use daos_dfuse::{DfuseMount, DfuseOpts};
use fdb_sim::{Fdb, FdbCeph, FdbDaos, FdbPosix, FieldKey};
use simkit::{run, OpId, Scheduler, SimTime, SplitMix64, Step, World};
use std::cell::RefCell;
use std::rc::Rc;

struct Done(SimTime);
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn exec(sched: &mut Scheduler, step: Step) {
    sched.submit(step, OpId(0));
    run(sched, &mut Done(SimTime::ZERO));
}

fn rand_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn dfuse_write_visible_through_libdaos() {
    // Write through the full POSIX stack (dfuse -> dfs -> daos), read the
    // backing Array straight through libdaos.
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos));
    let (dfs, s) = Dfs::format(daos.clone(), 0, cid, DfsOpts::default()).unwrap();
    exec(&mut sched, s);
    let mut mount = DfuseMount::mount(dfs, &mut sched, DfuseOpts::default());

    let data = rand_bytes(1, 300_000);
    let (f, s) = mount.open(0, "/through-the-stack", true).unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        mount.write(0, f, 0, Payload::Bytes(data.clone())).unwrap(),
    );

    let oid = mount.dfs().file_object(f).unwrap();
    let (raw, s) = daos
        .borrow_mut()
        .array_read(0, cid, oid, 0, data.len() as u64)
        .unwrap();
    exec(&mut sched, s);
    assert_eq!(raw.bytes().unwrap(), &data[..]);
}

#[test]
fn libdaos_write_visible_through_dfs() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos));
    let (mut dfs, s) = Dfs::format(daos.clone(), 0, cid, DfsOpts::default()).unwrap();
    exec(&mut sched, s);

    let data = rand_bytes(2, 64_000);
    let (f, s) = dfs.open(0, "/native-written", true).unwrap();
    exec(&mut sched, s);
    let oid = dfs.file_object(f).unwrap();
    // write through the raw object API
    let s = daos
        .borrow_mut()
        .array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
        .unwrap();
    exec(&mut sched, s);
    // read through the file interface
    let (got, s) = dfs.read(0, f, 0, data.len() as u64).unwrap();
    exec(&mut sched, s);
    assert_eq!(got.bytes().unwrap(), &data[..]);
    let (st, s) = dfs.fstat(0, f).unwrap();
    exec(&mut sched, s);
    assert_eq!(st.size, data.len() as u64);
}

#[test]
fn fdb_round_trips_on_all_three_stores() {
    let field = rand_bytes(3, 150_000);
    let key = FieldKey::sequence(0, 0);

    // DAOS backend
    {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (mut fdb, s) = FdbDaos::new(daos, 0, cid, ObjectClass::S1, ObjectClass::S1).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            fdb.archive(0, 0, &key, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        let (got, s) = fdb.retrieve(0, 0, &key).unwrap();
        exec(&mut sched, s);
        assert_eq!(got.bytes().unwrap(), &field[..], "daos backend");
    }

    // Lustre backend
    {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let fs = lustre_sim::LustreSystem::deploy(
            &topo,
            &mut sched,
            2,
            lustre_sim::LustreDataMode::Full,
            lustre_sim::StripeOpts {
                count: 4,
                size: 1 << 20,
            },
        );
        let mut fdb = FdbPosix::new(fs, (1u64 << 20) as f64).unwrap();
        exec(
            &mut sched,
            fdb.archive(0, 0, &key, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        exec(&mut sched, fdb.flush(0, 0).unwrap());
        let (got, s) = fdb.retrieve(0, 0, &key).unwrap();
        exec(&mut sched, s);
        // the posix backend buffers real bytes and flushes them through
        // the Lustre file model
        assert_eq!(got.bytes().unwrap(), &field[..], "lustre backend bytes");
    }

    // Ceph backend
    {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let ceph = ceph_sim::CephSystem::deploy(
            &topo,
            &mut sched,
            2,
            ceph_sim::CephDataMode::Full,
            ceph_sim::CephPoolOpts::default(),
        )
        .unwrap();
        let mut fdb = FdbCeph::new(ceph);
        exec(
            &mut sched,
            fdb.archive(0, 0, &key, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        let (got, s) = fdb.retrieve(0, 0, &key).unwrap();
        exec(&mut sched, s);
        assert_eq!(got.bytes().unwrap(), &field[..], "ceph backend");
    }
}

#[test]
fn hdf5_vfd_on_lustre_round_trips() {
    // the HDF5 POSIX driver is mount-agnostic: drive it over Lustre too
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 1).build(&mut sched);
    let mut fs = lustre_sim::LustreSystem::deploy(
        &topo,
        &mut sched,
        2,
        lustre_sim::LustreDataMode::Full,
        lustre_sim::StripeOpts::default(),
    );
    let rt = hdf5_lite::H5Runtime::new(&mut sched, 1, &topo.cal);
    let (mut h5, s) = hdf5_lite::H5PosixFile::create(&rt, &mut fs, 0, "/sim.h5").unwrap();
    exec(&mut sched, s);
    let data = rand_bytes(4, 500_000);
    let s = h5
        .dataset_write(&rt, &mut fs, "u10", Payload::Bytes(data.clone()))
        .unwrap();
    exec(&mut sched, s);
    let (got, s) = h5.dataset_read(&rt, &mut fs, "u10").unwrap();
    exec(&mut sched, s);
    assert_eq!(got.bytes().unwrap(), &data[..]);
}

#[test]
fn dfs_namespace_survives_heavy_mutation() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos));
    let (mut dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
    exec(&mut sched, s);

    exec(&mut sched, dfs.mkdir(0, "/a").unwrap());
    exec(&mut sched, dfs.mkdir(0, "/a/b").unwrap());
    for i in 0..20 {
        let (f, s) = dfs.open(0, &format!("/a/b/f{i}"), true).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            dfs.write(0, f, 0, Payload::Bytes(vec![i as u8; 100]))
                .unwrap(),
        );
        exec(&mut sched, dfs.close(0, f).unwrap());
    }
    // delete every other file, rename the rest
    for i in (0..20).step_by(2) {
        exec(&mut sched, dfs.unlink(0, &format!("/a/b/f{i}")).unwrap());
    }
    for i in (1..20).step_by(2) {
        exec(
            &mut sched,
            dfs.rename(0, &format!("/a/b/f{i}"), &format!("/a/g{i}"))
                .unwrap(),
        );
    }
    let (names, s) = dfs.readdir(0, "/a/b").unwrap();
    exec(&mut sched, s);
    assert!(names.is_empty(), "all moved or deleted: {names:?}");
    let (names, s) = dfs.readdir(0, "/a").unwrap();
    exec(&mut sched, s);
    assert_eq!(names.len(), 11, "b + 10 renamed files");
    // contents intact after rename
    let (f, s) = dfs.open(0, "/a/g3", false).unwrap();
    exec(&mut sched, s);
    let (got, s) = dfs.read(0, f, 0, 100).unwrap();
    exec(&mut sched, s);
    assert_eq!(got.bytes().unwrap(), &[3u8; 100][..]);
}
