//! retry-taxonomy fixture, call-site side: remaps and laundering.

use errors::StoreError;

pub enum Class {
    Retriable,
    Fatal,
}

pub enum IoError {
    Busy,
}

/// Produces the terminal variant: a producer for the carrier analysis,
/// not a finding by itself.
pub fn read_block(ok: bool) -> Result<u32, StoreError> {
    if ok {
        Ok(1)
    } else {
        Err(StoreError::Lost)
    }
}

/// Remaps the terminal variant to the retriable classification: finding (b).
pub fn reclass(e: StoreError) -> Class {
    match e {
        StoreError::Lost => Class::Retriable,
        _ => Class::Fatal,
    }
}

/// Launders whatever `read_block` returned into a retriable class while a
/// terminal error can flow through it: finding (c).
pub fn fetch(ok: bool) -> Result<u32, Class> {
    read_block(ok).map_err(|_| Class::Retriable)
}

/// The same `map_err` shape, but only non-terminal errors can reach it:
/// clean.
pub fn fetch_local() -> Result<u32, Class> {
    busy().map_err(|_| Class::Retriable)
}

fn busy() -> Result<u32, IoError> {
    Err(IoError::Busy)
}
