//! 128-bit object identifiers.
//!
//! DAOS OIDs are 128 bits of which 96 are user-managed; the top 32 bits
//! are reserved for DAOS metadata, most importantly the encoded object
//! class.  This module reproduces that split.

use crate::class::ObjectClass;
use std::fmt;

/// A 128-bit object identifier: 32 reserved bits (object class and
/// flags) over 96 user bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    /// High 64 bits: `[class:16][flags:16][user_hi:32]`.
    pub hi: u64,
    /// Low 64 bits: user-managed.
    pub lo: u64,
}

/// Bit layout constants.
const CLASS_SHIFT: u32 = 48;
const FLAGS_SHIFT: u32 = 32;
const USER_HI_MASK: u64 = 0xffff_ffff;

/// Flag bit: object is a Key-Value store (otherwise an Array).
pub const FLAG_KV: u16 = 0x0001;

impl Oid {
    /// Encode an OID from 96 user bits and an object class.
    ///
    /// Panics if `user` exceeds 96 bits, mirroring `daos_obj_generate_oid`
    /// rejecting dirty reserved bits.
    pub fn encode(user: u128, class: ObjectClass, flags: u16) -> Oid {
        assert!(user >> 96 == 0, "user id must fit in 96 bits");
        let user_hi = ((user >> 64) as u64) & USER_HI_MASK;
        let hi =
            ((class.encode() as u64) << CLASS_SHIFT) | ((flags as u64) << FLAGS_SHIFT) | user_hi;
        Oid {
            hi,
            lo: user as u64,
        }
    }

    /// The object class encoded in the reserved bits.
    pub fn class(&self) -> Option<ObjectClass> {
        ObjectClass::decode((self.hi >> CLASS_SHIFT) as u16)
    }

    /// Reserved flag bits.
    pub fn flags(&self) -> u16 {
        (self.hi >> FLAGS_SHIFT) as u16
    }

    /// True when the object is a Key-Value store.
    pub fn is_kv(&self) -> bool {
        self.flags() & FLAG_KV != 0
    }

    /// The 96 user-managed bits.
    pub fn user_bits(&self) -> u128 {
        (((self.hi & USER_HI_MASK) as u128) << 64) | self.lo as u128
    }

    /// A well-mixed 64-bit hash of the full OID, used for placement.
    pub fn placement_hash(&self) -> u64 {
        // splitmix-style finaliser over both words
        let mut z = self.hi ^ self.lo.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}.{:016x}", self.hi, self.lo)
    }
}

/// Sequential OID allocator, one per container open in real DAOS; here a
/// plain counter that benchmarks use for unique object ids.
#[derive(Debug, Default, Clone)]
pub struct OidAllocator {
    next: u64,
}

impl OidAllocator {
    /// Fresh allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next OID with the given class/flags.
    pub fn next(&mut self, class: ObjectClass, flags: u16) -> Oid {
        let user = self.next as u128;
        self.next += 1;
        Oid::encode(user, class, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_preserves_user_bits() {
        let user: u128 = (0xdead_beef_u128 << 64) | 0x0123_4567_89ab_cdef;
        let oid = Oid::encode(user, ObjectClass::SX, 0);
        assert_eq!(oid.user_bits(), user);
        assert_eq!(oid.class(), Some(ObjectClass::SX));
        assert!(!oid.is_kv());
    }

    #[test]
    #[should_panic(expected = "96 bits")]
    fn reserved_bits_rejected() {
        Oid::encode(1u128 << 96, ObjectClass::S1, 0);
    }

    #[test]
    fn kv_flag() {
        let oid = Oid::encode(7, ObjectClass::RP_2, FLAG_KV);
        assert!(oid.is_kv());
        assert_eq!(oid.class(), Some(ObjectClass::RP_2));
    }

    #[test]
    fn allocator_produces_unique_increasing() {
        let mut a = OidAllocator::new();
        let o1 = a.next(ObjectClass::S1, 0);
        let o2 = a.next(ObjectClass::S1, 0);
        assert_ne!(o1, o2);
        assert!(o2.user_bits() > o1.user_bits());
    }

    #[test]
    fn placement_hash_spreads() {
        let mut a = OidAllocator::new();
        let mut buckets = [0u32; 16];
        for _ in 0..1600 {
            let oid = a.next(ObjectClass::SX, 0);
            buckets[(oid.placement_hash() % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((60..=140).contains(&b), "unbalanced: {buckets:?}");
        }
    }

    #[test]
    fn display_format() {
        let oid = Oid::encode(5, ObjectClass::S1, 0);
        let s = oid.to_string();
        assert!(s.contains('.'), "{s}");
        assert_eq!(s.len(), 33);
    }
}
