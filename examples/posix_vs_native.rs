//! The paper's central comparison in miniature: the same IOR-style
//! workload through all four DAOS interfaces — native libdaos Arrays,
//! libdfs files, a DFUSE mount, and DFUSE with the interception
//! library — on identical hardware.
//!
//! ```text
//! cargo run --release --example posix_vs_native
//! ```

use benchkit::scenarios::{run_scenario, RunSpec, Scenario};
use cluster::{Calibration, GIB};

fn main() {
    let cal = Calibration::default();
    let mut spec = RunSpec::new(8, 4, 16); // 8 servers, 4 client nodes x 16 procs
    spec.ops_per_proc = 48;

    println!(
        "IOR-style workload: {} processes x {} x 1 MiB ops, 8-server pool\n",
        spec.procs(),
        spec.ops_per_proc
    );
    println!(
        "{:<16} {:>14} {:>14}",
        "interface", "write GiB/s", "read GiB/s"
    );
    for (name, scen) in [
        ("libdaos", Scenario::IorDaos),
        ("libdfs", Scenario::IorDfs),
        ("DFUSE", Scenario::IorDfuse),
        ("DFUSE+IL", Scenario::IorDfuseIl),
    ] {
        let r = run_scenario(&spec, scen, &cal);
        println!(
            "{name:<16} {:>14.2} {:>14.2}",
            r.write.bandwidth() / GIB,
            r.read.bandwidth() / GIB
        );
    }
    println!(
        "\nAs in the paper: every interface saturates the same hardware for\n\
         1 MiB transfers; the differences are per-operation software costs\n\
         that only matter at small I/O (see `repro fig2`)."
    );
}
