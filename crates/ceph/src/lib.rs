//! # ceph-sim — a Ceph-like object store (librados model)
//!
//! The second baseline of the paper (§III-F): OSDs over NVMe devices,
//! placement groups with stable hashing, primary-copy replication, WAL
//! write amplification and per-OSD processing costs.  Objects are not
//! sharded, the property that separates Ceph from DAOS for large
//! per-process objects in the paper's IOR runs.

pub mod rados;

pub use rados::{CephDataMode, CephPoolOpts, CephSystem, RadosError};
