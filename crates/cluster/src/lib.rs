//! # cluster — hardware models for the simulated test system
//!
//! This crate reproduces the paper's test system (§II-B) as simulation
//! resources:
//!
//! * **server nodes** modelled on GCP `n2-custom-36-153600`: 36 logical
//!   cores, 150 GiB DRAM, 16 local NVMe SSDs, 50 Gbps NIC;
//! * **client nodes** modelled on `n2-highcpu-32`: 32 logical cores,
//!   32 GiB DRAM, 50 Gbps NIC.
//!
//! [`ClusterSpec::build`] instantiates the hardware as [`simkit`]
//! resources (per-device NVMe write/read bandwidth, per-node full-duplex
//! NIC capacity) and returns a [`Topology`] handle that the storage-system
//! crates use to route transfers.  Software services (DAOS targets, the
//! Lustre MDS, Ceph OSDs, FUSE request pumps, …) are *not* created here —
//! each storage crate layers its own service resources on top of this
//! hardware, mirroring how the real systems are deployed onto identical
//! machines.
//!
//! All tunable constants live in [`calibration::Calibration`], documented
//! against the paper's measurements.

pub mod bench;
pub mod calibration;
pub mod microbench;
pub mod payload;
pub mod posix;
pub mod spec;
pub mod topology;
pub mod units;

pub use calibration::Calibration;
pub use payload::{Payload, ReadPayload};
pub use spec::{ClientSpec, ClusterSpec, ServerSpec};
pub use topology::{ClientNode, ServerNode, Topology};
pub use units::{GIB, KIB, MIB};
