//! Fixture-workspace tests for the stage-3 cost pass.
//!
//! Mirrors `flow_fixtures.rs`: each fixture under `tests/fixtures/` is a
//! miniature workspace layout that is analyzed — never compiled — so
//! every cost analysis demonstrates at least one true positive and one
//! clean negative on stable input.  The CLI tests drive the built
//! binary end-to-end to cover `--deny`, baselines and the index cache.

use std::path::PathBuf;
use std::process::Command;

use simlint::{cost, flow};
use simlint::{Finding, Severity};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze_fixture(name: &str) -> Vec<Finding> {
    cost::analyze_tree(&fixture_root(name)).expect("fixture tree readable")
}

// ---------------------------------------------------------------------------
// hot-alloc
// ---------------------------------------------------------------------------

#[test]
fn hot_alloc_true_positive_is_error_in_engine_crate() {
    let findings = analyze_fixture("hot_alloc");
    let hit = findings
        .iter()
        .find(|f| f.rule == "hot-alloc" && f.message.contains("Engine::drain_batch"))
        .expect("per-event allocation in drain_batch flagged");
    assert_eq!(hit.severity, Severity::Error, "{hit:?}");
    assert!(hit.path.starts_with("crates/simkit/"), "{hit:?}");
    assert!(hit.message.contains("Engine::pump"), "names the hot root");
}

#[test]
fn hot_alloc_is_warn_outside_engine_crate() {
    let findings = analyze_fixture("hot_alloc");
    let hit = findings
        .iter()
        .find(|f| f.rule == "hot-alloc" && f.message.contains("`stamp`"))
        .expect("reached allocation in the sibling crate flagged");
    assert_eq!(hit.severity, Severity::Warn, "{hit:?}");
    assert!(hit.path.starts_with("crates/shim/"), "{hit:?}");
}

#[test]
fn hot_alloc_amortized_and_cold_functions_stay_clean() {
    let findings = analyze_fixture("hot_alloc");
    // The amortized setup is exempt; the cold reporter is unreachable.
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("ensure_tables")),
        "{findings:#?}"
    );
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("Engine::report")),
        "{findings:#?}"
    );
}

// ---------------------------------------------------------------------------
// double-lookup
// ---------------------------------------------------------------------------

#[test]
fn double_lookup_true_positives() {
    let findings = analyze_fixture("double_lookup");
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "double-lookup")
        .collect();
    // Probe + insert on the same key suggests the entry API.
    assert!(
        hits.iter()
            .any(|f| f.message.contains("Store::upsert") && f.message.contains("entry")),
        "{hits:#?}"
    );
    // The same key fetched twice.
    assert!(
        hits.iter().any(|f| f.message.contains("Store::double_get")),
        "{hits:#?}"
    );
}

#[test]
fn double_lookup_clean_negatives() {
    let findings = analyze_fixture("double_lookup");
    // Distinct keys and the entry API stay silent.
    assert!(
        findings.iter().all(|f| !f.message.contains("Store::pair")),
        "{findings:#?}"
    );
    assert!(
        findings.iter().all(|f| !f.message.contains("Store::bump")),
        "{findings:#?}"
    );
}

// ---------------------------------------------------------------------------
// hot-state-scan
// ---------------------------------------------------------------------------

#[test]
fn hot_state_scan_true_positive_allow_and_unreached_negatives() {
    let findings = analyze_fixture("hot_scan");
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "hot-state-scan")
        .collect();
    assert!(
        hits.iter().any(|f| f.message.contains("Flows::settle")),
        "{hits:#?}"
    );
    // The allow-carrying scan and the unreached one stay silent.
    assert!(
        hits.iter().all(|f| !f.message.contains("Flows::rebalance")),
        "{hits:#?}"
    );
    assert!(
        hits.iter().all(|f| !f.message.contains("Flows::audit")),
        "{hits:#?}"
    );
}

// ---------------------------------------------------------------------------
// clean workspace
// ---------------------------------------------------------------------------

#[test]
fn clean_fixture_has_no_cost_findings() {
    let findings = analyze_fixture("clean");
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------------
// index cache round-trip on a fixture tree
// ---------------------------------------------------------------------------

#[test]
fn index_round_trip_preserves_cost_findings() {
    let root = fixture_root("hot_alloc");
    let sources = flow::read_sources(&root).expect("fixture sources");
    let index = flow::build_index(&sources);
    let restored = flow::index_from_json(&flow::index_to_json(&index)).expect("round trip");
    assert_eq!(index, restored);
    assert_eq!(
        cost::analyze(&index, &sources),
        cost::analyze(&restored, &sources)
    );
}

// ---------------------------------------------------------------------------
// CLI end-to-end: --deny, --baseline, --save-index/--load-index
// ---------------------------------------------------------------------------

fn simlint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simlint-cost-{}-{name}", std::process::id()))
}

#[test]
fn cli_deny_fails_on_hot_alloc_fixture_and_baseline_accepts_it() {
    let root = fixture_root("hot_alloc");

    // The engine-crate hot-alloc error fails --deny.
    let status = simlint_cmd()
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("run simlint");
    assert!(!status.status.success());

    // Recording it as the baseline makes the same tree pass.
    let baseline = scratch("baseline.json");
    let status = simlint_cmd()
        .args(["--root"])
        .arg(&root)
        .args(["--write-baseline"])
        .arg(&baseline)
        .output()
        .expect("write baseline");
    assert!(status.status.success());
    let status = simlint_cmd()
        .args(["--deny", "--root"])
        .arg(&root)
        .args(["--baseline"])
        .arg(&baseline)
        .output()
        .expect("run with baseline");
    assert!(
        status.status.success(),
        "baselined errors must not fail --deny"
    );
    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn cli_index_cache_reproduces_cost_findings() {
    let root = fixture_root("hot_alloc");
    let index = scratch("index.json");

    let first = simlint_cmd()
        .args(["--json", "--root"])
        .arg(&root)
        .args(["--save-index"])
        .arg(&index)
        .output()
        .expect("save index");
    let second = simlint_cmd()
        .args(["--json", "--root"])
        .arg(&root)
        .args(["--load-index"])
        .arg(&index)
        .output()
        .expect("load index");
    assert_eq!(first.stdout, second.stdout);
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("hot-alloc"), "{stdout}");
    let _ = std::fs::remove_file(&index);
}
