//! Durability ledger + invariant oracle reports.
//!
//! The chaos swarm's correctness contract is simple to state: **every
//! acknowledged write is still readable — with the right content —
//! after crashes, brownouts and rebuild**.  The
//! [`DurabilityLedger`] is the bookkeeping half of that contract: a
//! shadow record of every acknowledged mutation (KV puts/removes, Array
//! extent writes, punches), updated by [`crate::DaosSystem`] at the
//! exact point an operation commits.  After the fault schedule has
//! played out and the pool is rebuilt, the verification half
//! (`DaosSystem::verify_durability` and friends) reads every ledger
//! entry back through the owning interface and files a [`Violation`]
//! for anything missing, wrong, or unservable.
//!
//! The ledger is **not** simulation state: it is an oracle's notebook,
//! disabled by default and never consulted by any data path, so
//! enabling it cannot change a run's schedule or its replay digest.
//! Array extents are kept non-overlapping (later writes trim earlier
//! ones, mirroring last-writer-wins byte semantics), so verification
//! reads exactly the bytes the application was last acknowledged for.

use crate::container::ContainerId;
use crate::oid::Oid;
use cluster::payload::Payload;
use std::collections::BTreeMap;

/// FNV-1a over a byte string: the content digest stored for acked
/// writes in Full data mode (64 bits: guards against accidents, not
/// adversaries — same stance as the replay digest).
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What the application was last acknowledged for at one ledger slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckedValue {
    /// Real bytes (Full data mode): verified by content.
    Bytes(Vec<u8>),
    /// Logical length only (Sized mode): verified by readability and
    /// reported length.
    Sized(u64),
}

impl AckedValue {
    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            AckedValue::Bytes(b) => b.len() as u64,
            AckedValue::Sized(n) => *n,
        }
    }

    /// True when the value is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // simlint::allow(hot-alloc) — the durability oracle snapshots acked bytes by design so later corruption is detectable
    fn from_payload(p: &Payload) -> AckedValue {
        match p {
            Payload::Bytes(b) => AckedValue::Bytes(b.clone()),
            Payload::Sized(n) => AckedValue::Sized(*n),
        }
    }
}

/// Shadow record of acknowledged mutations, keyed the way verification
/// reads them back: KV entries by `(container, object, key)`, Array
/// data by `(container, object)` → non-overlapping extents.
#[derive(Debug, Clone, Default)]
pub struct DurabilityLedger {
    kv: BTreeMap<(ContainerId, Oid, Vec<u8>), AckedValue>,
    extents: BTreeMap<(ContainerId, Oid), BTreeMap<u64, AckedValue>>,
}

impl DurabilityLedger {
    /// Empty ledger.
    pub fn new() -> DurabilityLedger {
        DurabilityLedger::default()
    }

    /// Record an acknowledged `kv_put`.
    // simlint::allow(hot-alloc) — the durability oracle owns the acked key; snapshotting is its purpose
    pub fn record_kv_put(&mut self, cid: ContainerId, oid: Oid, key: &[u8], value: &Payload) {
        self.kv
            .insert((cid, oid, key.to_vec()), AckedValue::from_payload(value));
    }

    /// Record an acknowledged `kv_remove`.
    // simlint::allow(hot-alloc) — the durability oracle owns the removed key; snapshotting is its purpose
    pub fn record_kv_remove(&mut self, cid: ContainerId, oid: Oid, key: &[u8]) {
        self.kv.remove(&(cid, oid, key.to_vec()));
    }

    /// Record an acknowledged `array_write` of `payload` at `offset`,
    /// trimming any previously-acked extents it overlaps
    /// (last-writer-wins, byte for byte).
    pub fn record_array_write(
        &mut self,
        cid: ContainerId,
        oid: Oid,
        offset: u64,
        payload: &Payload,
    ) {
        let len = payload.len();
        if len == 0 {
            return;
        }
        let map = self.extents.entry((cid, oid)).or_default();
        Self::carve(map, offset, len);
        map.insert(offset, AckedValue::from_payload(payload));
    }

    /// Remove `[offset, offset + len)` from an extent map, splitting
    /// extents that straddle the boundary.
    // simlint::allow(hot-alloc) — hole-punching clones the surviving extent tails; runs per overlapping write, bounded by overlap count
    fn carve(map: &mut BTreeMap<u64, AckedValue>, offset: u64, len: u64) {
        let end = offset + len;
        // Candidate extents: the last one starting at or before `offset`
        // plus everything starting inside the carved range.
        let mut touched: Vec<u64> = map
            .range(..=offset)
            .next_back()
            .map(|(&s, _)| s)
            .into_iter()
            .chain(map.range(offset..end).map(|(&s, _)| s))
            .collect();
        touched.dedup();
        for start in touched {
            let Some(v) = map.get(&start) else { continue };
            let v_end = start + v.len();
            if v_end <= offset || start >= end {
                continue; // no overlap after all
            }
            let v = map.remove(&start).unwrap_or(AckedValue::Sized(0));
            // Left remainder: [start, offset)
            if start < offset {
                let keep = (offset - start) as usize;
                let left = match &v {
                    AckedValue::Bytes(b) => AckedValue::Bytes(b[..keep.min(b.len())].to_vec()),
                    AckedValue::Sized(_) => AckedValue::Sized(keep as u64),
                };
                map.insert(start, left);
            }
            // Right remainder: [end, v_end)
            if v_end > end {
                let skip = (end - start) as usize;
                let right = match &v {
                    AckedValue::Bytes(b) => AckedValue::Bytes(b[skip.min(b.len())..].to_vec()),
                    AckedValue::Sized(_) => AckedValue::Sized(v_end - end),
                };
                map.insert(end, right);
            }
        }
    }

    /// Record an acknowledged `obj_punch`: every acked entry of the
    /// object is forgotten.
    pub fn record_punch(&mut self, cid: ContainerId, oid: Oid) {
        self.kv.retain(|(c, o, _), _| !(*c == cid && *o == oid));
        self.extents.remove(&(cid, oid));
    }

    /// Record an acknowledged `array_set_size` truncation to `size`.
    pub fn record_truncate(&mut self, cid: ContainerId, oid: Oid, size: u64) {
        if let Some(map) = self.extents.get_mut(&(cid, oid)) {
            let tail = map.last_key_value().map(|(&s, v)| s + v.len()).unwrap_or(0);
            if tail > size {
                Self::carve(map, size, tail - size);
            }
        }
    }

    /// Record a container destroy: all its acked entries are forgotten.
    pub fn record_cont_destroy(&mut self, cid: ContainerId) {
        self.kv.retain(|(c, _, _), _| *c != cid);
        self.extents.retain(|(c, _), _| *c != cid);
    }

    /// Acked KV entries, in key order.
    pub fn kv_entries(&self) -> impl Iterator<Item = (&(ContainerId, Oid, Vec<u8>), &AckedValue)> {
        self.kv.iter()
    }

    /// Acked Array extents per object, in offset order.
    pub fn extent_entries(
        &self,
    ) -> impl Iterator<Item = (&(ContainerId, Oid), &BTreeMap<u64, AckedValue>)> {
        self.extents.iter()
    }

    /// Total acked entries (KV entries + extents).
    pub fn len(&self) -> usize {
        self.kv.len() + self.extents.values().map(|m| m.len()).sum::<usize>()
    }

    /// True when nothing has been acknowledged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Oracle reports
// ---------------------------------------------------------------------------

/// Which invariant a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// An acknowledged write is gone or unservable.
    AckedDurability,
    /// An acknowledged write reads back with the wrong content
    /// (replication fail-over or EC reconstruction returned bad bytes).
    Reconstruction,
    /// An acknowledged write is silently wrong or unservable because of
    /// bit-rot beyond what the class redundancy can repair — bytes
    /// *corrupted*, as distinct from bytes *lost*.
    Corruption,
    /// A shard group still has down members after rebuild (the pool
    /// never restored full redundancy).
    RedundancyRestored,
    /// Field I/O's KV index disagrees with its Array data.
    FieldIoConsistency,
    /// A DFS inode is unreachable from the root.
    NamespaceConnectivity,
    /// Replaying the same schedule produced a different digest.
    Determinism,
}

impl OracleKind {
    /// Stable lowercase name (used in reports and swarm JSON).
    pub fn name(&self) -> &'static str {
        match self {
            OracleKind::AckedDurability => "acked_durability",
            OracleKind::Reconstruction => "reconstruction",
            OracleKind::Corruption => "corruption",
            OracleKind::RedundancyRestored => "redundancy_restored",
            OracleKind::FieldIoConsistency => "fieldio_consistency",
            OracleKind::NamespaceConnectivity => "namespace_connectivity",
            OracleKind::Determinism => "determinism",
        }
    }
}

/// One invariant violation, precise enough to act on without re-running.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant that failed.
    pub oracle: OracleKind,
    /// Where: human-readable locator (container/object/key or extent).
    pub subject: String,
    /// What went wrong (expected vs observed).
    pub detail: String,
}

/// Outcome of an oracle pass: what was checked and what failed.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// KV entries read back.
    pub checked_kv: usize,
    /// Array extents read back.
    pub checked_extents: usize,
    /// Shard groups inspected for redundancy.
    pub checked_groups: usize,
    /// Everything that failed.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// True when every checked invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another report into this one (summing coverage counters and
    /// concatenating violations).
    pub fn merge(&mut self, other: OracleReport) {
        self.checked_kv += other.checked_kv;
        self.checked_extents += other.checked_extents;
        self.checked_groups += other.checked_groups;
        self.violations.extend(other.violations);
    }

    /// Text rendering: a coverage line plus one line per violation.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "oracle pass: {} kv entries, {} extents, {} groups checked — {}",
            self.checked_kv,
            self.checked_extents,
            self.checked_groups,
            if self.ok() {
                "all invariants hold".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        );
        for v in &self.violations {
            let _ = writeln!(out, "  [{}] {}: {}", v.oracle.name(), v.subject, v.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid() -> ContainerId {
        ContainerId(0)
    }

    fn oid() -> Oid {
        Oid { hi: 0, lo: 1 }
    }

    #[test]
    fn kv_ledger_tracks_last_ack() {
        let mut l = DurabilityLedger::new();
        l.record_kv_put(cid(), oid(), b"k", &Payload::Bytes(vec![1]));
        l.record_kv_put(cid(), oid(), b"k", &Payload::Bytes(vec![2]));
        assert_eq!(l.len(), 1);
        let (_, v) = l.kv_entries().next().unwrap();
        assert_eq!(v, &AckedValue::Bytes(vec![2]));
        l.record_kv_remove(cid(), oid(), b"k");
        assert!(l.is_empty());
    }

    #[test]
    fn overlapping_extents_are_trimmed_last_writer_wins() {
        let mut l = DurabilityLedger::new();
        l.record_array_write(cid(), oid(), 0, &Payload::Bytes(vec![1; 100]));
        l.record_array_write(cid(), oid(), 40, &Payload::Bytes(vec![2; 20]));
        let (_, map) = l.extent_entries().next().unwrap();
        let spans: Vec<(u64, u64, u8)> = map
            .iter()
            .map(|(&s, v)| match v {
                AckedValue::Bytes(b) => (s, b.len() as u64, b[0]),
                AckedValue::Sized(n) => (s, *n, 0),
            })
            .collect();
        assert_eq!(spans, vec![(0, 40, 1), (40, 20, 2), (60, 40, 1)]);
    }

    #[test]
    fn carve_handles_full_cover_and_sized_extents() {
        let mut l = DurabilityLedger::new();
        l.record_array_write(cid(), oid(), 10, &Payload::Sized(30));
        l.record_array_write(cid(), oid(), 0, &Payload::Sized(100));
        let (_, map) = l.extent_entries().next().unwrap();
        assert_eq!(map.len(), 1, "the later write covers the earlier one");
        assert_eq!(map.get(&0), Some(&AckedValue::Sized(100)));
    }

    #[test]
    fn punch_and_destroy_forget_entries() {
        let mut l = DurabilityLedger::new();
        l.record_kv_put(cid(), oid(), b"a", &Payload::Sized(1));
        l.record_array_write(cid(), oid(), 0, &Payload::Sized(10));
        l.record_punch(cid(), oid());
        assert!(l.is_empty());
        l.record_kv_put(cid(), oid(), b"a", &Payload::Sized(1));
        l.record_cont_destroy(cid());
        assert!(l.is_empty());
    }

    #[test]
    fn truncate_trims_acked_tail() {
        let mut l = DurabilityLedger::new();
        l.record_array_write(cid(), oid(), 0, &Payload::Bytes(vec![7; 100]));
        l.record_truncate(cid(), oid(), 60);
        let (_, map) = l.extent_entries().next().unwrap();
        assert_eq!(map.get(&0), Some(&AckedValue::Bytes(vec![7; 60])));
    }

    #[test]
    fn content_digest_separates_contents() {
        assert_ne!(content_digest(b"abc"), content_digest(b"abd"));
        assert_ne!(content_digest(b""), content_digest(b"\0"));
        assert_eq!(content_digest(b"abc"), content_digest(b"abc"));
    }

    #[test]
    fn report_render_lists_violations() {
        let mut r = OracleReport {
            checked_kv: 3,
            ..OracleReport::default()
        };
        assert!(r.ok());
        r.violations.push(Violation {
            oracle: OracleKind::AckedDurability,
            subject: "cont 0 obj 1 key \"k\"".into(),
            detail: "acked 2 bytes, read NoSuchKey".into(),
        });
        assert!(!r.ok());
        let text = r.render();
        assert!(text.contains("acked_durability"));
        assert!(text.contains("1 violation"));
        let mut other = OracleReport::default();
        other.merge(r.clone());
        assert_eq!(other.violations.len(), 1);
        assert_eq!(other.checked_kv, 3);
    }
}
