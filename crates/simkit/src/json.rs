//! Minimal JSON reading/writing for schedule artifacts (std-only).
//!
//! The workspace bans external dependencies, so the chaos subsystem
//! carries its own JSON support: a recursive-descent parser into a small
//! [`Json`] value tree and a stable-order writer.  Numbers keep their
//! raw lexeme so `u64` values (simulated times, seeds, digests) round
//! trip without passing through `f64` — a 64-bit nanosecond timestamp
//! must come back bit-identical, not merely close.
//!
//! This is intentionally not a general-purpose JSON library: it accepts
//! the JSON this workspace writes (no `\uXXXX` surrogate pairs beyond
//! the BMP, no numbers JSON forbids) and is used for schedule files,
//! not untrusted input.

use std::fmt::Write as _;

/// A parsed JSON value.  Objects keep insertion order (the writer emits
/// fields in the order they were pushed, and the repo convention is a
/// stable field order everywhere).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw lexeme (parse on demand; see
    /// [`Json::as_u64`] / [`Json::as_f64`]).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a number value from a `u64` (exact).
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Build a number value from an `f64` using Rust's shortest
    /// round-trip formatting.
    pub fn num_f64(v: f64) -> Json {
        Json::Num(format!("{v}"))
    }

    /// The value as `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render to a compact JSON string (stable field order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: a message and the byte offset it was raised at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    // simlint::allow(hot-alloc) — error formatting on the parse-failure path only; JSON parsing serves config/report loading, never the event loop (hot reachability is a same-name call edge)
    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    // simlint::allow(hot-alloc) — error formatting on the parse-failure path only; JSON parsing serves config/report loading, never the event loop (hot reachability is a same-name call edge)
    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(Json::Num(lexeme.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged)
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    // simlint::allow(hot-alloc) — builds the parsed document; JSON parsing serves config/report loading, never the event loop (hot reachability is a same-name call edge)
    fn array(&mut self) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    // simlint::allow(hot-alloc) — builds the parsed document; JSON parsing serves config/report loading, never the event loop (hot reachability is a same-name call edge)
    fn object(&mut self) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-7", "3.25", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.render(), src);
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big), "must not round through f64");
    }

    #[test]
    fn f64_shortest_form_round_trips() {
        let x = 0.1f64 + 0.2f64;
        let v = Json::num_f64(x);
        let back = parse(&v.render()).unwrap();
        assert_eq!(back.as_f64(), Some(x));
    }

    #[test]
    fn nested_document_round_trips() {
        let src = r#"{"a":[1,2,{"b":"x\"y"}],"c":null,"d":{"e":false}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\"y")
        );
    }

    #[test]
    fn whitespace_tolerated_garbage_rejected() {
        assert!(parse("  { \"k\" : [ 1 , 2 ] }  ").is_ok());
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"k\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn escapes_render_and_parse() {
        let v = Json::Str("a\n\t\"\\\u{1}b".to_string());
        let s = v.render();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = Json::Obj(vec![
            ("z".into(), Json::num_u64(1)),
            ("a".into(), Json::num_u64(2)),
        ]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
