//! End-to-end integrity acceptance: seeded bit rot against replicated
//! and erasure-coded stores is detected and transparently repaired with
//! zero corrupt bytes served; the integrity swarm runs green over both
//! repairable races; and the planted rot-beyond-redundancy case fails
//! loudly as Corruption, ddmin-shrinks to its minimal two-rot schedule,
//! and replays byte-identically from the archived JSON.

use benchkit::chaos::{parse_schedule, schedule_json};
use benchkit::faulted::{run_faulted_with, FaultedOpts, FaultedScenario, PlanSource};
use benchkit::integrity::{
    default_integrity_spec, replay_archived_integrity, run_integrity_case, run_integrity_swarm,
    run_planned_integrity_case, shrink_failing_integrity, IntegrityScenario,
};
use cluster::Calibration;
use daos_core::{DataMode, OracleKind};
use simkit::{FaultAction, FaultPlan, SimTime};

fn tiny_spec() -> benchkit::RunSpec {
    let mut spec = default_integrity_spec();
    spec.ops_per_proc = 8;
    spec
}

/// A fixed schedule planting `rots` single-copy rots across the read
/// window, shards bounded by the widest redundancy group.
fn rot_plan(rots: u64, shards: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for i in 0..rots {
        plan.at(
            SimTime(1_000_000 + i * 700_000),
            FaultAction::BitRot {
                locus: 0x5eed ^ (i * 0x9e37_79b9),
                shard: i % shards,
            },
        );
    }
    plan
}

#[test]
fn seeded_rot_is_detected_and_repaired_on_rp2_and_ec() {
    let spec = tiny_spec();
    let cal = Calibration::default();
    for (scen, shards) in [
        (FaultedScenario::IorEasyRp2, 2),
        (FaultedScenario::IorHardEc2p1, 3),
    ] {
        let opts = FaultedOpts {
            plan: PlanSource::Fixed(rot_plan(2, shards)),
            mode: DataMode::Full,
            oracles: true,
            ..FaultedOpts::default()
        };
        let (report, _) = run_faulted_with(&spec, scen, &cal, &opts);
        let oracle = report.oracles.expect("oracles ran");
        assert!(
            oracle.ok(),
            "{}: single-copy rot must repair transparently:\n{}",
            scen.name(),
            oracle.render()
        );
        assert!(
            report.csum.detected >= 1,
            "{}: planted rot went undetected",
            scen.name()
        );
        assert!(report.csum.repaired >= 1, "{}: no repair", scen.name());
        assert_eq!(report.csum.served_corrupt, 0, "{}", scen.name());
        assert_eq!(report.csum.unrepairable, 0, "{}", scen.name());
    }
}

#[test]
fn integrity_swarm_is_green_over_every_scenario() {
    let spec = tiny_spec();
    let cal = Calibration::default();
    let (report, verdicts) = run_integrity_swarm(&spec, &cal, &[1, 2]);
    assert_eq!(verdicts.len(), 2 * IntegrityScenario::ALL.len());
    assert!(report.passed(), "integrity swarm:\n{}", report.render());
    for v in &verdicts {
        assert_eq!(v.csum.served_corrupt, 0, "{}", v.render_line());
        assert!(v.csum.detected >= 1, "{}", v.render_line());
    }
    // the scrubbing scenario completed exactly one throttled pass per run
    for v in verdicts
        .iter()
        .filter(|v| v.chaos.scenario == IntegrityScenario::ScrubReadRace.name())
    {
        let scrub = v.scrub.expect("scrub-read-race scrubs");
        assert_eq!(scrub.passes, 1, "{}", v.render_line());
        assert!(scrub.units_scanned > 0);
        assert_eq!(scrub.unrepairable, 0);
    }
}

#[test]
fn rot_beyond_redundancy_shrinks_and_replays_from_archive() {
    let spec = tiny_spec();
    let cal = Calibration::default();
    let scen = IntegrityScenario::RotBeyondRedundancy;

    // 1. detection: the planted double rot fails loudly as Corruption
    let v = run_integrity_case(&spec, scen, &cal, 7);
    assert!(v.passed(), "loud corruption expected:\n{}", v.render_line());
    assert!(!v.chaos.oracle.ok());
    assert!(v
        .chaos
        .oracle
        .violations
        .iter()
        .all(|viol| viol.oracle == OracleKind::Corruption));
    assert_eq!(v.csum.served_corrupt, 0, "refused, never served");
    assert!(v.csum.unrepairable >= 1);

    // 2. shrinking: ddmin keeps exactly the load-bearing rot pair
    let outcome = shrink_failing_integrity(&spec, scen, &cal, 7, &v.chaos.plan);
    assert!(outcome.reproduced, "shrinker must reproduce the corruption");
    assert_eq!(outcome.plan.len(), 2, "both rots are load-bearing");
    for ev in outcome.plan.events() {
        assert!(
            matches!(ev.action, FaultAction::BitRot { .. }),
            "only rots survive shrinking: {:?}",
            ev.action
        );
    }

    // 3. archive: the shrunken schedule round-trips through JSON and
    // replays byte-identically
    let direct = run_planned_integrity_case(&spec, scen, &cal, 7, outcome.plan.clone());
    assert!(!direct.chaos.oracle.ok(), "shrunken schedule still screams");
    let json = schedule_json(scen.name(), 7, &spec, &outcome.plan);
    let arch = parse_schedule(&json).expect("archive parses");
    assert_eq!(arch.plan.to_json(), outcome.plan.to_json());
    let replayed = replay_archived_integrity(&arch, &cal).expect("archive replays");
    assert_eq!(
        replayed.chaos.digest, direct.chaos.digest,
        "replay from archive is byte-identical"
    );
    assert_eq!(replayed.csum, direct.csum);
}
