//! Property tests for the failing-schedule shrinker (vendored proptest
//! shim): over chaos-generated schedules and randomly chosen "culprit"
//! oracles, the shrunken schedule is a subset of the original (by event
//! id, with equal-or-earlier times), still fails its oracle, reaches the
//! 1-minimal culprit set, and shrinking is deterministic for a fixed
//! seed.

use proptest::prelude::*;
use simkit::chaos::{generate, ChaosConfig, ChaosSpace};
use simkit::shrink::shrink;
use simkit::{FaultPlan, ResourceId, SplitMix64};

fn space() -> ChaosSpace {
    ChaosSpace {
        crash_groups: vec![vec![1 << 16, (1 << 16) | 1], vec![3 << 16]],
        disks: vec![ResourceId(10), ResourceId(11), ResourceId(12)],
        nics: vec![ResourceId(20), ResourceId(21)],
        delay_payloads: vec![1, 2],
        ..ChaosSpace::default()
    }
}

/// Derive a schedule and a random non-empty culprit id set from one seed
/// (both pure functions of the seed, so every property is replayable).
fn plan_and_culprits(seed: u64) -> (FaultPlan, Vec<u64>) {
    let cfg = ChaosConfig {
        max_faults: 6,
        ..ChaosConfig::default()
    };
    let plan = generate(&space(), &cfg, seed);
    let mut ids: Vec<u64> = plan.events().iter().map(|e| e.id).collect();
    let mut rng = SplitMix64::new(seed ^ 0x00c0_ffee);
    let n = 1 + rng.next_below(ids.len().min(3) as u64) as usize;
    let mut culprits = Vec::with_capacity(n);
    for _ in 0..n {
        let i = rng.next_below(ids.len() as u64) as usize;
        culprits.push(ids.swap_remove(i));
    }
    culprits.sort_unstable();
    (plan, culprits)
}

/// A monotone oracle: the "bug" reproduces iff every culprit event is
/// still in the schedule.  Monotonicity makes the 1-minimal result
/// unique (exactly the culprit set), which the properties exploit.
fn culprit_oracle(plan: &FaultPlan, culprits: &[u64]) -> bool {
    culprits
        .iter()
        .all(|c| plan.events().iter().any(|e| e.id == *c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subset: every surviving event is one of the input's (matched by
    /// id) and never fires later than it originally did.
    #[test]
    fn shrunk_schedule_is_a_subset_of_the_original(seed in 0u64..100_000) {
        let (plan, culprits) = plan_and_culprits(seed);
        let out = shrink(&plan, |p| culprit_oracle(p, &culprits));
        prop_assert!(out.reproduced);
        prop_assert!(out.plan.len() <= plan.len());
        for e in out.plan.events() {
            let orig = plan.events().iter().find(|o| o.id == e.id);
            prop_assert!(orig.is_some(), "event id {} not in the original", e.id);
            prop_assert!(
                e.at <= orig.unwrap().at,
                "tightening may only move events earlier"
            );
        }
    }

    /// The minimized schedule still fails its oracle, and for a monotone
    /// oracle ddmin lands on exactly the culprit set (1-minimality).
    #[test]
    fn shrunk_schedule_still_fails_and_is_minimal(seed in 0u64..100_000) {
        let (plan, culprits) = plan_and_culprits(seed);
        let out = shrink(&plan, |p| culprit_oracle(p, &culprits));
        prop_assert!(out.reproduced);
        prop_assert!(culprit_oracle(&out.plan, &culprits));
        let mut kept: Vec<u64> = out.plan.events().iter().map(|e| e.id).collect();
        kept.sort_unstable();
        prop_assert_eq!(kept, culprits.clone(), "1-minimal = exactly the culprits");
        prop_assert_eq!(out.removed, plan.len() - culprits.len());
    }

    /// Shrinking is a pure function of (plan, oracle): two runs walk the
    /// same probe sequence to the same minimal schedule.
    #[test]
    fn shrinking_is_deterministic_for_a_fixed_seed(seed in 0u64..100_000) {
        let (plan, culprits) = plan_and_culprits(seed);
        let a = shrink(&plan, |p| culprit_oracle(p, &culprits));
        let b = shrink(&plan, |p| culprit_oracle(p, &culprits));
        prop_assert_eq!(a.plan, b.plan);
        prop_assert_eq!(a.probes, b.probes);
        prop_assert_eq!(a.removed, b.removed);
        prop_assert_eq!(a.tightened, b.tightened);
    }

    /// The minimal schedule survives a JSON round trip byte-identically:
    /// what the swarm archives is exactly what replays.
    #[test]
    fn shrunk_schedule_round_trips_through_json(seed in 0u64..100_000) {
        let (plan, culprits) = plan_and_culprits(seed);
        let out = shrink(&plan, |p| culprit_oracle(p, &culprits));
        let json = out.plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        prop_assert_eq!(&back, &out.plan);
        prop_assert_eq!(back.to_json(), json);
    }
}
