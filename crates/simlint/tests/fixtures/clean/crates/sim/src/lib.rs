//! Clean fixture: every analysis is armed and none fires.

// simlint::sim_state — replay-visible fixture state
pub struct Counter {
    pub ticks: u64,
}

pub enum TickError {
    Busy,
    // simlint::terminal_error — exhaustion is final
    Exhausted,
}

impl Counter {
    /// The only mutator, reached from the digest root.
    pub fn tick(&mut self) -> Result<(), TickError> {
        if self.ticks == u64::MAX {
            return Err(TickError::Exhausted);
        }
        self.ticks += 1;
        Ok(())
    }
}

// simlint::panic_root — fixture fault handler: must never panic
pub fn on_fault(c: &mut Counter) {
    let _ = c.tick();
}

// simlint::digest_root — fixture replay fold
pub fn fold_digest(c: &mut Counter) -> u64 {
    on_fault(c);
    c.ticks
}
