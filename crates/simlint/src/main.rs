//! CLI for the simlint determinism pass.
//!
//! ```text
//! cargo run -p simlint --              # human-readable report, exit 0
//! cargo run -p simlint -- --deny      # exit 1 on any unsuppressed error
//! cargo run -p simlint -- --json      # one JSON object per finding
//! cargo run -p simlint -- --list-rules
//! cargo run -p simlint -- --root path/to/tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{lint_tree, rules, Severity};

fn usage() -> &'static str {
    "simlint — determinism lint for the daos-io-sim workspace\n\n\
     USAGE: simlint [--deny] [--json] [--list-rules] [--root DIR]\n\n\
     --deny        exit non-zero if any unsuppressed error-level finding remains\n\
     --json        emit findings as JSON lines instead of human-readable text\n\
     --list-rules  print the rule registry and exit\n\
     --root DIR    lint DIR instead of the workspace root (default: CARGO_WORKSPACE\n\
                   root inferred from this binary's manifest, falling back to `.`)"
}

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p simlint`, the manifest dir is
    // <workspace>/crates/simlint; its grandparent is the workspace root.
    // simlint::allow(env-dependent-sim) — CLI path discovery, not sim logic
    if let Some(dir) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    // simlint::allow(env-dependent-sim) — CLI argument parsing, not sim logic
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--list-rules" => {
                for r in rules() {
                    println!("{:<30} {:<5} {}", r.id, r.severity.to_string(), r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--root requires a directory argument\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    let findings = match lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warns = findings.len() - errors;

    if json {
        for f in &findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "simlint: {} error{}, {} warning{} in {}",
            errors,
            if errors == 1 { "" } else { "s" },
            warns,
            if warns == 1 { "" } else { "s" },
            root.display()
        );
    }

    if deny && errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
