//! Rebuild integration: exclusion → degraded I/O → rebuild → healthy
//! I/O, including surviving a second failure after re-protection.

use cluster::{ClusterSpec, Payload};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use simkit::{run, OpId, Scheduler, SimTime, SplitMix64, Step, World};

struct Done(SimTime);
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn exec(sched: &mut Scheduler, step: Step) -> f64 {
    let t0 = sched.now();
    sched.submit(step, OpId(0));
    let mut w = Done(SimTime::ZERO);
    run(sched, &mut w);
    w.0.secs_since(t0)
}

fn rand_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn fixture(servers: usize) -> (Scheduler, DaosSystem, daos_core::ContainerId) {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(servers, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, servers, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    sched.submit(s, OpId(0));
    run(&mut sched, &mut Done(SimTime::ZERO));
    (sched, daos, cid)
}

#[test]
fn rebuild_restores_ec_health_and_survives_second_failure() {
    let (mut sched, mut daos, cid) = fixture(4);
    let (oid, s) = daos
        .array_create(0, cid, ObjectClass::EC_2P1, 1 << 18)
        .unwrap();
    exec(&mut sched, s);
    let data = rand_bytes(1, 1 << 20);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
            .unwrap(),
    );

    // first failure: degraded but readable
    daos.exclude_server(0);
    let (got, s) = daos.array_read(0, cid, oid, 0, data.len() as u64).unwrap();
    exec(&mut sched, s);
    assert_eq!(got.bytes().unwrap(), &data[..]);

    // rebuild moves the dead cells to healthy targets
    let (report, step) = daos.rebuild();
    assert!(report.shards_rebuilt > 0, "{report:?}");
    assert_eq!(report.shards_lost, 0, "{report:?}");
    assert!(report.bytes_moved > 0.0);
    let secs = exec(&mut sched, step);
    assert!(secs > 0.0, "rebuild data movement takes time");

    // layouts no longer reference server 0
    // (verified behaviourally: a SECOND server loss is survivable, which
    // EC 2+1 could not tolerate without the rebuild)
    daos.exclude_server(1);
    let (got, s) = daos.array_read(0, cid, oid, 0, data.len() as u64).unwrap();
    exec(&mut sched, s);
    assert_eq!(
        got.bytes().unwrap(),
        &data[..],
        "survived two failures via rebuild"
    );
}

#[test]
fn rebuild_restores_replica_count() {
    let (mut sched, mut daos, cid) = fixture(3);
    let (kv, s) = daos.kv_create(0, cid, ObjectClass::RP_2).unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        daos.kv_put(0, cid, kv, b"key", Payload::Bytes(vec![7; 256]))
            .unwrap(),
    );

    daos.exclude_server(0);
    let (report, step) = daos.rebuild();
    exec(&mut sched, step);
    // the KV had at most one group member on server 0
    assert!(report.shards_rebuilt <= 2);
    assert_eq!(report.shards_lost, 0);

    daos.exclude_server(1);
    // after rebuild the replicas live on servers 1/2 or 2 only — if the
    // value survives this second loss, re-protection worked wherever it
    // was needed
    match daos.kv_get(0, cid, kv, b"key") {
        Ok((v, s)) => {
            exec(&mut sched, s);
            assert_eq!(v.bytes().unwrap(), &[7u8; 256][..]);
        }
        Err(e) => {
            // only acceptable if both replicas were legitimately placed
            // on the two dead servers before any rebuild was possible —
            // which rebuild prevents, so this is a failure
            panic!("replica lost after rebuild: {e:?}");
        }
    }
}

#[test]
fn unprotected_shards_report_lost() {
    let (mut sched, mut daos, cid) = fixture(2);
    let (oid, s) = daos.array_create(0, cid, ObjectClass::SX, 1 << 18).unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Sized(32 << 20))
            .unwrap(),
    );

    daos.exclude_server(0);
    let (report, step) = daos.rebuild();
    exec(&mut sched, step);
    assert!(
        report.shards_lost > 0,
        "unprotected SX shards cannot be rebuilt"
    );
    assert_eq!(report.shards_rebuilt, 0);
}

#[test]
fn rebuild_noop_when_healthy() {
    let (mut sched, mut daos, cid) = fixture(2);
    let (oid, s) = daos
        .array_create(0, cid, ObjectClass::RP_2, 1 << 18)
        .unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Sized(1 << 20))
            .unwrap(),
    );
    let (report, step) = daos.rebuild();
    assert_eq!(report.shards_rebuilt, 0);
    assert_eq!(report.shards_lost, 0);
    assert_eq!(report.bytes_moved, 0.0);
    assert!(step.is_noop());
    let _ = exec(&mut sched, step);
}

#[test]
fn pool_query_counts_usage() {
    let (mut sched, mut daos, cid) = fixture(2);
    let (oid, s) = daos.array_create(0, cid, ObjectClass::SX, 1 << 20).unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Sized(8 << 20))
            .unwrap(),
    );
    let (kv, s) = daos.kv_create(0, cid, ObjectClass::S1).unwrap();
    exec(&mut sched, s);
    for i in 0..5 {
        let step = daos
            .kv_put(0, cid, kv, format!("k{i}").as_bytes(), Payload::Sized(100))
            .unwrap();
        exec(&mut sched, step);
    }
    let info = daos.pool_query();
    assert_eq!(info.servers, 2);
    assert_eq!(info.targets_total, 32);
    assert_eq!(info.targets_up, 32);
    assert_eq!(info.containers, 1);
    assert_eq!(info.objects, 2);
    assert_eq!(info.array_bytes, (8u64 << 20) as f64);
    assert_eq!(info.kv_entries, 5);
}
