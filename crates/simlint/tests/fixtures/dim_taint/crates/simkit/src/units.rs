//! Fixture units module: the one place raw conversion constants are
//! allowed — `dim-raw-literal` must stay silent on this whole file.

// simlint::dim(bytes)
#[derive(Clone, Copy)]
pub struct Bytes(pub f64);

// simlint::dim(bytes_per_sec)
#[derive(Clone, Copy)]
pub struct Rate(pub f64);

pub const NS_PER_SEC: f64 = 1e9;
pub const MIB: f64 = 1024.0 * 1024.0;

// simlint::dim(s: secs, return: ns)
pub fn secs_to_ns(s: f64) -> u64 {
    (s * 1e9) as u64
}

// simlint::dim(ns: ns, return: secs)
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1_000_000_000 as f64
}
