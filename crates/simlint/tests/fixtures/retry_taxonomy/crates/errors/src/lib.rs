//! retry-taxonomy fixture, error-type side: classifiers.

pub enum StoreError {
    Timeout,
    // simlint::terminal_error — data loss is final
    Lost,
}

impl StoreError {
    /// Classifies the terminal variant as retriable: finding (a).
    pub fn is_retriable(&self) -> bool {
        matches!(self, StoreError::Timeout | StoreError::Lost)
    }
}

pub enum NetError {
    Slow,
    // simlint::terminal_error — corruption is final
    Corrupt,
}

impl NetError {
    /// Names the terminal variant but answers `false`: clean.
    pub fn is_retriable(&self) -> bool {
        match self {
            NetError::Corrupt => false,
            _ => true,
        }
    }
}
