//! CLI for the simlint determinism pass.
//!
//! ```text
//! cargo run -p simlint --              # stage 1 + flow pass, human report
//! cargo run -p simlint -- --deny      # exit 1 on any unsuppressed error
//! cargo run -p simlint -- --json      # one JSON object per finding
//! cargo run -p simlint -- --list-rules
//! cargo run -p simlint -- --root path/to/tree
//! cargo run -p simlint -- --no-flow   # stage 1 only (line/token rules)
//! cargo run -p simlint -- --baseline simlint-baseline.json
//! cargo run -p simlint -- --save-index target/simlint-index.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::json::Json;
use simlint::{cost, dim, flow, lint_tree, rules, Finding, Severity};

fn usage() -> &'static str {
    "simlint — determinism lint for the daos-io-sim workspace\n\n\
     USAGE: simlint [--deny] [--json] [--list-rules] [--root DIR] [--no-flow]\n\
\u{20}               [--baseline FILE] [--write-baseline FILE]\n\
\u{20}               [--save-index FILE] [--load-index FILE]\n\n\
     --deny            exit non-zero if any unsuppressed, non-baselined\n\
                       error-level finding remains\n\
     --json            emit findings as JSON lines instead of human text\n\
     --list-rules      print the rule registry (both stages) and exit\n\
     --root DIR        lint DIR instead of the inferred workspace root\n\
     --no-flow         skip the stage-2/3/4 passes (call-graph, cost and\n\
                       dimension analyses)\n\
     --baseline FILE   accept findings recorded in FILE: they are still\n\
                       reported, but do not fail --deny\n\
     --write-baseline FILE  record current error findings as the baseline\n\
     --save-index FILE write the parsed item index (for CI step caching)\n\
     --load-index FILE reuse a saved item index when its fingerprint still\n\
                       matches the tree (silently rebuilt otherwise)"
}

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p simlint`, the manifest dir is
    // <workspace>/crates/simlint; its grandparent is the workspace root.
    // simlint::allow(env-dependent-sim) — CLI path discovery, not sim logic
    if let Some(dir) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

/// Baseline identity of a finding: line numbers drift with unrelated
/// edits, so matching is by rule + path + exact offending excerpt.
fn baseline_key(rule: &str, path: &str, excerpt: &str) -> String {
    format!("{rule}\u{0}{path}\u{0}{excerpt}")
}

/// Parse a baseline file (a JSON array of finding objects, as written by
/// `--write-baseline`) into the set of accepted keys.
fn load_baseline(text: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let v = Json::parse(text)?;
    let arr = v.as_arr().ok_or("baseline must be a JSON array")?;
    let mut keys = std::collections::BTreeSet::new();
    for f in arr {
        let field = |k: &str| {
            f.get(k)
                .and_then(|x| x.as_str())
                .ok_or_else(|| format!("baseline entry missing `{k}`"))
        };
        keys.insert(baseline_key(
            field("rule")?,
            field("path")?,
            field("excerpt")?,
        ));
    }
    Ok(keys)
}

fn write_baseline(findings: &[Finding]) -> String {
    let entries: Vec<String> = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| format!("  {}", f.to_json()))
        .collect();
    if entries.is_empty() {
        "[]\n".to_string()
    } else {
        format!("[\n{}\n]\n", entries.join(",\n"))
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut no_flow = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline_to: Option<PathBuf> = None;
    let mut save_index: Option<PathBuf> = None;
    let mut load_index: Option<PathBuf> = None;
    // simlint::allow(env-dependent-sim) — CLI argument parsing, not sim logic
    let mut args = std::env::args().skip(1);
    let path_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| match args.next() {
        Some(d) => Ok(PathBuf::from(d)),
        None => {
            eprintln!("{flag} requires a file argument\n\n{}", usage());
            Err(ExitCode::from(2))
        }
    };
    while let Some(arg) = args.next() {
        let r = match arg.as_str() {
            "--deny" => {
                deny = true;
                Ok(())
            }
            "--json" => {
                json = true;
                Ok(())
            }
            "--no-flow" => {
                no_flow = true;
                Ok(())
            }
            "--list-rules" => {
                for r in rules() {
                    println!("{:<30} {:<5} {}", r.id, r.severity.to_string(), r.summary);
                }
                for r in flow::flow_rules() {
                    println!("{:<30} {:<5} {}", r.id, r.severity.to_string(), r.summary);
                }
                for r in cost::cost_rules() {
                    println!("{:<30} {:<5} {}", r.id, r.severity.to_string(), r.summary);
                }
                for r in dim::dim_rules() {
                    println!("{:<30} {:<5} {}", r.id, r.severity.to_string(), r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => path_arg(&mut args, "--root").map(|p| root = Some(p)),
            "--baseline" => path_arg(&mut args, "--baseline").map(|p| baseline = Some(p)),
            "--write-baseline" => {
                path_arg(&mut args, "--write-baseline").map(|p| write_baseline_to = Some(p))
            }
            "--save-index" => path_arg(&mut args, "--save-index").map(|p| save_index = Some(p)),
            "--load-index" => path_arg(&mut args, "--load-index").map(|p| load_index = Some(p)),
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        };
        if let Err(code) = r {
            return code;
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    let mut findings = match lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !no_flow {
        let sources = match flow::read_sources(&root) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("simlint: failed to read {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let fresh_print = flow::fingerprint(&sources);
        let cached = load_index.as_ref().and_then(|p| {
            let text = std::fs::read_to_string(p).ok()?;
            let idx = flow::index_from_json(&text).ok()?;
            (idx.fingerprint == fresh_print).then_some(idx)
        });
        let index = cached.unwrap_or_else(|| flow::build_index(&sources));
        if let Some(p) = &save_index {
            if let Err(e) = std::fs::write(p, flow::index_to_json(&index)) {
                eprintln!("simlint: failed to write index {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
        findings.extend(flow::analyze(&index, &sources));
        findings.extend(cost::analyze(&index, &sources));
        findings.extend(dim::analyze(&index, &sources));
        findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    if let Some(p) = &write_baseline_to {
        if let Err(e) = std::fs::write(p, write_baseline(&findings)) {
            eprintln!("simlint: failed to write baseline {}: {e}", p.display());
            return ExitCode::from(2);
        }
        let n = findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        println!(
            "simlint: wrote {} baseline entr{} to {}",
            n,
            if n == 1 { "y" } else { "ies" },
            p.display()
        );
        return ExitCode::SUCCESS;
    }

    let accepted = match &baseline {
        Some(p) => match std::fs::read_to_string(p)
            .map_err(|e| e.to_string())
            .and_then(|t| load_baseline(&t))
        {
            Ok(k) => k,
            Err(e) => {
                eprintln!("simlint: bad baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => Default::default(),
    };
    let is_baselined = |f: &Finding| accepted.contains(&baseline_key(f.rule, &f.path, &f.excerpt));

    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error && !is_baselined(f))
        .count();
    let baselined = findings
        .iter()
        .filter(|f| f.severity == Severity::Error && is_baselined(f))
        .count();
    let warns = findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .count();

    if json {
        for f in &findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in &findings {
            if is_baselined(f) {
                println!("{f}\n    (baselined)");
            } else {
                println!("{f}");
            }
        }
        println!(
            "simlint: {} error{}, {} warning{}, {} baselined in {}",
            errors,
            if errors == 1 { "" } else { "s" },
            warns,
            if warns == 1 { "" } else { "s" },
            baselined,
            root.display()
        );
    }

    if deny && errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
