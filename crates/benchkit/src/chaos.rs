//! The chaos swarm: seeded schedule generation × invariant oracles ×
//! automatic shrinking, glued to the benchmark scenario families.
//!
//! One **case** is `(scenario, seed)`: the seed samples a random
//! [`FaultPlan`] from the deployment's fault surface, the scenario runs
//! under it twice from fresh state, and the verdict combines the
//! durability/consistency oracles of the run with a determinism check
//! over the two replay digests.  A **swarm** is a seed block over a
//! scenario family; any failing case's schedule is serializable to a
//! self-contained JSON artifact from which [`replay_archived`] reruns
//! the exact case, and [`shrink_failing`] delta-debugs the schedule down
//! to a minimal reproducer using deterministic replay as the oracle.
//!
//! Two families are covered:
//!
//! * the **faulted family** ([`FaultedScenario::ALL`]): full fault
//!   surface (server crashes, restarts, slow disks, NIC brownouts,
//!   delayed completions) with the durability ledger recording every
//!   acked write in `Full` data mode and every oracle auditing after
//!   quiescence;
//! * the **engine family** ([`Scenario::ALL`]): capacity-weather
//!   schedules (slow disks / NIC brownouts only — safe against drivers
//!   with no fault-aware world) where the invariant is that the run
//!   completes and replays bit-identically.

use crate::faulted::{run_faulted_with, FaultedOpts, FaultedScenario, PlanSource};
use crate::scenarios::{run_scenario_chaos, RunSpec, Scenario};
use cluster::{Calibration, ClusterSpec, Topology};
use daos_core::{DataMode, OracleKind, OracleReport, TargetId, Violation};
use simkit::{generate, shrink, ChaosConfig, ChaosSpace, FaultPlan, Scheduler, ShrinkOutcome};

/// The sweep point the chaos swarm runs at: the faulted family's
/// deployment shape with a reduced op count and transfer size, because
/// `Full` data mode materialises (and the ledger re-reads) every byte.
pub fn default_chaos_spec() -> RunSpec {
    let mut spec = crate::faulted::default_faulted_spec();
    spec.ops_per_proc = 16;
    spec.transfer = 256 << 10;
    spec
}

/// Enumerate the fault surface of the deployment `spec` describes:
/// whole-server crash groups, every NVMe read/write device, both NIC
/// directions, and per-server delayed-completion payloads.
pub fn chaos_space(spec: &RunSpec, cal: &Calibration) -> ChaosSpace {
    // A scratch scheduler: resource ids depend only on registration
    // order, so the ids enumerated here match the real run's topology
    // build exactly.
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(spec.servers, spec.client_nodes)
        .with_cal(cal.clone())
        .build(&mut sched);
    let mut space = engine_space(&topo);
    space.crash_groups = (0..spec.servers as u16)
        .map(|server| {
            (0..cal.targets_per_server as u16)
                .map(|target| TargetId { server, target }.pack())
                .collect()
        })
        .collect();
    space.delay_payloads = (0..spec.servers as u64).collect();
    // bit-rot dimension: the widest redundancy group the families
    // deploy is EC_2P1 (k + p = 3); a single sampled rot is always
    // within redundancy, so swarm cases stay green by transparent
    // repair (the sampler shares the crash budget to guarantee it)
    space.rot_shards = 3;
    space
}

/// The engine-level slice of the fault surface: disk and NIC resources
/// only.  Schedules drawn from this space are safe against *any*
/// scenario because the engine applies capacity scaling itself — no
/// world cooperation needed.
pub fn engine_space(topo: &Topology) -> ChaosSpace {
    let mut space = ChaosSpace::default();
    for srv in &topo.servers {
        space.disks.extend(srv.nvme_r.iter().copied());
        space.disks.extend(srv.nvme_w.iter().copied());
        space.nics.push(srv.nic_tx);
        space.nics.push(srv.nic_rx);
    }
    space
}

/// One chaos case verdict.
#[derive(Debug, Clone)]
pub struct ChaosVerdict {
    /// Scenario display name.
    pub scenario: String,
    /// The generating seed.
    pub seed: u64,
    /// The sampled schedule (phase-relative event times).
    pub plan: FaultPlan,
    /// Merged oracle report (durability, reconstruction, redundancy,
    /// interface consistency, determinism).
    pub oracle: OracleReport,
    /// Replay digest of the first run.
    pub digest: u64,
}

impl ChaosVerdict {
    /// Every invariant green.
    pub fn passed(&self) -> bool {
        self.oracle.ok()
    }

    /// One status line: `seed 0x0017 IOR-easy/RP_2+crash 3 faults ok`.
    pub fn render_line(&self) -> String {
        format!(
            "seed {:#06x}  {:<24} {} faults  digest {:#018x}  {}",
            self.seed,
            self.scenario,
            self.plan.len(),
            self.digest,
            if self.passed() {
                "ok".to_string()
            } else {
                format!("FAILED ({} violations)", self.oracle.violations.len())
            }
        )
    }
}

pub(crate) fn determinism_violation(scenario: &str, a: u64, b: u64) -> Violation {
    Violation {
        oracle: OracleKind::Determinism,
        subject: scenario.to_string(),
        detail: format!("replay digests diverge: {a:#018x} vs {b:#018x}"),
    }
}

/// Run one faulted-family chaos case: generate the seed's schedule, run
/// it twice from fresh state with the ledger recording and all oracles
/// auditing, and fold a determinism check over the two digests.
pub fn run_chaos_case(
    spec: &RunSpec,
    scen: FaultedScenario,
    cal: &Calibration,
    seed: u64,
) -> ChaosVerdict {
    let space = chaos_space(spec, cal);
    let plan = generate(&space, &ChaosConfig::default(), seed);
    run_planned_case(spec, scen, cal, seed, plan)
}

/// Run a faulted-family case under an explicit schedule (the replay and
/// shrink entry point — [`run_chaos_case`] is this plus generation).
pub fn run_planned_case(
    spec: &RunSpec,
    scen: FaultedScenario,
    cal: &Calibration,
    seed: u64,
    plan: FaultPlan,
) -> ChaosVerdict {
    let opts = FaultedOpts {
        plan: PlanSource::Fixed(plan.clone()),
        mode: DataMode::Full,
        oracles: true,
        ..FaultedOpts::default()
    };
    let (first, _) = run_faulted_with(spec, scen, cal, &opts);
    let (second, _) = run_faulted_with(spec, scen, cal, &opts);
    let mut oracle = first.oracles.clone().unwrap_or_default();
    if first.digest != second.digest {
        oracle.violations.push(determinism_violation(
            scen.name(),
            first.digest,
            second.digest,
        ));
    }
    ChaosVerdict {
        scenario: scen.name().to_string(),
        seed,
        plan,
        oracle,
        digest: first.digest,
    }
}

/// Run one engine-family chaos case: capacity-weather schedule over a
/// generic scenario, determinism as the invariant.
pub fn run_engine_case(
    spec: &RunSpec,
    scen: Scenario,
    cal: &Calibration,
    seed: u64,
) -> ChaosVerdict {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(spec.servers, spec.client_nodes)
        .with_cal(cal.clone())
        .build(&mut sched);
    let plan = generate(&engine_space(&topo), &ChaosConfig::default(), seed);
    let (_, a) = run_scenario_chaos(spec, scen, cal, &plan);
    let (_, b) = run_scenario_chaos(spec, scen, cal, &plan);
    let mut oracle = OracleReport::default();
    oracle.checked_groups += 1;
    if a != b {
        oracle
            .violations
            .push(determinism_violation(scen.name(), a, b));
    }
    ChaosVerdict {
        scenario: scen.name().to_string(),
        seed,
        plan,
        oracle,
        digest: a,
    }
}

/// A swarm's collected verdicts.
#[derive(Debug, Clone, Default)]
pub struct SwarmReport {
    /// One verdict per case, in run order.
    pub verdicts: Vec<ChaosVerdict>,
}

impl SwarmReport {
    /// Every case green.
    pub fn passed(&self) -> bool {
        self.verdicts.iter().all(|v| v.passed())
    }

    /// The failing cases.
    pub fn failures(&self) -> Vec<&ChaosVerdict> {
        self.verdicts.iter().filter(|v| !v.passed()).collect()
    }

    /// Per-case lines plus a summary footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.verdicts {
            out.push_str(&v.render_line());
            out.push('\n');
        }
        let failed = self.verdicts.len() - self.verdicts.iter().filter(|v| v.passed()).count();
        out.push_str(&format!(
            "swarm: {} cases, {} failed\n",
            self.verdicts.len(),
            failed
        ));
        out
    }
}

/// Swarm the faulted family: every scenario in [`FaultedScenario::ALL`]
/// under every seed in `seeds`, full oracle suite.
pub fn run_chaos_swarm(spec: &RunSpec, cal: &Calibration, seeds: &[u64]) -> SwarmReport {
    let mut report = SwarmReport::default();
    for &seed in seeds {
        for scen in FaultedScenario::ALL {
            report.verdicts.push(run_chaos_case(spec, scen, cal, seed));
        }
    }
    report
}

/// Swarm the engine family: every scenario in [`Scenario::ALL`] under
/// every seed in `seeds`, determinism oracle.
pub fn run_engine_swarm(spec: &RunSpec, cal: &Calibration, seeds: &[u64]) -> SwarmReport {
    let mut report = SwarmReport::default();
    for &seed in seeds {
        for &scen in Scenario::ALL.iter() {
            report.verdicts.push(run_engine_case(spec, scen, cal, seed));
        }
    }
    report
}

/// Shrink a failing faulted-family schedule to a minimal reproducer.
/// The oracle is deterministic replay: a candidate subset "fails" when
/// any invariant oracle reports a violation under it.  Probes run
/// single-sided (no second determinism run) — the shrunken plan's final
/// verdict should be re-established with [`run_planned_case`].
pub fn shrink_failing(
    spec: &RunSpec,
    scen: FaultedScenario,
    cal: &Calibration,
    plan: &FaultPlan,
) -> ShrinkOutcome {
    let opts_for = |p: &FaultPlan| FaultedOpts {
        plan: PlanSource::Fixed(p.clone()),
        mode: DataMode::Full,
        oracles: true,
        ..FaultedOpts::default()
    };
    shrink(plan, |candidate| {
        let (report, _) = run_faulted_with(spec, scen, cal, &opts_for(candidate));
        !report
            .oracles
            .as_ref()
            .map(OracleReport::ok)
            .unwrap_or(true)
    })
}

/// Serialize a case to a self-contained schedule artifact: scenario,
/// seed, deployment shape, the plan itself, and the exact replay
/// command.  [`parse_schedule`] inverts it.
pub fn schedule_json(scenario: &str, seed: u64, spec: &RunSpec, plan: &FaultPlan) -> String {
    format!(
        concat!(
            "{{\"scenario\": \"{}\", \"seed\": {}, ",
            "\"spec\": {{\"servers\": {}, \"client_nodes\": {}, \"ppn\": {}, ",
            "\"ops_per_proc\": {}, \"transfer\": {}, \"queue_depth\": {}, \"seed\": {}}}, ",
            "\"replay\": \"cargo run --release --bin repro -- chaos-replay --schedule <this file>\", ",
            "\"plan\": {}}}"
        ),
        scenario,
        seed,
        spec.servers,
        spec.client_nodes,
        spec.ppn,
        spec.ops_per_proc,
        spec.transfer,
        spec.queue_depth,
        spec.seed,
        plan.to_json(),
    )
}

/// A parsed schedule artifact.
#[derive(Debug, Clone)]
pub struct ArchivedSchedule {
    /// Scenario display name (resolved against [`FaultedScenario::ALL`]
    /// by [`replay_archived`]).
    pub scenario: String,
    /// The generating seed (provenance; the plan is authoritative).
    pub seed: u64,
    /// Deployment shape to rerun at.
    pub spec: RunSpec,
    /// The schedule.
    pub plan: FaultPlan,
}

/// Parse a schedule artifact produced by [`schedule_json`].
pub fn parse_schedule(input: &str) -> Result<ArchivedSchedule, String> {
    let doc = simkit::json::parse(input).map_err(|e| e.to_string())?;
    let scenario = doc
        .get("scenario")
        .and_then(|v| v.as_str())
        .ok_or("missing scenario")?
        .to_string();
    let seed = doc
        .get("seed")
        .and_then(|v| v.as_u64())
        .ok_or("missing seed")?;
    let s = doc.get("spec").ok_or("missing spec")?;
    let field = |name: &str| -> Result<u64, String> {
        s.get(name)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing spec.{name}"))
    };
    let mut spec = RunSpec::new(
        field("servers")? as usize,
        field("client_nodes")? as usize,
        field("ppn")? as usize,
    );
    spec.ops_per_proc = field("ops_per_proc")? as usize;
    spec.transfer = field("transfer")?;
    spec.queue_depth = field("queue_depth")? as usize;
    spec.seed = field("seed")?;
    let plan = FaultPlan::from_json(&doc.get("plan").ok_or("missing plan")?.render())?;
    Ok(ArchivedSchedule {
        scenario,
        seed,
        spec,
        plan,
    })
}

/// Rerun an archived schedule byte-for-byte: resolve the scenario by
/// name and replay the stored plan at the stored deployment shape.
pub fn replay_archived(arch: &ArchivedSchedule, cal: &Calibration) -> Result<ChaosVerdict, String> {
    let scen = FaultedScenario::ALL
        .into_iter()
        .find(|s| s.name() == arch.scenario)
        .ok_or_else(|| format!("unknown scenario {:?}", arch.scenario))?;
    Ok(run_planned_case(
        &arch.spec,
        scen,
        cal,
        arch.seed,
        arch.plan.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> RunSpec {
        let mut spec = default_chaos_spec();
        spec.ops_per_proc = 8;
        spec
    }

    #[test]
    fn chaos_case_is_deterministic_and_green() {
        let spec = tiny_spec();
        let cal = Calibration::default();
        let a = run_chaos_case(&spec, FaultedScenario::IorEasyRp2, &cal, 7);
        assert!(a.passed(), "seed 7 must be green:\n{}", a.oracle.render());
        let b = run_chaos_case(&spec, FaultedScenario::IorEasyRp2, &cal, 7);
        assert_eq!(a.digest, b.digest, "same seed, same case digest");
        assert_eq!(a.plan.to_json(), b.plan.to_json());
        // different seed, different schedule
        let c = run_chaos_case(&spec, FaultedScenario::IorEasyRp2, &cal, 8);
        assert_ne!(a.plan.to_json(), c.plan.to_json());
    }

    #[test]
    fn schedule_artifact_round_trips_and_replays_identically() {
        let spec = tiny_spec();
        let cal = Calibration::default();
        let v = run_chaos_case(&spec, FaultedScenario::IorHardEc2p1, &cal, 3);
        let json = schedule_json(&v.scenario, v.seed, &spec, &v.plan);
        let arch = parse_schedule(&json).expect("parses");
        assert_eq!(arch.scenario, v.scenario);
        assert_eq!(arch.plan.to_json(), v.plan.to_json());
        let replayed = replay_archived(&arch, &cal).expect("replays");
        assert_eq!(replayed.digest, v.digest, "archived schedule pins the run");
    }

    #[test]
    fn engine_case_covers_generic_scenarios() {
        let mut spec = RunSpec::new(2, 1, 2);
        spec.ops_per_proc = 8;
        let cal = Calibration::default();
        let v = run_engine_case(&spec, Scenario::IorDaos, &cal, 11);
        assert!(v.passed(), "{}", v.oracle.render());
        assert!(!v.plan.is_empty(), "engine space must sample something");
    }
}
