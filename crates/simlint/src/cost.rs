//! Stage-3 **cost pass**: hot-path cost analyses over the stage-2 item
//! index and call graph ([`crate::flow`]).
//!
//! ROADMAP item 2 makes the simulator engine the bottleneck gating
//! million-user runs; this pass finds — and then *guards* — the three
//! cost patterns that dominate a discrete-event hot loop, the same way
//! the flow pass guards determinism:
//!
//! * **`hot-alloc`** — a heap allocation (`Vec::new`, `vec!`,
//!   `Box::new`, `format!`, `String::from`, `.clone()`, `.to_vec()`,
//!   `.collect()`) in a function reachable from a registered *hot root*
//!   runs once per simulated event.  Error in the engine crate
//!   (`simkit`), Warn elsewhere.  Amortized setup paths opt out with
//!   the `amortized` marker (see below).
//! * **`double-lookup`** — `contains_key` + `get`/`insert`/`remove`,
//!   or repeated `get`, on the same map and key within one function
//!   body: each access hashes the key again; `entry()` (or keeping the
//!   first `get` result) does the work once.  Body-local, so it runs
//!   even when no hot root is registered.
//! * **`hot-state-scan`** — iteration over a collection field of a
//!   registered `sim_state` type inside a hot-reachable function:
//!   O(all-entries) work per event is exactly the scaling cliff the
//!   engine bench trajectory (`BENCH_engine.json`) watches for.
//!
//! # Registration markers
//!
//! ```text
//! // simlint::hot_root — the engine event loop: every line here runs per event
//! pub fn run_for(&mut self, …) { … }
//!
//! // simlint::amortized — grows a reused buffer; allocation is not per-event
//! fn reserve_lane(&mut self, …) { … }
//! ```
//!
//! `hot_root` seeds the reachability walk.  `amortized` cuts it: the
//! marked function's own allocation sites are exempt and the walk does
//! not continue into its callees — use it for setup/grow paths whose
//! cost is amortized across many events, and give the reason in the
//! marker comment.
//!
//! # Approximations (deliberate)
//!
//! Like stage 2 this is name-based, not type-checked: `.clone()` on an
//! `Rc` or a `Copy` type still counts (it is at worst a refcount bump
//! the hot path does not need), a `get` on two *different* maps bound
//! to the same receiver name in disjoint branches can pair up, and
//! scans are only recognised on `self.<field>` of `sim_state` types.
//! Over-approximation is the safe direction for a perf lint: findings
//! are suppressed, with a written reason, via the same
//! `simlint::allow(rule) — reason` directives as every other rule.

use std::collections::BTreeMap;
use std::path::Path;

use crate::flow::{build_graph, build_index, read_sources, Emitter, FlowRule, Index};
use crate::{Finding, Severity};

/// The crate whose hot-path allocations are errors, not warnings: the
/// engine executes every simulated event, so a per-event allocation
/// there taxes every scenario in the sweep.
const ENGINE_PATH_PREFIX: &str = "crates/simkit/";

/// The stage-3 rule registry.
pub fn cost_rules() -> &'static [FlowRule] {
    &[
        FlowRule {
            id: "hot-alloc",
            severity: Severity::Error,
            summary: "heap allocation reachable from a hot root runs per simulated event (Error in the engine crate, Warn elsewhere); reuse a buffer or mark the path amortized",
        },
        FlowRule {
            id: "double-lookup",
            severity: Severity::Warn,
            summary: "the same map key is hashed twice in one function body (contains_key+get/insert or repeated get); use the entry API or keep the first lookup",
        },
        FlowRule {
            id: "hot-state-scan",
            severity: Severity::Warn,
            summary: "a hot-reachable function scans a sim-state collection: O(all-entries) work per event",
        },
    ]
}

/// BFS over the forward call graph from the hot roots, refusing to step
/// into `amortized`-marked functions.  Returns, per function, the root
/// it was first reached from (`usize::MAX` = not hot).
fn reach_hot(index: &Index, out: &[Vec<usize>], roots: &[usize]) -> Vec<usize> {
    let amortized: Vec<bool> = index
        .fns
        .iter()
        .map(|f| f.markers.contains("amortized"))
        .collect();
    let mut origin = vec![usize::MAX; out.len()];
    let mut queue = std::collections::VecDeque::new();
    for &s in roots {
        if !amortized[s] && origin[s] == usize::MAX {
            origin[s] = s;
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        let from = origin[n];
        for &m in &out[n] {
            if origin[m] == usize::MAX && !amortized[m] {
                origin[m] = from;
                queue.push_back(m);
            }
        }
    }
    origin
}

/// Run the three cost analyses over a built index.  `sources` supplies
/// excerpts and `simlint::allow` suppressions, exactly as in
/// [`crate::flow::analyze`].
pub fn analyze(index: &Index, sources: &BTreeMap<String, String>) -> Vec<Finding> {
    let graph = build_graph(index);
    let mut em = Emitter::new(sources);

    // ---- hot-alloc + hot-state-scan (reachability-driven) -----------------
    let hot_roots: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.markers.contains("hot_root"))
        .map(|(i, _)| i)
        .collect();
    if !hot_roots.is_empty() {
        let reached = reach_hot(index, &graph.out, &hot_roots);
        for (i, f) in index.fns.iter().enumerate() {
            if reached[i] == usize::MAX {
                continue;
            }
            let via = &index.fns[reached[i]].qual;
            let severity = if f.file.starts_with(ENGINE_PATH_PREFIX) {
                Severity::Error
            } else {
                Severity::Warn
            };
            // One finding per function (anchored at the first site): the
            // function is the unit a buffer-reuse fix or a function-level
            // allow applies to, so per-site findings would only repeat it.
            if let Some((first_line, _)) = f.allocs.first() {
                let mut kinds: Vec<&str> = f.allocs.iter().map(|(_, k)| k.as_str()).collect();
                kinds.dedup();
                em.emit(
                    "hot-alloc",
                    severity,
                    &f.file,
                    *first_line,
                    Some(f.line),
                    format!(
                        "{} allocation site{} ({}) in `{}` on a path reachable from hot root `{via}`: this runs per simulated event — reuse a scratch buffer, or mark the function `simlint::amortized` with a reason",
                        f.allocs.len(),
                        if f.allocs.len() == 1 { "" } else { "s" },
                        kinds.join(", "),
                        f.qual,
                    ),
                );
            }
            for (line, what) in &f.state_loops {
                em.emit(
                    "hot-state-scan",
                    Severity::Warn,
                    &f.file,
                    *line,
                    Some(f.line),
                    format!(
                        "`{what}` in `{}` scans a sim-state collection on a path reachable from hot root `{via}`: O(all-entries) work per event; keep incremental bookkeeping instead",
                        f.qual,
                    ),
                );
            }
        }
    }

    // ---- double-lookup (body-local) ---------------------------------------
    for f in &index.fns {
        // Group accesses by (receiver, key); one finding per group.
        let mut groups: BTreeMap<(&str, &str), Vec<(&str, u32)>> = BTreeMap::new();
        for (recv, key, method, line) in &f.map_ops {
            groups
                .entry((recv.as_str(), key.as_str()))
                .or_default()
                .push((method.as_str(), *line));
        }
        for ((recv, key), ops) in groups {
            let probe = ops.iter().find(|(m, _)| *m == "contains_key");
            let paired = ops.iter().find(|(m, _)| *m != "contains_key");
            let gets: Vec<u32> = ops
                .iter()
                .filter(|(m, _)| matches!(*m, "get" | "get_mut"))
                .map(|(_, l)| *l)
                .collect();
            if let (Some((_, probe_line)), Some((method, line))) = (probe, paired) {
                let report = (*line).max(*probe_line);
                em.emit(
                    "double-lookup",
                    Severity::Warn,
                    &f.file,
                    report,
                    Some(f.line),
                    format!(
                        "`{recv}` is probed with `contains_key({key})` and accessed again with `{method}` in `{}`: the key is hashed twice — use the entry API (or match on the first lookup)",
                        f.qual,
                    ),
                );
            } else if gets.len() >= 2 && gets.iter().any(|l| *l != gets[0]) {
                em.emit(
                    "double-lookup",
                    Severity::Warn,
                    &f.file,
                    gets[gets.len() - 1],
                    Some(f.line),
                    format!(
                        "`{recv}` is looked up {} times with the same key `{key}` in `{}`: keep the first result instead of re-hashing",
                        gets.len(),
                        f.qual,
                    ),
                );
            }
        }
    }

    let mut findings = em.findings;
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Convenience: read sources, build the index and run the cost pass.
pub fn analyze_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let sources = read_sources(root)?;
    let index = build_index(&sources);
    Ok(analyze(&index, &sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srcs(files: &[(&str, &str)]) -> BTreeMap<String, String> {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources = srcs(files);
        let index = build_index(&sources);
        analyze(&index, &sources)
    }

    #[test]
    fn hot_alloc_flags_reachable_allocation_and_spares_cold_code() {
        let findings = run(&[(
            "crates/simkit/src/lib.rs",
            "// simlint::hot_root — event loop\n\
             pub fn pump() { tick(); }\n\
             fn tick() { let v: Vec<u32> = Vec::new(); drop(v); }\n\
             fn cold() { let v: Vec<u32> = Vec::new(); drop(v); }\n",
        )]);
        let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == "hot-alloc").collect();
        assert_eq!(hits.len(), 1, "{findings:#?}");
        assert!(hits[0].message.contains("`tick`"), "{:?}", hits[0]);
        assert_eq!(hits[0].severity, Severity::Error);
    }

    #[test]
    fn hot_alloc_warns_outside_engine_crate() {
        let findings = run(&[(
            "crates/other/src/lib.rs",
            "// simlint::hot_root\n\
             pub fn pump() { let s = format!(\"x\"); drop(s); }\n",
        )]);
        let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == "hot-alloc").collect();
        assert_eq!(hits.len(), 1, "{findings:#?}");
        assert_eq!(hits[0].severity, Severity::Warn);
    }

    #[test]
    fn amortized_marker_cuts_the_walk() {
        let findings = run(&[(
            "crates/simkit/src/lib.rs",
            "// simlint::hot_root\n\
             pub fn pump() { grow(); }\n\
             // simlint::amortized — doubles a reused buffer\n\
             fn grow() { helper(); }\n\
             fn helper() { let v: Vec<u32> = Vec::new(); drop(v); }\n",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != "hot-alloc"),
            "{findings:#?}"
        );
    }

    #[test]
    fn double_lookup_flags_probe_then_access() {
        let findings = run(&[(
            "crates/x/src/lib.rs",
            "use std::collections::BTreeMap;\n\
             pub fn put(m: &mut BTreeMap<u32, u32>, k: u32) {\n\
                 if !m.contains_key(&k) {\n\
                     m.insert(k, 0);\n\
                 }\n\
             }\n",
        )]);
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "double-lookup")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:#?}");
        assert!(hits[0].message.contains("entry API"), "{:?}", hits[0]);
    }

    #[test]
    fn double_lookup_ignores_different_keys_and_single_access() {
        let findings = run(&[(
            "crates/x/src/lib.rs",
            "use std::collections::BTreeMap;\n\
             pub fn ok(m: &BTreeMap<u32, u32>, a: u32, b: u32) -> u32 {\n\
                 m.get(&a).copied().unwrap_or(0) + m.get(&b).copied().unwrap_or(0)\n\
             }\n",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != "double-lookup"),
            "{findings:#?}"
        );
    }

    #[test]
    fn repeated_get_on_same_key_is_flagged() {
        let findings = run(&[(
            "crates/x/src/lib.rs",
            "use std::collections::BTreeMap;\n\
             pub fn twice(m: &BTreeMap<u32, u32>, k: u32) -> u32 {\n\
                 let a = m.get(&k).copied().unwrap_or(0);\n\
                 let b = m.get(&k).copied().unwrap_or(1);\n\
                 a + b\n\
             }\n",
        )]);
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "double-lookup")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:#?}");
        assert!(hits[0].message.contains("2 times"), "{:?}", hits[0]);
    }

    #[test]
    fn hot_state_scan_flags_reachable_scan_only() {
        let findings = run(&[(
            "crates/simkit/src/lib.rs",
            "// simlint::sim_state\n\
             pub struct Sched { flows: Vec<u32> }\n\
             impl Sched {\n\
                 // simlint::hot_root\n\
                 pub fn pump(&mut self) { self.settle(); }\n\
                 fn settle(&mut self) { for f in self.flows.iter_mut() { *f += 1; } }\n\
                 fn report(&self) { for f in self.flows.iter() { drop(f); } }\n\
             }\n",
        )]);
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "hot-state-scan")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:#?}");
        assert!(hits[0].message.contains("`Sched::settle`"), "{:?}", hits[0]);
        assert_eq!(hits[0].severity, Severity::Warn);
    }

    #[test]
    fn for_loop_over_self_field_is_a_scan() {
        let findings = run(&[(
            "crates/simkit/src/lib.rs",
            "// simlint::sim_state\n\
             pub struct Sched { flows: Vec<u32> }\n\
             impl Sched {\n\
                 // simlint::hot_root\n\
                 pub fn pump(&mut self) { for f in &self.flows { drop(f); } }\n\
             }\n",
        )]);
        assert!(
            findings.iter().any(|f| f.rule == "hot-state-scan"),
            "{findings:#?}"
        );
    }

    #[test]
    fn allow_with_reason_suppresses_cost_findings() {
        let findings = run(&[(
            "crates/simkit/src/lib.rs",
            "// simlint::hot_root\n\
             // simlint::allow(hot-alloc) — drained once per fault, not per event\n\
             pub fn pump() { let v: Vec<u32> = Vec::new(); drop(v); }\n",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != "hot-alloc"),
            "{findings:#?}"
        );
    }

    #[test]
    fn no_hot_roots_means_no_reachability_findings() {
        let findings = run(&[(
            "crates/simkit/src/lib.rs",
            "pub fn pump() { let v: Vec<u32> = Vec::new(); drop(v); }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
