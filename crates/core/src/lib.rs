//! # daos-core — a DAOS-like distributed object store
//!
//! The paper's primary subject re-implemented as a simulation-backed
//! library: pools of engines with per-NVMe targets, containers with
//! isolated object namespaces and snapshots, 128-bit OIDs with
//! user-managed bits and encoded object classes, **Key-Value** and
//! **Array** objects, and the full redundancy matrix — plain sharding
//! (`S1`/`SX`), replication (`RP_*`) and erasure coding (`EC_kPp`, with
//! real GF(256) Reed-Solomon parity and degraded-read reconstruction).
//!
//! The programming model mirrors libdaos: create a container in a pool,
//! create objects with a class, then `kv_put`/`kv_get` or
//! `array_write`/`array_read`.  Every API call mutates the store
//! immediately and returns a [`simkit::Step`] describing the operation's
//! cost, which callers submit to the simulation scheduler.
//!
//! Fallible calls return [`DaosError`]; the transient variants
//! ([`DaosError::Timeout`], [`DaosError::TargetDown`],
//! [`DaosError::Retriable`]) are what a [`RetryExec`] retries with
//! deterministic backoff — propagate them with `?` rather than
//! unwrapping:
//!
//! ```
//! use cluster::{ClusterSpec, Payload};
//! use daos_core::{DaosError, DaosSystem, DataMode, ObjectClass, ContainerProps};
//! use simkit::Scheduler;
//!
//! fn demo() -> Result<(), DaosError> {
//!     let mut sched = Scheduler::new();
//!     let topo = ClusterSpec::new(4, 1).build(&mut sched);
//!     let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
//!     let (cid, _step) = daos.cont_create(0, ContainerProps::default());
//!     let (oid, _step) = daos.array_create(0, cid, ObjectClass::SX, 1 << 20)?;
//!     let _step = daos.array_write(0, cid, oid, 0, Payload::Bytes(vec![42; 1024]))?;
//!     let (data, _step) = daos.array_read(0, cid, oid, 0, 1024)?;
//!     assert_eq!(data.bytes().ok_or(DaosError::Unavailable)?[0], 42);
//!     Ok(())
//! }
//! demo().expect("healthy pool serves the round trip");
//! ```

pub mod class;
pub mod container;
pub mod csum;
pub mod data;
pub mod ec;
pub mod ledger;
pub mod oid;
pub mod pool;
pub mod rebuild;
pub mod retry;
pub mod system;

pub use class::ObjectClass;
pub use container::{Container, ContainerId, ContainerProps, ObjectEntry};
pub use csum::{CsumCodec, DEFAULT_CSUM_SEED};
pub use data::{ArrayData, CellAvailability, CsumMismatch, DataError, DataMode, KvData, ObjData};
pub use ec::ErasureCode;
pub use ledger::{
    content_digest, AckedValue, DurabilityLedger, OracleKind, OracleReport, Violation,
};
pub use oid::{Oid, OidAllocator, FLAG_KV};
pub use pool::{Layout, PoolMap, TargetId, TargetState};
pub use rebuild::RebuildReport;
pub use retry::{Retriable, RetryExec, RetryPolicy, RetryStats};
pub use system::{
    dkey_hash, CsumStats, DaosError, DaosSystem, MigrationProgress, PoolInfo, RebalanceReport,
    ScrubReport,
};
