//! Micro-benchmarks of the simulator's hot paths: the max-min fair-share
//! solver, object placement, erasure coding, and the core op chains.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use daos_core::{ErasureCode, ObjectClass, OidAllocator, PoolMap};
use simkit::fairshare::FairShare;
use simkit::units::{GB, MB};
use simkit::{Rate, ResourceId, SplitMix64};

/// Progressive filling over a 16-server-deployment-sized snapshot:
/// ~1000 flows with 5-resource paths over ~800 resources.
fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("micro");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(20);
    g
}

fn bench_fairshare(c: &mut Criterion) {
    let n_res = 800usize;
    let caps: Vec<Rate> = (0..n_res).map(|i| Rate(GB + (i as f64) * MB)).collect();
    let mut rng = SplitMix64::new(42);
    let flows: Vec<Vec<ResourceId>> = (0..1000)
        .map(|_| {
            (0..5)
                .map(|_| ResourceId(rng.next_below(n_res as u64) as u32))
                .collect()
        })
        .collect();
    let mut group = quick(c);
    for (name, tol) in [("fairshare_exact", 0.0), ("fairshare_banded_2pct", 0.02)] {
        group.bench_function(name, |b| {
            let mut fs = FairShare::new();
            fs.set_tolerance(tol);
            b.iter(|| {
                fs.begin(n_res);
                for (i, path) in flows.iter().enumerate() {
                    fs.add_flow(i as u32, path);
                }
                fs.solve(&caps)
            });
        });
    }
    group.finish();
}

/// Per-object layout generation (shuffle + fault-domain interleave).
fn bench_placement(c: &mut Criterion) {
    let pm = PoolMap::new(16, 16);
    let mut alloc = OidAllocator::new();
    let mut g = quick(c);
    g.bench_function("layout_sx_256_targets", |b| {
        b.iter_batched(
            || alloc.next(ObjectClass::SX, 0),
            |oid| pm.layout(&oid, ObjectClass::SX),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("layout_ec2p1_256_targets", |b| {
        b.iter_batched(
            || alloc.next(ObjectClass::EC_2P1, 0),
            |oid| pm.layout(&oid, ObjectClass::EC_2P1),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// Reed-Solomon encode and degraded-decode of a 1 MiB stripe.
fn bench_erasure(c: &mut Criterion) {
    let ec = ErasureCode::new(2, 1);
    let mut rng = SplitMix64::new(7);
    let cell = 512 * 1024;
    let mut d0 = vec![0u8; cell];
    let mut d1 = vec![0u8; cell];
    rng.fill_bytes(&mut d0);
    rng.fill_bytes(&mut d1);
    let mut g = quick(c);
    g.bench_function("ec_2p1_encode_1mib", |b| {
        b.iter(|| ec.encode(&[&d0, &d1]));
    });
    let parity = ec.encode(&[&d0, &d1]);
    let cells = vec![None, Some(d1.clone()), Some(parity[0].clone())];
    g.bench_function("ec_2p1_reconstruct_1mib", |b| {
        b.iter(|| ec.reconstruct(&cells).unwrap());
    });
    g.finish();
}

/// One simulated 1 MiB write op end-to-end (chain build + execution).
fn bench_sim_op(c: &mut Criterion) {
    use cluster::{ClusterSpec, Payload};
    use daos_core::{ContainerProps, DaosSystem, DataMode};
    use simkit::{run, OpId, Scheduler, World};
    struct Sink;
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, _s: &mut Scheduler) {}
    }
    let mut g = quick(c);
    g.bench_function("daos_array_write_1mib_sim", |b| {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(4, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        let (oid, s) = daos.array_create(0, cid, ObjectClass::SX, 1 << 20).unwrap();
        sched.submit(s, OpId(0));
        run(&mut sched, &mut Sink);
        let mut off = 0u64;
        b.iter(|| {
            let step = daos
                .array_write(0, cid, oid, off, Payload::Sized(1 << 20))
                .unwrap();
            off += 1 << 20;
            sched.submit(step, OpId(1));
            run(&mut sched, &mut Sink);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fairshare,
    bench_placement,
    bench_erasure,
    bench_sim_op
);
criterion_main!(benches);
