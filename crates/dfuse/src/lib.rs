//! # daos-dfuse — the DAOS FUSE daemon model and interception library
//!
//! Exposes a [`daos_dfs::Dfs`] namespace through a modelled kernel FUSE
//! layer: per-syscall kernel crossings, a per-client-node request pump
//! sized by the FUSE thread count, kernel↔user copy bandwidth, request
//! fragmentation at `max_write`, and optional client-side data/metadata
//! caching — the knobs the paper's DFUSE experiments turn.  With
//! `interception` enabled, read/write bypass the kernel path entirely,
//! modelling `libioil` (DFUSE+IL in the figures).

pub mod mount;

pub use mount::{DfuseMount, DfuseOpts};
