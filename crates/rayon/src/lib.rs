//! Offline stand-in for [`rayon`](https://docs.rs/rayon).
//!
//! The build container has no registry access, so this shim provides
//! the `par_iter()` entry points the workspace uses and runs them as
//! **ordered sequential** iteration.  Result order is identical to real
//! rayon (whose `collect` is order-preserving), so swapping the real
//! crate back in changes wall-time only, never results — which is the
//! property the determinism harness in `benchkit` asserts.

/// The common imports (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `par_iter()` on anything whose reference iterates (slices, arrays,
/// `Vec`, …).  Sequential fallback: the returned iterator is the plain
/// `(&self).into_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (`&'data T` for slice-backed collections).
    type Item: 'data;

    /// Iterate "in parallel" (sequentially, in order, in this shim).
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: 'data,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_ordered() {
        let xs = [3usize, 1, 4, 1, 5];
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let v: Vec<i32> = vec![7, 8];
        assert_eq!(v.par_iter().copied().collect::<Vec<_>>(), vec![7, 8]);
    }
}
