//! The Fig. 9 comparison in miniature: fdb-hammer against DAOS, Lustre
//! and Ceph deployed on identical hardware.
//!
//! ```text
//! cargo run --release --example storage_shootout
//! ```

use benchkit::scenarios::{run_scenario, RunSpec, Scenario};
use cluster::{Calibration, GIB};

fn main() {
    let cal = Calibration::default();
    let mut spec = RunSpec::new(8, 8, 16);
    spec.ops_per_proc = 48;

    println!(
        "fdb-hammer, {} processes x {} x 1 MiB fields, 8 storage servers\n",
        spec.procs(),
        spec.ops_per_proc
    );
    println!("{:<22} {:>14} {:>14}", "store", "write GiB/s", "read GiB/s");
    let mut results = Vec::new();
    for (name, scen) in [
        ("DAOS (libdaos)", Scenario::FdbDaos),
        ("Lustre (POSIX)", Scenario::FdbLustre),
        ("Ceph (librados)", Scenario::FdbCeph),
    ] {
        let r = run_scenario(&spec, scen, &cal);
        println!(
            "{name:<22} {:>14.2} {:>14.2}",
            r.write.bandwidth() / GIB,
            r.read.bandwidth() / GIB
        );
        results.push((name, r));
    }
    let daos_read = results[0].1.read.bandwidth();
    let lustre_read = results[1].1.read.bandwidth();
    let ceph_read = results[2].1.read.bandwidth();
    println!();
    if lustre_read < daos_read {
        println!(
            "Lustre reads trail DAOS by {:.1}x: every field retrieval opens and\n\
             closes files against ONE metadata server.",
            daos_read / lustre_read
        );
    }
    if ceph_read < daos_read {
        println!(
            "Ceph reaches {:.0}% of DAOS: per-OSD processing and WAL write\n\
             amplification cost bandwidth even with balanced placement groups.",
            100.0 * ceph_read / daos_read
        );
    }
    println!("\nThe full-scale version of this comparison is `repro fig9`.");
}
