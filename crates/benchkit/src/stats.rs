//! Repetition statistics: the paper reports mean ± standard deviation
//! over three repetitions of every test.

/// Mean and standard deviation of a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Compute from samples.
    pub fn from(samples: &[f64]) -> Stats {
        let n = samples.len();
        if n == 0 {
            return Stats {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        Stats {
            mean,
            std: var.sqrt(),
            n,
        }
    }

    /// Relative standard deviation (coefficient of variation).
    pub fn rel_std(&self) -> f64 {
        if self.mean != 0.0 {
            self.std / self.mean
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = Stats::from(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn degenerate_cases() {
        let s = Stats::from(&[]);
        assert_eq!((s.mean, s.std, s.n), (0.0, 0.0, 0));
        let s = Stats::from(&[5.0]);
        assert_eq!((s.mean, s.std), (5.0, 0.0));
        assert_eq!(Stats::from(&[3.0, 3.0]).rel_std(), 0.0);
    }
}
