//! The libdfs-style POSIX namespace encoded on DAOS objects.
//!
//! Exactly like libdfs, the namespace lives *in* the object store:
//! every directory is a Key-Value object mapping entry names to packed
//! dirents (object id + kind), every regular file is an Array object,
//! and symbolic links are dirents carrying their target path.  A mount
//! wraps one container; the superblock/root directory is created on
//! format.
//!
//! Every operation issues the corresponding KV/Array operations against
//! [`DaosSystem`] and returns their combined cost [`Step`].  An in-memory
//! inode table caches the directory tree — the same role the real
//! libdfs object-handle cache plays — while the authoritative dirent
//! bytes live in the KV objects (verifiable in Full data mode).

use cluster::payload::{Payload, ReadPayload};
use cluster::posix::{components, FileId, FileStat, FsError, PosixFs};
use daos_core::{
    ContainerId, DaosError, DaosSystem, ObjectClass, Oid, OracleKind, OracleReport, RetryExec,
    RetryPolicy, RetryStats, Violation,
};
use simkit::Step;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Mount options.
#[derive(Debug, Clone)]
pub struct DfsOpts {
    /// Object class for regular files (paper: `SX` performed best).
    pub file_class: ObjectClass,
    /// Object class for directories (paper: `SX`; `RP_2` in the
    /// redundancy experiments).
    pub dir_class: ObjectClass,
    /// Array chunk size for file data.
    // simlint::dim(bytes)
    pub chunk_size: u64,
}

impl Default for DfsOpts {
    fn default() -> Self {
        DfsOpts {
            file_class: ObjectClass::SX,
            dir_class: ObjectClass::SX,
            chunk_size: 1 << 20,
        }
    }
}

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InodeId(pub u32);

#[derive(Debug)]
enum InodeKind {
    Dir {
        kv: Oid,
        entries: BTreeMap<String, InodeId>,
    },
    File {
        arr: Oid,
    },
    Symlink {
        target: String,
    },
}

#[derive(Debug)]
struct Inode {
    kind: InodeKind,
    nlink: u32,
}

/// A mounted DFS namespace.
// simlint::sim_state — replay-visible simulation state
pub struct Dfs {
    daos: Rc<RefCell<DaosSystem>>,
    cid: ContainerId,
    opts: DfsOpts,
    inodes: Vec<Inode>,
    handles: BTreeMap<u64, InodeId>,
    next_handle: u64,
    op_overhead_ns: u64,
    /// Retry machinery for the data path (off by default).
    retry: RetryExec,
}

/// Maximum symlink traversals before `SymlinkLoop`.
const MAX_SYMLINKS: u32 = 8;

fn pack_dirent(oid: Oid, kind: u8, target: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(17 + target.len());
    v.push(kind);
    v.extend_from_slice(&oid.hi.to_le_bytes());
    v.extend_from_slice(&oid.lo.to_le_bytes());
    v.extend_from_slice(target.as_bytes());
    v
}

impl Dfs {
    /// Format and mount a DFS namespace in `cid`.  Returns the mount and
    /// the cost of creating the superblock/root directory.
    pub fn format(
        daos: Rc<RefCell<DaosSystem>>,
        client: usize,
        cid: ContainerId,
        opts: DfsOpts,
    ) -> Result<(Dfs, Step), FsError> {
        let op_overhead_ns = daos.borrow().cal().dfs_op_ns;
        let (root_kv, step) = daos
            .borrow_mut()
            .kv_create(client, cid, opts.dir_class)
            .map_err(map_daos)?;
        let dfs = Dfs {
            daos,
            cid,
            opts,
            inodes: vec![Inode {
                kind: InodeKind::Dir {
                    kv: root_kv,
                    entries: BTreeMap::new(),
                },
                nlink: 1,
            }],
            handles: BTreeMap::new(),
            next_handle: 1,
            op_overhead_ns,
            retry: RetryExec::disabled(),
        };
        Ok((dfs, Step::delay(op_overhead_ns).then(step)))
    }

    /// The root inode.
    pub fn root(&self) -> InodeId {
        InodeId(0)
    }

    /// The backing store (for cross-interface tests/examples).
    pub fn daos(&self) -> &Rc<RefCell<DaosSystem>> {
        &self.daos
    }

    /// The container this namespace lives in.
    pub fn container(&self) -> ContainerId {
        self.cid
    }

    /// Configure retry/timeout/backoff on the data path (`seed` drives
    /// the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    fn overhead(&self) -> Step {
        Step::delay(self.op_overhead_ns)
    }

    fn inode(&self, id: InodeId) -> &Inode {
        &self.inodes[id.0 as usize]
    }

    fn dirent_payload(&self, oid: Oid, kind: u8, target: &str) -> Payload {
        match self.daos.borrow().data_mode() {
            daos_core::DataMode::Full => Payload::Bytes(pack_dirent(oid, kind, target)),
            daos_core::DataMode::Sized => Payload::Sized(17 + target.len() as u64),
        }
    }

    /// Walk `path` from the root.  `follow_last` resolves a trailing
    /// symlink.  Returns the inode and the lookup cost (one KV get per
    /// component, exactly libdfs's `dfs_lookup`).
    pub fn resolve(
        &mut self,
        client: usize,
        path: &str,
        follow_last: bool,
    ) -> Result<(InodeId, Step), FsError> {
        let mut hops = 0u32;
        let mut step = self.overhead();
        let mut cur = self.root();
        let mut stack: Vec<String> = components(path)
            .iter()
            .rev()
            .map(|s| s.to_string())
            .collect();
        while let Some(name) = stack.pop() {
            let (kv, next) = match &self.inode(cur).kind {
                InodeKind::Dir { kv, entries } => {
                    let next = *entries.get(&name).ok_or(FsError::NotFound)?;
                    (*kv, next)
                }
                _ => return Err(FsError::NotDir),
            };
            // charge the dirent fetch
            let (_, s) = self
                .daos
                .borrow_mut()
                .kv_get(client, self.cid, kv, name.as_bytes())
                .map_err(map_daos)?;
            step = step.then(s);
            // follow symlinks
            if let InodeKind::Symlink { target } = &self.inode(next).kind {
                let is_last = stack.is_empty();
                if is_last && !follow_last {
                    cur = next;
                    continue;
                }
                hops += 1;
                if hops > MAX_SYMLINKS {
                    return Err(FsError::SymlinkLoop);
                }
                let target = target.clone();
                if target.starts_with('/') {
                    cur = self.root();
                }
                for c in components(&target).iter().rev() {
                    stack.push(c.to_string());
                }
                continue;
            }
            cur = next;
        }
        Ok((cur, step))
    }

    fn resolve_parent<'p>(
        &mut self,
        client: usize,
        path: &'p str,
    ) -> Result<(InodeId, &'p str, Step), FsError> {
        let comps = components(path);
        let (name, parents) = comps.split_last().ok_or(FsError::Exists)?;
        let parent_path = parents.join("/");
        let (pid, step) = self.resolve(client, &parent_path, true)?;
        match &self.inode(pid).kind {
            InodeKind::Dir { .. } => Ok((pid, name, step)),
            _ => Err(FsError::NotDir),
        }
    }

    #[allow(clippy::too_many_arguments)] // dirent updates carry full identity
    fn insert_dirent(
        &mut self,
        client: usize,
        parent: InodeId,
        name: &str,
        child: InodeId,
        oid: Oid,
        kind: u8,
        target: &str,
    ) -> Result<Step, FsError> {
        let payload = self.dirent_payload(oid, kind, target);
        let kv = match &mut self.inodes[parent.0 as usize].kind {
            InodeKind::Dir { kv, entries } => {
                entries.insert(name.to_string(), child);
                *kv
            }
            _ => return Err(FsError::NotDir),
        };
        self.daos
            .borrow_mut()
            .kv_put(client, self.cid, kv, name.as_bytes(), payload)
            .map_err(map_daos)
    }

    /// Open (or create) `name` directly under an already-resolved parent
    /// directory — the parent-relative form the real `dfs_open` exposes,
    /// which lets callers (like the kernel dentry cache above DFUSE)
    /// skip the per-component path walk.
    pub fn open_at(
        &mut self,
        client: usize,
        parent: InodeId,
        name: &str,
        create: bool,
    ) -> Result<(FileId, Step), FsError> {
        let kv = self.dir_kv(parent)?;
        match self.child_of(parent, name) {
            Some(id) => {
                if matches!(self.inode(id).kind, InodeKind::Dir { .. }) {
                    return Err(FsError::IsDir);
                }
                // one dirent fetch on the parent's KV
                let (_, s) = self
                    .daos
                    .borrow_mut()
                    .kv_get(client, self.cid, kv, name.as_bytes())
                    .map_err(map_daos)?;
                let h = self.next_handle;
                self.next_handle += 1;
                self.handles.insert(h, id);
                Ok((FileId(h), self.overhead().then(s)))
            }
            None if create => {
                let (file_class, chunk) = (self.opts.file_class, self.opts.chunk_size);
                let (arr, s1) = self
                    .daos
                    .borrow_mut()
                    .array_create(client, self.cid, file_class, chunk)
                    .map_err(map_daos)?;
                let id = InodeId(self.inodes.len() as u32);
                self.inodes.push(Inode {
                    kind: InodeKind::File { arr },
                    nlink: 1,
                });
                let s2 = self.insert_dirent(client, parent, name, id, arr, 0, "")?;
                let h = self.next_handle;
                self.next_handle += 1;
                self.handles.insert(h, id);
                Ok((FileId(h), Step::seq([self.overhead(), s1, s2])))
            }
            None => Err(FsError::NotFound),
        }
    }

    /// Create a symbolic link at `path` pointing to `target`.
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn symlink(&mut self, client: usize, target: &str, path: &str) -> Result<Step, FsError> {
        let (pid, name, step) = self.resolve_parent(client, path)?;
        if self.child_of(pid, name).is_some() {
            return Err(FsError::Exists);
        }
        let id = InodeId(self.inodes.len() as u32);
        self.inodes.push(Inode {
            kind: InodeKind::Symlink {
                target: target.to_string(),
            },
            nlink: 1,
        });
        // symlinks need no object of their own; the dirent carries the target
        let oid = Oid::encode(0, ObjectClass::S1, 0);
        let s = self.insert_dirent(client, pid, name, id, oid, 2, target)?;
        Ok(step.then(s))
    }

    /// Read a symlink's target.
    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    pub fn readlink(&mut self, client: usize, path: &str) -> Result<(String, Step), FsError> {
        let (id, step) = self.resolve(client, path, false)?;
        match &self.inode(id).kind {
            InodeKind::Symlink { target } => Ok((target.clone(), step)),
            _ => Err(FsError::Other("not a symlink")),
        }
    }

    /// Rename an entry (same-directory or cross-directory).
    // simlint::allow(digest-taint) — admin/API surface not yet driven by any digest scenario; wire into a scenario before relying on replay to witness it
    pub fn rename(&mut self, client: usize, from: &str, to: &str) -> Result<Step, FsError> {
        let (from_pid, from_name, s1) = self.resolve_parent(client, from)?;
        let child = self
            .child_of(from_pid, from_name)
            .ok_or(FsError::NotFound)?;
        let (to_pid, to_name, s2) = self.resolve_parent(client, to)?;
        // remove source dirent
        let from_kv = self.dir_kv(from_pid)?;
        let s3 = self
            .daos
            .borrow_mut()
            .kv_remove(client, self.cid, from_kv, from_name.as_bytes())
            .map_err(map_daos)?;
        if let InodeKind::Dir { entries, .. } = &mut self.inodes[from_pid.0 as usize].kind {
            entries.remove(from_name);
        }
        // overwrite destination if present
        if let Some(old) = self.child_of(to_pid, to_name) {
            let _ = old;
            let to_kv = self.dir_kv(to_pid)?;
            let _ = self
                .daos
                .borrow_mut()
                .kv_remove(client, self.cid, to_kv, to_name.as_bytes());
            if let InodeKind::Dir { entries, .. } = &mut self.inodes[to_pid.0 as usize].kind {
                entries.remove(to_name);
            }
        }
        let oid = self.inode_oid(child);
        let s4 = self.insert_dirent(
            client,
            to_pid,
            to_name,
            child,
            oid,
            self.kind_byte(child),
            "",
        )?;
        Ok(Step::seq([s1, s2, s3, s4]))
    }

    fn child_of(&self, dir: InodeId, name: &str) -> Option<InodeId> {
        match &self.inode(dir).kind {
            InodeKind::Dir { entries, .. } => entries.get(name).copied(),
            _ => None,
        }
    }

    fn dir_kv(&self, dir: InodeId) -> Result<Oid, FsError> {
        match &self.inode(dir).kind {
            InodeKind::Dir { kv, .. } => Ok(*kv),
            _ => Err(FsError::NotDir),
        }
    }

    fn inode_oid(&self, id: InodeId) -> Oid {
        match &self.inode(id).kind {
            InodeKind::Dir { kv, .. } => *kv,
            InodeKind::File { arr } => *arr,
            InodeKind::Symlink { .. } => Oid::encode(0, ObjectClass::S1, 0),
        }
    }

    fn kind_byte(&self, id: InodeId) -> u8 {
        match &self.inode(id).kind {
            InodeKind::Dir { .. } => 1,
            InodeKind::File { .. } => 0,
            InodeKind::Symlink { .. } => 2,
        }
    }

    /// Number of live inodes (diagnostics).
    pub fn inode_count(&self) -> usize {
        self.inodes.iter().filter(|i| i.nlink > 0).count()
    }

    /// The Array object backing an open file — lets tests read a file
    /// written through DFS back through raw libdaos, the cross-interface
    /// visibility the paper relies on.
    pub fn file_object(&self, f: FileId) -> Result<Oid, FsError> {
        let id = self.handles.get(&f.0).ok_or(FsError::BadHandle)?;
        match &self.inode(*id).kind {
            InodeKind::File { arr } => Ok(*arr),
            _ => Err(FsError::IsDir),
        }
    }

    /// Audit namespace connectivity: walk every directory from the root
    /// and check that each dirent is still readable from its directory
    /// KV object (and, in Full data mode, still decodes to the child it
    /// names), that each file's backing Array object answers a size
    /// query, and that no live inode has become unreachable from the
    /// root.  Any failure is the namespace equivalent of a torn write —
    /// a name that resolves in the cache but not in the store.
    ///
    /// Offline audit for the chaos oracles: returned `Step` costs are
    /// discarded and the simulated schedule is not perturbed.
    // simlint::allow(digest-taint) — offline audit: cost steps are discarded; only crash-detection bookkeeping is touched, after quiescence
    pub fn verify_connectivity(&mut self, client: usize) -> OracleReport {
        let mut report = OracleReport::default();
        let mut daos = self.daos.borrow_mut();
        // detection is monotone per (client, target), so one retry per
        // pool target bounds the TargetDown absorption loop
        let budget = daos.pool().total_targets();
        let full = daos.data_mode() == daos_core::DataMode::Full;
        let mut reached = vec![false; self.inodes.len()];
        reached[self.root().0 as usize] = true;
        // (inode, path) breadth-first over the in-memory tree
        let mut queue = vec![(self.root(), String::from("/"))];
        while let Some((dir, path)) = queue.pop() {
            let (kv, entries) = match &self.inode(dir).kind {
                InodeKind::Dir { kv, entries } => (*kv, entries.clone()),
                _ => continue,
            };
            for (name, child) in entries {
                let child_path = format!("{}{}", path, name);
                report.checked_kv += 1;
                if let Some(r) = reached.get_mut(child.0 as usize) {
                    *r = true;
                }
                let mut got = daos.kv_get(client, self.cid, kv, name.as_bytes());
                let mut left = budget;
                while matches!(got, Err(DaosError::TargetDown)) && left > 0 {
                    left -= 1;
                    got = daos.kv_get(client, self.cid, kv, name.as_bytes());
                }
                match got {
                    Ok((dirent, _s)) => {
                        if full {
                            if let Some(detail) = dirent_mismatch(
                                dirent.bytes(),
                                self.kind_byte(child),
                                self.inode_oid(child),
                            ) {
                                report.violations.push(Violation {
                                    oracle: OracleKind::NamespaceConnectivity,
                                    subject: format!("dirent {child_path}"),
                                    detail,
                                });
                            }
                        }
                    }
                    Err(e) => report.violations.push(Violation {
                        oracle: OracleKind::NamespaceConnectivity,
                        subject: format!("dirent {child_path}"),
                        detail: format!("entry resolves in cache but store read failed: {e:?}"),
                    }),
                }
                match &self.inode(child).kind {
                    InodeKind::File { arr } => {
                        report.checked_extents += 1;
                        let mut got = daos.array_get_size(client, self.cid, *arr);
                        let mut left = budget;
                        while matches!(got, Err(DaosError::TargetDown)) && left > 0 {
                            left -= 1;
                            got = daos.array_get_size(client, self.cid, *arr);
                        }
                        if let Err(e) = got {
                            report.violations.push(Violation {
                                oracle: OracleKind::NamespaceConnectivity,
                                subject: format!("file {child_path}"),
                                detail: format!("backing Array object lost: {e:?}"),
                            });
                        }
                    }
                    InodeKind::Dir { .. } => queue.push((child, format!("{child_path}/"))),
                    InodeKind::Symlink { .. } => {}
                }
            }
        }
        for (i, inode) in self.inodes.iter().enumerate() {
            if inode.nlink > 0 && !reached[i] {
                report.violations.push(Violation {
                    oracle: OracleKind::NamespaceConnectivity,
                    subject: format!("inode {i}"),
                    detail: "live inode unreachable from the root".into(),
                });
            }
        }
        report
    }
}

/// Full-mode dirent content check: the packed bytes must name the same
/// child the in-memory tree does.
fn dirent_mismatch(bytes: Option<&[u8]>, kind: u8, oid: Oid) -> Option<String> {
    let Some(b) = bytes else {
        return Some("dirent payload not materialised in Full mode".into());
    };
    if b.len() < 17 {
        return Some(format!("dirent truncated: {} bytes", b.len()));
    }
    if b[0] != kind {
        return Some(format!("dirent kind {} but inode kind {kind}", b[0]));
    }
    let hi = u64::from_le_bytes(b[1..9].try_into().expect("sliced to 8"));
    let lo = u64::from_le_bytes(b[9..17].try_into().expect("sliced to 8"));
    if (Oid { hi, lo }) != oid {
        return Some(format!(
            "dirent points at {:x}.{:x} but inode holds {:x}.{:x}",
            hi, lo, oid.hi, oid.lo
        ));
    }
    None
}

fn map_daos(e: DaosError) -> FsError {
    match e {
        // Transient DAOS failures surface as `Unavailable`, the POSIX
        // layer's retriable error (see `daos_core::retry::Retriable`).
        // BadChecksum is retriable like TargetDown: a scrub repair or a
        // rewrite may heal the extent between attempts.
        DaosError::Unavailable
        | DaosError::Timeout
        | DaosError::TargetDown
        | DaosError::BadChecksum
        | DaosError::Retriable => FsError::Unavailable,
        DaosError::NoSuchKey | DaosError::NoSuchObject => FsError::NotFound,
        DaosError::NoSuchContainer => FsError::Other("container gone"),
        DaosError::WrongObjectType => FsError::Other("object type mismatch"),
        DaosError::InvalidClass => FsError::Other("invalid class"),
    }
}

impl PosixFs for Dfs {
    fn mkdir(&mut self, client: usize, path: &str) -> Result<Step, FsError> {
        let (pid, name, s1) = self.resolve_parent(client, path)?;
        if self.child_of(pid, name).is_some() {
            return Err(FsError::Exists);
        }
        let dir_class = self.opts.dir_class;
        let (kv, s2) = self
            .daos
            .borrow_mut()
            .kv_create(client, self.cid, dir_class)
            .map_err(map_daos)?;
        let id = InodeId(self.inodes.len() as u32);
        self.inodes.push(Inode {
            kind: InodeKind::Dir {
                kv,
                entries: BTreeMap::new(),
            },
            nlink: 1,
        });
        let s3 = self.insert_dirent(client, pid, name, id, kv, 1, "")?;
        Ok(Step::span("libdfs", "mkdir", 0, Step::seq([s1, s2, s3])))
    }

    fn open(&mut self, client: usize, path: &str, create: bool) -> Result<(FileId, Step), FsError> {
        let existing = self.resolve(client, path, true);
        let (id, step) = match existing {
            Ok((id, s)) => {
                if matches!(self.inode(id).kind, InodeKind::Dir { .. }) {
                    return Err(FsError::IsDir);
                }
                (id, s)
            }
            Err(FsError::NotFound) if create => {
                let (pid, name, s1) = self.resolve_parent(client, path)?;
                let (file_class, chunk) = (self.opts.file_class, self.opts.chunk_size);
                let (arr, s2) = self
                    .daos
                    .borrow_mut()
                    .array_create(client, self.cid, file_class, chunk)
                    .map_err(map_daos)?;
                let id = InodeId(self.inodes.len() as u32);
                self.inodes.push(Inode {
                    kind: InodeKind::File { arr },
                    nlink: 1,
                });
                let s3 = self.insert_dirent(client, pid, name, id, arr, 0, "")?;
                (id, Step::seq([s1, s2, s3]))
            }
            Err(e) => return Err(e),
        };
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, id);
        Ok((FileId(h), Step::span("libdfs", "open", 0, step)))
    }

    fn write(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        data: Payload,
    ) -> Result<Step, FsError> {
        let arr = self.file_object(f)?;
        let cid = self.cid;
        let retry = &mut self.retry;
        let daos = &self.daos;
        let bytes = data.len();
        let s = retry.run_step(|| {
            daos.borrow_mut()
                .array_write(client, cid, arr, offset, data.clone())
                .map_err(map_daos)
        })?;
        Ok(Step::span(
            "libdfs",
            "write",
            bytes,
            self.overhead().then(s),
        ))
    }

    fn read(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), FsError> {
        let arr = self.file_object(f)?;
        let cid = self.cid;
        let retry = &mut self.retry;
        let daos = &self.daos;
        let (data, s) = retry.run(|| {
            daos.borrow_mut()
                .array_read(client, cid, arr, offset, len)
                .map_err(map_daos)
        })?;
        let s = Step::span("libdfs", "read", len, self.overhead().then(s));
        Ok((data, s))
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn fstat(&mut self, client: usize, f: FileId) -> Result<(FileStat, Step), FsError> {
        let arr = self.file_object(f)?;
        let (size, s) = self
            .daos
            .borrow_mut()
            .array_get_size(client, self.cid, arr)
            .map_err(map_daos)?;
        Ok((
            FileStat {
                size,
                is_dir: false,
            },
            Step::span("libdfs", "fstat", 0, self.overhead().then(s)),
        ))
    }

    fn stat(&mut self, client: usize, path: &str) -> Result<(FileStat, Step), FsError> {
        let (id, s1) = self.resolve(client, path, true)?;
        match &self.inode(id).kind {
            InodeKind::Dir { .. } => Ok((
                FileStat {
                    size: 0,
                    is_dir: true,
                },
                s1,
            )),
            InodeKind::File { arr } => {
                let arr = *arr;
                let (size, s2) = self
                    .daos
                    .borrow_mut()
                    .array_get_size(client, self.cid, arr)
                    .map_err(map_daos)?;
                Ok((
                    FileStat {
                        size,
                        is_dir: false,
                    },
                    Step::span("libdfs", "stat", 0, s1.then(s2)),
                ))
            }
            InodeKind::Symlink { .. } => Ok((
                FileStat {
                    size: 0,
                    is_dir: false,
                },
                s1,
            )),
        }
    }

    fn close(&mut self, _client: usize, f: FileId) -> Result<Step, FsError> {
        self.handles.remove(&f.0).ok_or(FsError::BadHandle)?;
        Ok(self.overhead())
    }

    fn unlink(&mut self, client: usize, path: &str) -> Result<Step, FsError> {
        let (pid, name, s1) = self.resolve_parent(client, path)?;
        let id = self.child_of(pid, name).ok_or(FsError::NotFound)?;
        // directories must be empty
        if let InodeKind::Dir { entries, .. } = &self.inode(id).kind {
            if !entries.is_empty() {
                return Err(FsError::NotEmpty);
            }
        }
        let kv = self.dir_kv(pid)?;
        let s2 = self
            .daos
            .borrow_mut()
            .kv_remove(client, self.cid, kv, name.as_bytes())
            .map_err(map_daos)?;
        if let InodeKind::Dir { entries, .. } = &mut self.inodes[pid.0 as usize].kind {
            entries.remove(name);
        }
        // punch the backing object (files and dirs have one)
        let oid = self.inode_oid(id);
        let s3 = if self.kind_byte(id) != 2 {
            self.daos
                .borrow_mut()
                .obj_punch(client, self.cid, oid)
                .unwrap_or(Step::Noop)
        } else {
            Step::Noop
        };
        self.inodes[id.0 as usize].nlink = 0;
        Ok(Step::span("libdfs", "unlink", 0, Step::seq([s1, s2, s3])))
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn readdir(&mut self, client: usize, path: &str) -> Result<(Vec<String>, Step), FsError> {
        let (id, s1) = self.resolve(client, path, true)?;
        let kv = self.dir_kv(id)?;
        let (_keys, s2) = self
            .daos
            .borrow_mut()
            .kv_list(client, self.cid, kv, b"")
            .map_err(map_daos)?;
        // the inode table names are authoritative for ordering
        let names = match &self.inode(id).kind {
            InodeKind::Dir { entries, .. } => entries.keys().cloned().collect(),
            _ => return Err(FsError::NotDir),
        };
        Ok((names, Step::span("libdfs", "readdir", 0, s1.then(s2))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::{ContainerProps, DataMode};
    use simkit::{run, OpId, Scheduler, World};

    struct Sink;
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
    }

    fn exec(sched: &mut Scheduler, step: Step) {
        sched.submit(step, OpId(0));
        run(sched, &mut Sink);
    }

    fn mount(mode: DataMode) -> (Scheduler, Dfs) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, mode);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
        exec(&mut sched, s);
        (sched, dfs)
    }

    #[test]
    fn mkdir_create_write_read() {
        let (mut sched, mut dfs) = mount(DataMode::Full);
        exec(&mut sched, dfs.mkdir(0, "/data").unwrap());
        let (f, s) = dfs.open(0, "/data/file.bin", true).unwrap();
        exec(&mut sched, s);
        let payload = Payload::Bytes((0..=255u8).collect());
        exec(&mut sched, dfs.write(0, f, 100, payload).unwrap());
        let (r, s) = dfs.read(0, f, 100, 256).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &(0..=255u8).collect::<Vec<_>>()[..]);
        let (st, s) = dfs.fstat(0, f).unwrap();
        exec(&mut sched, s);
        assert_eq!(st.size, 356);
        exec(&mut sched, dfs.close(0, f).unwrap());
    }

    #[test]
    fn connectivity_oracle_catches_lost_dirent_and_object() {
        let (mut sched, mut dfs) = mount(DataMode::Full);
        exec(&mut sched, dfs.mkdir(0, "/data").unwrap());
        exec(&mut sched, dfs.mkdir(0, "/data/sub").unwrap());
        let (f, s) = dfs.open(0, "/data/sub/file.bin", true).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            dfs.write(0, f, 0, Payload::Bytes(vec![7u8; 4096])).unwrap(),
        );
        let report = dfs.verify_connectivity(0);
        assert!(
            report.ok(),
            "healthy namespace must audit clean:\n{}",
            report.render()
        );
        assert_eq!(report.checked_kv, 3, "three dirents walked");
        assert_eq!(report.checked_extents, 1, "one file object probed");

        // Plant a torn namespace: drop the dirent for /data/sub from the
        // store, leaving the in-memory cache believing it exists.
        let cid = dfs.container();
        let data_kv = dfs
            .dir_kv(dfs.child_of(dfs.root(), "data").unwrap())
            .unwrap();
        let s = dfs
            .daos()
            .borrow_mut()
            .kv_remove(0, cid, data_kv, b"sub")
            .unwrap();
        exec(&mut sched, s);
        let report = dfs.verify_connectivity(0);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.oracle, OracleKind::NamespaceConnectivity);
        assert!(v.subject.contains("/data/sub"), "{}", v.subject);
        assert!(
            v.detail.contains("NotFound") || v.detail.contains("NoSuchKey"),
            "{}",
            v.detail
        );

        // Plant a lost file object: punch the Array behind the namespace.
        let arr = dfs.file_object(f).unwrap();
        let s = dfs.daos().borrow_mut().obj_punch(0, cid, arr).unwrap();
        exec(&mut sched, s);
        let report = dfs.verify_connectivity(0);
        assert!(report
            .violations
            .iter()
            .any(|v| v.subject.contains("file.bin") && v.detail.contains("lost")));
    }

    #[test]
    fn namespace_errors() {
        let (mut sched, mut dfs) = mount(DataMode::Full);
        assert_eq!(
            dfs.open(0, "/missing", false).unwrap_err(),
            FsError::NotFound
        );
        assert_eq!(
            dfs.mkdir(0, "/a/b").unwrap_err(),
            FsError::NotFound,
            "parent missing"
        );
        exec(&mut sched, dfs.mkdir(0, "/a").unwrap());
        assert_eq!(dfs.mkdir(0, "/a").unwrap_err(), FsError::Exists);
        let (f, s) = dfs.open(0, "/a/f", true).unwrap();
        exec(&mut sched, s);
        exec(&mut sched, dfs.close(0, f).unwrap());
        assert_eq!(dfs.unlink(0, "/a").unwrap_err(), FsError::NotEmpty);
        assert_eq!(dfs.open(0, "/a", false).unwrap_err(), FsError::IsDir);
        assert_eq!(dfs.open(0, "/a/f/g", false).unwrap_err(), FsError::NotDir);
    }

    #[test]
    fn readdir_lists_sorted() {
        let (mut sched, mut dfs) = mount(DataMode::Sized);
        exec(&mut sched, dfs.mkdir(0, "/d").unwrap());
        for name in ["zz", "aa", "mm"] {
            let (f, s) = dfs.open(0, &format!("/d/{name}"), true).unwrap();
            exec(&mut sched, s);
            exec(&mut sched, dfs.close(0, f).unwrap());
        }
        let (names, s) = dfs.readdir(0, "/d").unwrap();
        exec(&mut sched, s);
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn unlink_removes_and_frees_object() {
        let (mut sched, mut dfs) = mount(DataMode::Sized);
        let (f, s) = dfs.open(0, "/f", true).unwrap();
        exec(&mut sched, s);
        exec(&mut sched, dfs.close(0, f).unwrap());
        let cid = dfs.container();
        let before = dfs.daos().borrow().object_count(cid).unwrap();
        exec(&mut sched, dfs.unlink(0, "/f").unwrap());
        let after = dfs.daos().borrow().object_count(cid).unwrap();
        assert_eq!(after, before - 1);
        assert_eq!(dfs.open(0, "/f", false).unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn symlinks_resolve_and_loop_detect() {
        let (mut sched, mut dfs) = mount(DataMode::Full);
        exec(&mut sched, dfs.mkdir(0, "/real").unwrap());
        let (f, s) = dfs.open(0, "/real/data", true).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            dfs.write(0, f, 0, Payload::Bytes(vec![7; 10])).unwrap(),
        );
        exec(&mut sched, dfs.close(0, f).unwrap());
        exec(&mut sched, dfs.symlink(0, "/real", "/link").unwrap());
        let (f2, s) = dfs.open(0, "/link/data", false).unwrap();
        exec(&mut sched, s);
        let (r, s) = dfs.read(0, f2, 0, 10).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &[7; 10]);
        let (t, _) = dfs.readlink(0, "/link").unwrap();
        assert_eq!(t, "/real");
        // loop
        exec(&mut sched, dfs.symlink(0, "/loop2", "/loop1").unwrap());
        exec(&mut sched, dfs.symlink(0, "/loop1", "/loop2").unwrap());
        assert_eq!(
            dfs.open(0, "/loop1/x", false).unwrap_err(),
            FsError::SymlinkLoop
        );
    }

    #[test]
    fn rename_moves_entries() {
        let (mut sched, mut dfs) = mount(DataMode::Full);
        exec(&mut sched, dfs.mkdir(0, "/src").unwrap());
        exec(&mut sched, dfs.mkdir(0, "/dst").unwrap());
        let (f, s) = dfs.open(0, "/src/f", true).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            dfs.write(0, f, 0, Payload::Bytes(vec![1, 2, 3])).unwrap(),
        );
        exec(&mut sched, dfs.close(0, f).unwrap());
        exec(&mut sched, dfs.rename(0, "/src/f", "/dst/g").unwrap());
        assert_eq!(dfs.open(0, "/src/f", false).unwrap_err(), FsError::NotFound);
        let (f2, s) = dfs.open(0, "/dst/g", false).unwrap();
        exec(&mut sched, s);
        let (r, s) = dfs.read(0, f2, 0, 3).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn cross_interface_visibility() {
        // A file written through DFS is readable through raw libdaos.
        let (mut sched, mut dfs) = mount(DataMode::Full);
        let (f, s) = dfs.open(0, "/shared", true).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            dfs.write(0, f, 0, Payload::Bytes(vec![0xab; 64])).unwrap(),
        );
        let oid = dfs.file_object(f).unwrap();
        let cid = dfs.container();
        let (data, s) = dfs
            .daos()
            .borrow_mut()
            .array_read(0, cid, oid, 0, 64)
            .unwrap();
        exec(&mut sched, s);
        assert_eq!(data.bytes().unwrap(), &[0xab; 64]);
    }
}
