//! [`ProcWorkload`] adapters for Field I/O and fdb-hammer.
//!
//! (IOR implements the trait itself in `ior-bench`; these two wrap the
//! application libraries with the paper's process/sequence structure.)

use cluster::bench::{pin_round_robin, Phase, ProcWorkload};
use cluster::payload::Payload;
use fdb_sim::{Fdb, FieldKey};
use field_io::FieldIo;
use simkit::Step;

/// Field I/O as a parallel workload: each process writes/reads a
/// sequence of fields.
pub struct FieldIoWorkload {
    /// The benchmark state.
    pub fio: FieldIo,
    pins: Vec<usize>,
    ops: usize,
    bytes: u64,
    /// Active phase.
    pub phase: Phase,
}

impl FieldIoWorkload {
    /// Build over a configured [`FieldIo`].
    pub fn new(fio: FieldIo, procs: usize, nodes: usize, ops: usize, bytes: u64) -> Self {
        FieldIoWorkload {
            fio,
            pins: pin_round_robin(procs, nodes),
            ops,
            bytes,
            phase: Phase::Write,
        }
    }
}

impl ProcWorkload for FieldIoWorkload {
    fn procs(&self) -> usize {
        self.pins.len()
    }
    fn node_of(&self, proc: usize) -> usize {
        self.pins[proc]
    }
    fn ops_per_proc(&self) -> usize {
        self.ops
    }
    fn bytes_per_op(&self) -> f64 {
        self.bytes as f64
    }
    // simlint::allow(panic-path) — benchmark setup: a failed create/open before measurement is a scenario-configuration error, not degraded-mode state
    fn setup(&mut self, proc: usize) -> Step {
        match self.phase {
            Phase::Write => self
                .fio
                .setup_proc(self.pins[proc], proc)
                .expect("field-io setup"),
            Phase::Read => Step::Noop,
        }
    }
    // simlint::allow(panic-path) — benchmark driver: a failure that survives the retry executor is a scenario-configuration error; aborting loudly beats reporting skewed bandwidth
    fn op(&mut self, proc: usize, idx: usize) -> Step {
        let node = self.pins[proc];
        match self.phase {
            Phase::Write => self
                .fio
                .write_field(node, proc, idx, Payload::Sized(self.bytes))
                .expect("field-io write"),
            Phase::Read => {
                self.fio
                    .read_field(node, proc, idx)
                    .expect("field-io read")
                    .1
            }
        }
    }
}

/// fdb-hammer as a parallel workload: each process archives/retrieves a
/// sequence of fields through any [`Fdb`] backend.
pub struct FdbWorkload<B: Fdb> {
    /// The FDB backend under test.
    pub fdb: B,
    pins: Vec<usize>,
    ops: usize,
    bytes: u64,
    /// Active phase.
    pub phase: Phase,
}

impl<B: Fdb> FdbWorkload<B> {
    /// Build over a configured backend.
    pub fn new(fdb: B, procs: usize, nodes: usize, ops: usize, bytes: u64) -> Self {
        FdbWorkload {
            fdb,
            pins: pin_round_robin(procs, nodes),
            ops,
            bytes,
            phase: Phase::Write,
        }
    }
}

impl<B: Fdb> ProcWorkload for FdbWorkload<B> {
    fn procs(&self) -> usize {
        self.pins.len()
    }
    fn node_of(&self, proc: usize) -> usize {
        self.pins[proc]
    }
    fn ops_per_proc(&self) -> usize {
        self.ops
    }
    fn bytes_per_op(&self) -> f64 {
        self.bytes as f64
    }
    // simlint::allow(panic-path) — benchmark setup: a failed create/open before measurement is a scenario-configuration error, not degraded-mode state
    fn setup(&mut self, proc: usize) -> Step {
        match self.phase {
            Phase::Write => self
                .fdb
                .setup_proc(self.pins[proc], proc)
                .expect("fdb setup"),
            Phase::Read => Step::Noop,
        }
    }
    // simlint::allow(panic-path) — benchmark driver: a failure that survives the retry executor is a scenario-configuration error; aborting loudly beats reporting skewed bandwidth
    fn op(&mut self, proc: usize, idx: usize) -> Step {
        let node = self.pins[proc];
        let key = FieldKey::sequence(proc, idx);
        match self.phase {
            Phase::Write => self
                .fdb
                .archive(node, proc, &key, Payload::Sized(self.bytes))
                .expect("fdb archive"),
            Phase::Read => self.fdb.retrieve(node, proc, &key).expect("fdb retrieve").1,
        }
    }
    // simlint::allow(panic-path) — benchmark driver: a failure that survives the retry executor is a scenario-configuration error; aborting loudly beats reporting skewed bandwidth
    fn finalize(&mut self, proc: usize) -> Step {
        match self.phase {
            Phase::Write => self.fdb.flush(self.pins[proc], proc).expect("fdb flush"),
            Phase::Read => Step::Noop,
        }
    }
    fn finalize_in_window(&self) -> bool {
        // the final flush of buffered writers carries real field data
        self.phase == Phase::Write
    }
}
