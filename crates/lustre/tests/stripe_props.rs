//! Property tests for the Lustre striping math and namespace.

use cluster::payload::Payload;
use cluster::posix::PosixFs;
use cluster::ClusterSpec;
use lustre_sim::{LustreDataMode, LustreSystem, StripeOpts};
use proptest::prelude::*;
use simkit::{ResourceId, Scheduler, Step};

/// Sum the bytes of the transfers that touch an NVMe device (the OST
/// data movements; service ops run on "lustre.*" resources).
fn data_bytes(s: &Step, sched: &Scheduler) -> f64 {
    match s {
        Step::Transfer { units, path }
            if path
                .iter()
                .any(|&r| sched.resource_name(r).contains("nvme")) =>
        {
            *units
        }
        Step::Seq(v) | Step::Par(v) => v.iter().map(|s| data_bytes(s, sched)).sum(),
        Step::Span { inner, .. } => data_bytes(inner, sched),
        _ => 0.0,
    }
}

/// Distinct data-carrying device resources in a step tree.
fn touched_devices(s: &Step, out: &mut std::collections::HashSet<ResourceId>, sched: &Scheduler) {
    match s {
        Step::Transfer { path, .. } => {
            for &r in path {
                if sched.resource_name(r).contains("nvme")
                    && !sched.resource_name(r).contains("pool")
                {
                    out.insert(r);
                }
            }
        }
        Step::Seq(v) | Step::Par(v) => v.iter().for_each(|s| touched_devices(s, out, sched)),
        Step::Span { inner, .. } => touched_devices(inner, out, sched),
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A write's OST transfers always account for exactly the written
    /// bytes, whatever the offset/length/striping.
    #[test]
    fn stripe_bytes_conserved(
        stripe_count in 1usize..12,
        stripe_mib in 1u64..9,
        off in 0u64..(64 << 20),
        len in 1u64..(32 << 20),
    ) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut fs = LustreSystem::deploy(
            &topo,
            &mut sched,
            2,
            LustreDataMode::Sized,
            StripeOpts { count: stripe_count, size: stripe_mib << 20 },
        );
        let (f, _) = fs.open(0, "/f", true).unwrap();
        let step = fs.write(0, f, off, Payload::Sized(len)).unwrap();
        let moved = data_bytes(&step, &sched);
        prop_assert!((moved - len as f64).abs() < 1.0, "moved {moved} of {len}");
        // and never touches more devices than stripes
        let mut devs = std::collections::HashSet::new();
        touched_devices(&step, &mut devs, &sched);
        // write devices only (read devices unused)
        prop_assert!(devs.len() <= stripe_count, "{} devices for {stripe_count} stripes", devs.len());
    }

    /// Reads return exactly the requested length in Sized mode.
    #[test]
    fn read_lengths_exact(off in 0u64..(8 << 20), len in 1u64..(8 << 20)) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(1, 1).build(&mut sched);
        let mut fs = LustreSystem::deploy(
            &topo,
            &mut sched,
            1,
            LustreDataMode::Sized,
            StripeOpts { count: 4, size: 1 << 20 },
        );
        let (f, _) = fs.open(0, "/f", true).unwrap();
        let _ = fs.write(0, f, 0, Payload::Sized(off + len)).unwrap();
        let (data, step) = fs.read(0, f, off, len).unwrap();
        prop_assert_eq!(data.len(), len);
        prop_assert!((data_bytes(&step, &sched) - len as f64).abs() < 1.0);
    }
}
