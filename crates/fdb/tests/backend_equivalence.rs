//! Backend equivalence: the same archive/retrieve/list session produces
//! identical logical results on all three storage backends — the
//! abstraction FDB promises its applications (§II-A4: "effectively
//! abstracting [the storage system] away").

use cluster::{ClusterSpec, Payload};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use fdb_sim::{Fdb, FdbCeph, FdbDaos, FdbPosix, FieldKey, KeyQuery};
use lustre_sim::{LustreDataMode, LustreSystem, StripeOpts};
use simkit::{run, OpId, Scheduler, SplitMix64, Step, World};
use std::cell::RefCell;
use std::rc::Rc;

struct Sink;
impl World for Sink {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {}
}

fn exec(sched: &mut Scheduler, step: Step) {
    sched.submit(step, OpId(0));
    run(sched, &mut Sink);
}

/// Drive an identical session on a backend; return (listing of member 1,
/// retrieved bytes of a probe key).
fn session<B: Fdb>(sched: &mut Scheduler, fdb: &mut B) -> (Vec<FieldKey>, Vec<u8>) {
    let mut rng = SplitMix64::new(0xfdb);
    let mut probe = Vec::new();
    for member in 0..3usize {
        for i in 0..5usize {
            let key = FieldKey::sequence(member, i);
            let mut field = vec![0u8; 10_000 + i * 100];
            rng.fill_bytes(&mut field);
            if member == 1 && i == 3 {
                probe = field.clone();
            }
            let s = fdb.archive(0, member, &key, Payload::Bytes(field)).unwrap();
            exec(sched, s);
        }
        let s = fdb.flush(0, member).unwrap();
        exec(sched, s);
    }
    let (keys, s) = fdb.list(0, &KeyQuery::member(1)).unwrap();
    exec(sched, s);
    let (data, s) = fdb.retrieve(0, 9, &FieldKey::sequence(1, 3)).unwrap();
    exec(sched, s);
    (keys, probe_check(data.bytes().unwrap(), &probe))
}

fn probe_check(got: &[u8], expect: &[u8]) -> Vec<u8> {
    assert_eq!(got, expect, "retrieved bytes must match archived bytes");
    got.to_vec()
}

#[test]
fn all_backends_agree() {
    // DAOS
    let daos_result = {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (mut fdb, s) = FdbDaos::new(daos, 0, cid, ObjectClass::S1, ObjectClass::S1).unwrap();
        exec(&mut sched, s);
        session(&mut sched, &mut fdb)
    };
    // Lustre (POSIX backend)
    let lustre_result = {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let fs = LustreSystem::deploy(
            &topo,
            &mut sched,
            2,
            LustreDataMode::Full,
            StripeOpts {
                count: 4,
                size: 1 << 20,
            },
        );
        let mut fdb = FdbPosix::new(fs, (4u64 << 20) as f64).unwrap();
        session(&mut sched, &mut fdb)
    };
    // Ceph
    let ceph_result = {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let ceph = ceph_sim::CephSystem::deploy(
            &topo,
            &mut sched,
            2,
            ceph_sim::CephDataMode::Full,
            ceph_sim::CephPoolOpts::default(),
        )
        .unwrap();
        let mut fdb = FdbCeph::new(ceph);
        session(&mut sched, &mut fdb)
    };

    assert_eq!(
        daos_result.0, lustre_result.0,
        "listings agree (daos vs lustre)"
    );
    assert_eq!(
        daos_result.0, ceph_result.0,
        "listings agree (daos vs ceph)"
    );
    assert_eq!(
        daos_result.1, lustre_result.1,
        "bytes agree (daos vs lustre)"
    );
    assert_eq!(daos_result.1, ceph_result.1, "bytes agree (daos vs ceph)");
    assert_eq!(daos_result.0.len(), 5, "five fields for member 1");
}
