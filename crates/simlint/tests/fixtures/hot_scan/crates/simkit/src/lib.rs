//! Hot-state-scan fixture: O(all-entries) work per event.
//!
//! `Flows` is registered sim state; `drain_tick` is the hot root.  The
//! scan inside `settle` is the true positive.  `audit` has the same
//! shape but is never reached from the hot root, and `rebalance` is
//! reached but carries an allow with a written reason — both stay
//! silent.

use std::collections::BTreeMap;

// simlint::sim_state
pub struct Flows {
    live: BTreeMap<u32, u64>,
    total: u64,
}

impl Flows {
    // simlint::hot_root — fixture drain loop
    pub fn drain_tick(&mut self) {
        self.settle();
        self.rebalance();
    }

    // True positive: scans every live flow on the hot path.
    fn settle(&mut self) {
        for (_, v) in self.live.iter() {
            self.total = self.total.wrapping_add(*v);
        }
    }

    // Reached from the hot root, but deliberately exempt.
    fn rebalance(&mut self) {
        // simlint::allow(hot-state-scan) — fixture: the rebalance scan is explicitly budgeted
        for v in self.live.values() {
            self.total = self.total.wrapping_add(*v);
        }
    }

    // Clean: same scan shape, never reached from the hot root.
    pub fn audit(&self) -> u64 {
        let mut sum = 0u64;
        for v in self.live.values() {
            sum = sum.wrapping_add(*v);
        }
        sum
    }
}
