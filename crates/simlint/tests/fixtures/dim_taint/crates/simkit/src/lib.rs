//! Fixture engine surface: the registered nanosecond and byte sinks.

pub mod units;

pub enum Step {
    Noop,
    Delay(u64),
    Transfer(f64),
}

impl Step {
    /// Fixed delay in nanoseconds.
    // simlint::dim(ns: ns)
    pub fn delay(ns: u64) -> Step {
        Step::Delay(ns)
    }

    /// Shared transfer of `units` bytes.
    // simlint::dim(units: bytes)
    pub fn transfer(units: f64) -> Step {
        Step::Transfer(units)
    }
}
