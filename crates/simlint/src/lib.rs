//! `simlint` — a determinism lint pass for the daos-io-sim workspace.
//!
//! The simulator's top-line contract (see `simkit/src/lib.rs`) is that
//! identical inputs produce identical schedules.  That contract is easy to
//! break silently: iterate a `HashMap` while summing `f64`s or building a
//! step list and the result depends on hash seeding; read `Instant::now()`
//! or `std::env` inside sim logic and the result depends on the host.
//!
//! This crate is a line/token-level static-analysis pass over all workspace
//! `.rs` sources.  It is std-only (zero external deps) so it builds offline
//! and runs in CI in milliseconds.  It is deliberately *not* a parser: the
//! scanner strips comments and string/char literals, skips `#[cfg(test)]`
//! items, and then matches identifier tokens — crude, but fast, dependency
//! free, and precise enough for a curated rule set over one codebase.
//!
//! # Rules
//!
//! | id | severity | scope | flags |
//! |----|----------|-------|-------|
//! | `hash-collections-in-sim-state` | error | sim crates | `HashMap` / `HashSet` / `RandomState` |
//! | `unordered-float-accum` | error | sim crates | hash maps with `f64`/`f32` values |
//! | `wall-clock` | error | sim crates | `Instant::now` / `SystemTime` |
//! | `ambient-rng` | error | all lib code | `thread_rng` / `rand::random` |
//! | `env-dependent-sim` | error | sim crates | `std::env` / `available_parallelism` |
//! | `lib-unwrap` | warn | all lib code | `.unwrap()` / `.expect(` |
//!
//! Test-like code (`tests/`, `benches/`, `examples/`, `src/bin/`, and
//! `#[cfg(test)]` items) is exempt from every rule.  Tooling crates (this
//! crate and the vendored `proptest`/`rayon`/`criterion` shims) are exempt
//! from the sim-scoped rules: a timing harness *must* read the wall clock.
//!
//! # Suppressions
//!
//! A finding is suppressed by an inline comment on the same line or on the
//! line directly above:
//!
//! ```text
//! // simlint::allow(wall-clock) — diagnostics only, never feeds sim time
//! let t0 = std::time::Instant::now();
//! ```
//!
//! The reason after the rule list is **mandatory**; an `allow` without one
//! does not suppress anything (and is itself reported, so it cannot rot
//! silently).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod cost;
pub mod dim;
pub mod flow;
pub mod json;
pub mod lex;

/// How bad a finding is. `Error` findings fail `--deny`; `Warn` never does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which crates a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Simulation crates only (state + logic that must replay identically).
    SimState,
    /// Every workspace crate's library code, tooling included.
    AllLib,
}

/// Where a source file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileContext {
    /// Part of the simulator proper (false for simlint itself and the
    /// vendored dependency shims).
    pub sim_crate: bool,
    /// Library code, as opposed to tests/benches/examples/binaries.
    pub lib_code: bool,
}

/// One lint rule: an id, a severity, a scope and a token predicate.
pub struct Rule {
    pub id: &'static str,
    pub severity: Severity,
    pub scope: Scope,
    pub summary: &'static str,
    /// Returns a message if the (comment/literal-stripped) line violates
    /// the rule.
    check: fn(&str) -> Option<String>,
}

/// One violation found in one line of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl Finding {
    /// Render as one JSON object (hand-rolled: the crate is zero-dep).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"excerpt\":\"{}\"}}",
            json_escape(self.rule),
            self.severity,
            json_escape(&self.path),
            self.line,
            json_escape(&self.message),
            json_escape(&self.excerpt),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}\n    {}",
            self.severity, self.rule, self.path, self.line, self.message, self.excerpt
        )
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Token matching
// ---------------------------------------------------------------------------

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True if `needle` occurs in `line` with identifier boundaries on both
/// sides (so `HashMap` does not match `MyHashMapLike`). `needle` itself may
/// contain `::` / `.` / `(` — only its outer edges are boundary-checked.
pub fn contains_token(line: &str, needle: &str) -> bool {
    let (hay, pat) = (line.as_bytes(), needle.as_bytes());
    if pat.is_empty() || hay.len() < pat.len() {
        return false;
    }
    let mut i = 0;
    while i + pat.len() <= hay.len() {
        if &hay[i..i + pat.len()] == pat {
            let left_ok = i == 0 || !is_ident_char(hay[i - 1]) || !is_ident_char(pat[0]);
            let end = i + pat.len();
            let right_ok =
                end == hay.len() || !is_ident_char(hay[end]) || !is_ident_char(pat[pat.len() - 1]);
            if left_ok && right_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// For `unordered-float-accum`: does the line mention a hash map whose type
/// parameters include a float? Scans the generic argument list after each
/// `HashMap<`, tracking `<`/`>` depth.
fn hash_map_with_float_value(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("HashMap<") {
        let args_start = pos + "HashMap<".len();
        let mut depth = 1usize;
        let mut end = args_start;
        let bytes = rest.as_bytes();
        while end < bytes.len() && depth > 0 {
            match bytes[end] {
                b'<' => depth += 1,
                b'>' => depth -= 1,
                _ => {}
            }
            end += 1;
        }
        let args = &rest[args_start..end.saturating_sub(1).max(args_start)];
        if contains_token(args, "f64") || contains_token(args, "f32") {
            return true;
        }
        rest = &rest[args_start..];
    }
    false
}

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

/// Every rule simlint knows about.
pub fn rules() -> &'static [Rule] {
    &[
        Rule {
            id: "hash-collections-in-sim-state",
            severity: Severity::Error,
            scope: Scope::SimState,
            summary: "HashMap/HashSet iteration order varies with hash seeding; use BTreeMap/BTreeSet in simulation state",
            check: |line| {
                for tok in ["HashMap", "HashSet", "RandomState"] {
                    if contains_token(line, tok) {
                        return Some(format!(
                            "`{tok}` in simulation state: iteration order depends on hash seeding; use the BTree equivalent or sort before iterating"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "unordered-float-accum",
            severity: Severity::Error,
            scope: Scope::SimState,
            summary: "float-valued hash maps make summation order (and thus rounding) run-dependent",
            check: |line| {
                if hash_map_with_float_value(line) {
                    Some(
                        "float-valued hash map: summing its values accumulates rounding error in hash order; use BTreeMap so the reduction order is fixed"
                            .to_string(),
                    )
                } else {
                    None
                }
            },
        },
        Rule {
            id: "wall-clock",
            severity: Severity::Error,
            scope: Scope::SimState,
            summary: "wall-clock reads make sim behaviour host/time dependent; sim time must come from the Scheduler",
            check: |line| {
                for tok in ["Instant::now", "SystemTime"] {
                    if contains_token(line, tok) {
                        return Some(format!(
                            "`{tok}` in sim logic: wall-clock reads vary per host and run; use Scheduler sim time (allow only for diagnostics that never feed the sim)"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "ambient-rng",
            severity: Severity::Error,
            scope: Scope::AllLib,
            summary: "ambient RNG is unseeded; use the seeded SplitMix64 streams carried in RunSpec",
            check: |line| {
                for tok in ["thread_rng", "rand::random"] {
                    if contains_token(line, tok) {
                        return Some(format!(
                            "`{tok}` draws from an unseeded generator; thread the seeded SplitMix64 stream through instead"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "env-dependent-sim",
            severity: Severity::Error,
            scope: Scope::SimState,
            summary: "environment reads make sim results depend on the host configuration",
            check: |line| {
                for tok in ["std::env", "env::var", "available_parallelism"] {
                    if contains_token(line, tok) {
                        return Some(format!(
                            "`{tok}` in sim logic: results must not depend on host environment (allow only for diagnostics toggles)"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "unguarded-retry-loop",
            severity: Severity::Error,
            scope: Scope::AllLib,
            summary: "retry loops without an attempt bound or deadline can spin forever; use RetryPolicy/RetryExec or a bounded for",
            check: |line| {
                let looping = contains_token(line, "loop") || contains_token(line, "while");
                if !looping {
                    return None;
                }
                let retrying = ["retry", "retries", "retrying", "backoff"]
                    .iter()
                    .any(|t| contains_token(line, t));
                if !retrying {
                    return None;
                }
                let guarded = ["attempt", "attempts", "max_attempts", "timeout", "deadline"]
                    .iter()
                    .any(|t| contains_token(line, t));
                if guarded {
                    return None;
                }
                Some(
                    "retry loop without a visible attempt/timeout bound: route it through `RetryExec` (bounded `for` over `max_attempts`) or carry the bound in the loop condition"
                        .to_string(),
                )
            },
        },
        Rule {
            id: "lib-unwrap",
            severity: Severity::Warn,
            scope: Scope::AllLib,
            summary: "unwrap/expect in library code turns recoverable errors into panics",
            check: |line| {
                for tok in [".unwrap()", ".expect("] {
                    if line.contains(tok) {
                        return Some(format!(
                            "`{}` in library code: prefer propagating the error",
                            tok.trim_end_matches('(')
                        ));
                    }
                }
                None
            },
        },
    ]
}

fn rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = rules().iter().map(|r| r.id).collect();
    ids.extend(flow::flow_rules().iter().map(|r| r.id));
    ids.extend(cost::cost_rules().iter().map(|r| r.id));
    ids.extend(dim::dim_rules().iter().map(|r| r.id));
    ids
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// A parsed `// simlint::allow(rule, …) — reason` directive.
#[derive(Debug, Clone)]
pub(crate) struct Allow {
    rules: Vec<String>,
    has_reason: bool,
}

/// Parse an allow directive out of a raw source line, if present. The
/// directive only counts inside a `//` comment, so the marker string can
/// appear in code or literals without being treated as a suppression.
pub(crate) fn parse_allow(raw_line: &str) -> Option<Allow> {
    let comment = &raw_line[raw_line.find("//")?..];
    let pos = comment.find("simlint::allow(")?;
    let rest = &comment[pos + "simlint::allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    // Reason: any word characters after the closing paren, past separators
    // like `—`, `-`, `:`.
    let tail = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':');
    Some(Allow {
        rules,
        has_reason: tail.chars().any(|c| c.is_alphanumeric()),
    })
}

pub(crate) fn allow_covers(allow: &Allow, rule_id: &str) -> bool {
    allow.has_reason && allow.rules.iter().any(|r| r == rule_id)
}

// ---------------------------------------------------------------------------
// Source scanning
// ---------------------------------------------------------------------------

/// Multi-line lexical state carried between [`strip_line`] calls.
#[derive(Default)]
struct StripState {
    in_block_comment: bool,
    /// Inside a `"` string literal that did not close on its line.
    in_string: bool,
}

/// Strip `//` comments, `/* */` comments, and string/char literals from one
/// line. `state` carries multi-line `/* */` and `"…"` state between lines.
/// Stripped regions are replaced with spaces so token boundaries survive.
fn strip_line(raw: &str, state: &mut StripState) -> String {
    let bytes = raw.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        if state.in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                state.in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if state.in_string {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    state.in_string = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // rest is comment
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                state.in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // String literal (raw strings handled loosely: good enough).
                // One that does not close on this line continues on the next.
                i += 1;
                state.in_string = true;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            state.in_string = false;
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' if i + 2 < bytes.len() && (bytes[i + 1] == b'\\' || bytes[i + 2] == b'\'') => {
                // Char literal like 'x' or '\n' — but not lifetimes ('a).
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    // `out` was filled with the kept bytes at their original positions.
    String::from_utf8_lossy(&out).into_owned()
}

/// Lint one file's source text. `path` is only used to label findings.
pub fn lint_source(path: &str, source: &str, ctx: FileContext) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !ctx.lib_code {
        return findings;
    }
    let lines: Vec<&str> = source.lines().collect();

    // Pass 1: allow directives, by line index.
    let allows: Vec<Option<Allow>> = lines.iter().map(|l| parse_allow(l)).collect();

    // Pass 2: scan, skipping #[cfg(test)] items.
    let mut strip_state = StripState::default();
    let mut cfg_test_pending = false; // saw #[cfg(test)], item not yet started
                                      // Inside a #[cfg(test)] item: (brace depth, whether `{` was seen yet).
    let mut cfg_skip: Option<(usize, bool)> = None;
    for (idx, raw) in lines.iter().enumerate() {
        let stripped = strip_line(raw, &mut strip_state);
        let code = stripped.trim();

        if let Some((mut depth, mut opened)) = cfg_skip {
            for b in code.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            // A braced item ends when its braces balance; a brace-less item
            // (`use …;`, `type …;`) ends at the first `;`.
            if (opened && depth == 0) || (!opened && code.ends_with(';')) {
                cfg_skip = None;
            } else {
                cfg_skip = Some((depth, opened));
            }
            continue;
        }

        if cfg_test_pending {
            if code.starts_with("#[") || code.is_empty() {
                // further attributes / blank lines before the item itself
                continue;
            }
            cfg_test_pending = false;
            let mut depth = 0usize;
            let mut opened = false;
            for b in code.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if !((opened && depth == 0) || (!opened && code.ends_with(';'))) {
                cfg_skip = Some((depth, opened));
            }
            continue;
        }

        if code.contains("#[cfg(test)]") || code.contains("#[cfg(any(test") {
            cfg_test_pending = true;
            continue;
        }

        if code.is_empty() {
            continue;
        }

        for rule in rules() {
            if rule.scope == Scope::SimState && !ctx.sim_crate {
                continue;
            }
            if let Some(message) = (rule.check)(&stripped) {
                let suppressed = allows[idx]
                    .as_ref()
                    .map(|a| allow_covers(a, rule.id))
                    .unwrap_or(false)
                    || (idx > 0
                        && allows[idx - 1]
                            .as_ref()
                            .map(|a| allow_covers(a, rule.id))
                            .unwrap_or(false));
                if !suppressed {
                    findings.push(Finding {
                        rule: rule.id,
                        severity: rule.severity,
                        path: path.to_string(),
                        line: idx + 1,
                        message,
                        excerpt: raw.trim().to_string(),
                    });
                }
            }
        }

        // An allow that names an unknown rule or lacks a reason is itself a
        // problem: it looks like a suppression but does nothing.
        if let Some(allow) = &allows[idx] {
            let known = rule_ids();
            for r in &allow.rules {
                if !known.contains(&r.as_str()) {
                    findings.push(Finding {
                        rule: "unknown-allow",
                        severity: Severity::Warn,
                        path: path.to_string(),
                        line: idx + 1,
                        message: format!("simlint::allow names unknown rule `{r}`"),
                        excerpt: raw.trim().to_string(),
                    });
                }
            }
            if !allow.has_reason {
                findings.push(Finding {
                    rule: "allow-without-reason",
                    severity: Severity::Warn,
                    path: path.to_string(),
                    line: idx + 1,
                    message: "simlint::allow requires a reason after the rule list (`— why`)"
                        .to_string(),
                    excerpt: raw.trim().to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Crates that are tooling, not simulation: exempt from `Scope::SimState`
/// rules. The vendored shims stand in for external deps; the criterion shim
/// in particular *is* a wall-clock timer.
const TOOLING_CRATES: &[&str] = &["simlint", "proptest", "rayon", "criterion", "bench"];

/// Classify a workspace-relative path like `crates/core/src/system.rs`.
pub fn classify(rel_path: &str) -> FileContext {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1]
    } else {
        "daos-io-sim"
    };
    let sim_crate = !TOOLING_CRATES.contains(&crate_name);
    let lib_code = parts
        .iter()
        .all(|p| !matches!(*p, "tests" | "benches" | "examples" | "bin"));
    FileContext {
        sim_crate,
        lib_code,
    }
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (skipping `target/` and dot-dirs).
/// Findings come back sorted by path, then line, then rule.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source, classify(&rel)));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_LIB: FileContext = FileContext {
        sim_crate: true,
        lib_code: true,
    };
    const TOOL_LIB: FileContext = FileContext {
        sim_crate: false,
        lib_code: true,
    };
    const SIM_TEST: FileContext = FileContext {
        sim_crate: true,
        lib_code: false,
    };

    fn rules_hit(src: &str, ctx: FileContext) -> Vec<&'static str> {
        lint_source("x.rs", src, ctx)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    // ---- hash-collections-in-sim-state ----

    #[test]
    fn hash_collections_positive() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u64, u32> = HashMap::new();\n";
        let hits = rules_hit(src, SIM_LIB);
        assert!(hits.contains(&"hash-collections-in-sim-state"), "{hits:?}");
        assert!(rules_hit("let s = HashSet::new();", SIM_LIB)
            .contains(&"hash-collections-in-sim-state"));
        assert!(rules_hit("let h = RandomState::new();", SIM_LIB)
            .contains(&"hash-collections-in-sim-state"));
    }

    #[test]
    fn hash_collections_negative() {
        assert!(rules_hit("use std::collections::BTreeMap;", SIM_LIB).is_empty());
        // Identifier-boundary check: no match inside a longer identifier.
        assert!(rules_hit("struct MyHashMapLike;", SIM_LIB).is_empty());
        // Not flagged in tooling crates or test-like code.
        assert!(rules_hit("let m = HashMap::new();", TOOL_LIB).is_empty());
        assert!(rules_hit("let m = HashMap::new();", SIM_TEST).is_empty());
        // Not flagged in comments or strings.
        assert!(rules_hit("// a HashMap would be wrong here", SIM_LIB).is_empty());
        assert!(rules_hit("let s = \"HashMap\";", SIM_LIB).is_empty());
    }

    #[test]
    fn hash_collections_allow_suppression() {
        let same_line =
            "let m = HashMap::new(); // simlint::allow(hash-collections-in-sim-state) — scratch, drained sorted\n";
        assert!(rules_hit(same_line, SIM_LIB).is_empty());
        let line_above = "// simlint::allow(hash-collections-in-sim-state) — scratch, drained sorted\nlet m = HashMap::new();\n";
        assert!(rules_hit(line_above, SIM_LIB).is_empty());
        // Without a reason the allow is inert and itself reported.
        let no_reason =
            "let m = HashMap::new(); // simlint::allow(hash-collections-in-sim-state)\n";
        let hits = rules_hit(no_reason, SIM_LIB);
        assert!(hits.contains(&"hash-collections-in-sim-state"), "{hits:?}");
        assert!(hits.contains(&"allow-without-reason"), "{hits:?}");
    }

    // ---- unordered-float-accum ----

    #[test]
    fn float_accum_positive() {
        let hits = rules_hit("let mut gb: HashMap<usize, f64> = HashMap::new();", SIM_LIB);
        assert!(hits.contains(&"unordered-float-accum"), "{hits:?}");
        // Nested generics still detected.
        let hits = rules_hit("let x: HashMap<u32, Vec<f32>> = HashMap::new();", SIM_LIB);
        assert!(hits.contains(&"unordered-float-accum"), "{hits:?}");
    }

    #[test]
    fn float_accum_negative() {
        // Integer-valued hash map: hash-collections fires, float-accum doesn't.
        let hits = rules_hit("let m: HashMap<u64, u32> = HashMap::new();", SIM_LIB);
        assert!(!hits.contains(&"unordered-float-accum"), "{hits:?}");
        // BTreeMap with floats is fine.
        assert!(rules_hit("let m: BTreeMap<usize, f64> = BTreeMap::new();", SIM_LIB).is_empty());
    }

    #[test]
    fn float_accum_allow_suppression() {
        let src = "// simlint::allow(unordered-float-accum, hash-collections-in-sim-state) — totals are order-independent here\nlet gb: HashMap<usize, f64> = HashMap::new();\n";
        assert!(rules_hit(src, SIM_LIB).is_empty());
    }

    // ---- wall-clock ----

    #[test]
    fn wall_clock_positive() {
        assert!(rules_hit("let t0 = Instant::now();", SIM_LIB).contains(&"wall-clock"));
        assert!(rules_hit("let t = SystemTime::now();", SIM_LIB).contains(&"wall-clock"));
    }

    #[test]
    fn wall_clock_negative() {
        // Sim time, not wall time.
        assert!(rules_hit("let t = sched.now();", SIM_LIB).is_empty());
        // Tooling crates may read the clock (that's their job).
        assert!(rules_hit("let t0 = Instant::now();", TOOL_LIB).is_empty());
    }

    #[test]
    fn wall_clock_allow_suppression() {
        let src = "let t0 = std::time::Instant::now(); // simlint::allow(wall-clock) — perf counter, never feeds sim time\n";
        assert!(rules_hit(src, SIM_LIB).is_empty());
    }

    // ---- ambient-rng ----

    #[test]
    fn ambient_rng_positive() {
        assert!(rules_hit("let x = thread_rng().gen::<u64>();", SIM_LIB).contains(&"ambient-rng"));
        assert!(rules_hit("let y: f64 = rand::random();", SIM_LIB).contains(&"ambient-rng"));
        // AllLib scope: fires even in tooling crates.
        assert!(rules_hit("let x = thread_rng();", TOOL_LIB).contains(&"ambient-rng"));
    }

    #[test]
    fn ambient_rng_negative() {
        assert!(rules_hit("let mut rng = SplitMix64::new(spec.seed);", SIM_LIB).is_empty());
        assert!(rules_hit("let x = thread_rng();", SIM_TEST).is_empty());
    }

    #[test]
    fn ambient_rng_allow_suppression() {
        let src =
            "let x = thread_rng(); // simlint::allow(ambient-rng) — jitter for a demo plot only\n";
        assert!(rules_hit(src, SIM_LIB).is_empty());
    }

    // ---- env-dependent-sim ----

    #[test]
    fn env_dependent_positive() {
        assert!(rules_hit("let v = std::env::var(\"X\");", SIM_LIB).contains(&"env-dependent-sim"));
        assert!(
            rules_hit("let n = std::thread::available_parallelism();", SIM_LIB)
                .contains(&"env-dependent-sim")
        );
    }

    #[test]
    fn env_dependent_negative() {
        assert!(rules_hit("let v = spec.ppn;", SIM_LIB).is_empty());
        assert!(rules_hit("let v = std::env::var(\"X\");", TOOL_LIB).is_empty());
    }

    #[test]
    fn env_dependent_allow_suppression() {
        let src = "// simlint::allow(env-dependent-sim) — opt-in diagnostics toggle, no effect on results\nlet d = std::env::var_os(\"SIMKIT_DIAG\").is_some();\n";
        assert!(rules_hit(src, SIM_LIB).is_empty());
    }

    // ---- unguarded-retry-loop ----

    #[test]
    fn unguarded_retry_loop_positive() {
        // a bare spin-until-success retry, no bound in sight
        assert!(rules_hit("loop { if retry(op) { break; } }", SIM_LIB)
            .contains(&"unguarded-retry-loop"));
        assert!(
            rules_hit("while !backoff.done() { retries += 1; }", TOOL_LIB)
                .contains(&"unguarded-retry-loop"),
            "applies to tooling crates too"
        );
    }

    #[test]
    fn unguarded_retry_loop_negative() {
        // the sanctioned shape: a bounded for over max_attempts
        assert!(rules_hit("for attempt in 0..self.policy.max_attempts {", SIM_LIB).is_empty());
        // a loop that carries its bound in the condition is guarded
        assert!(rules_hit("while retries < max_attempts { retries += 1; }", SIM_LIB).is_empty());
        assert!(rules_hit("while now < deadline { retry_once(); }", SIM_LIB).is_empty());
        // loops that do not retry are none of this rule's business
        assert!(rules_hit("loop { step(); }", SIM_LIB).is_empty());
        // comments do not count
        assert!(rules_hit("// loop until the retry succeeds", SIM_LIB).is_empty());
        // not flagged in test code
        assert!(rules_hit("loop { if retry(op) { break; } }", SIM_TEST).is_empty());
    }

    #[test]
    fn unguarded_retry_loop_allow_suppression() {
        let src = "loop { retry(); } // simlint::allow(unguarded-retry-loop) — bounded by caller\n";
        assert!(rules_hit(src, SIM_LIB).is_empty());
    }

    // ---- lib-unwrap ----

    #[test]
    fn lib_unwrap_positive_is_warn() {
        let f = lint_source("x.rs", "let v = m.get(&k).unwrap();", SIM_LIB);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lib-unwrap");
        assert_eq!(f[0].severity, Severity::Warn);
        assert!(rules_hit("let v = m.get(&k).expect(\"k\");", TOOL_LIB).contains(&"lib-unwrap"));
    }

    #[test]
    fn lib_unwrap_negative() {
        assert!(rules_hit("let v = m.get(&k)?;", SIM_LIB).is_empty());
        assert!(rules_hit("let v = m.get(&k).unwrap();", SIM_TEST).is_empty());
        // `unwrap_or` is not `unwrap()`.
        assert!(rules_hit("let v = m.get(&k).copied().unwrap_or(0);", SIM_LIB).is_empty());
    }

    #[test]
    fn lib_unwrap_allow_suppression() {
        let src = "let v = m.get(&k).unwrap(); // simlint::allow(lib-unwrap) — key inserted two lines up\n";
        assert!(rules_hit(src, SIM_LIB).is_empty());
    }

    // ---- scanner machinery ----

    #[test]
    fn cfg_test_module_skipped() {
        let src = "\
pub fn real() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn helper() {
        let m: HashMap<u64, f64> = HashMap::new();
        let t = Instant::now();
        let _ = m.get(&0).unwrap();
        let _ = t;
    }
}

pub fn after_tests() { let m = HashMap::new(); }
";
        let hits = rules_hit(src, SIM_LIB);
        // Only the line *after* the test module is flagged.
        assert_eq!(hits, vec!["hash-collections-in-sim-state"]);
        let f = lint_source("x.rs", src, SIM_LIB);
        assert_eq!(f[0].line, 14);
    }

    #[test]
    fn block_comments_stripped_across_lines() {
        let src = "/* HashMap in a\n   block comment: HashMap */\nlet x = 1;\n";
        assert!(rules_hit(src, SIM_LIB).is_empty());
    }

    #[test]
    fn unknown_allow_reported() {
        let src = "let x = 1; // simlint::allow(no-such-rule) — whatever\n";
        let hits = rules_hit(src, SIM_LIB);
        assert_eq!(hits, vec!["unknown-allow"]);
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/system.rs"),
            FileContext {
                sim_crate: true,
                lib_code: true
            }
        );
        assert_eq!(
            classify("crates/simlint/src/lib.rs"),
            FileContext {
                sim_crate: false,
                lib_code: true
            }
        );
        assert_eq!(
            classify("crates/simkit/tests/determinism.rs"),
            FileContext {
                sim_crate: true,
                lib_code: false
            }
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            FileContext {
                sim_crate: true,
                lib_code: false
            }
        );
        assert_eq!(
            classify("src/lib.rs"),
            FileContext {
                sim_crate: true,
                lib_code: true
            }
        );
        assert_eq!(
            classify("crates/bench/benches/microbench.rs"),
            FileContext {
                sim_crate: false,
                lib_code: false
            }
        );
    }

    #[test]
    fn json_output_escapes() {
        let f = Finding {
            rule: "wall-clock",
            severity: Severity::Error,
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "msg".to_string(),
            excerpt: "let s = \"x\";".to_string(),
        };
        let j = f.to_json();
        assert!(j.contains("\"path\":\"a\\\"b.rs\""), "{j}");
        assert!(j.contains("\"severity\":\"error\""), "{j}");
        assert!(j.contains("\"line\":3"), "{j}");
    }

    #[test]
    fn findings_sorted_and_stable() {
        // lint_source emits findings in line order; same line → registry order.
        let src = "let a = Instant::now();\nlet b: HashMap<u8, f64> = HashMap::new();\n";
        let f = lint_source("x.rs", src, SIM_LIB);
        let seq: Vec<(usize, &str)> = f.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(
            seq,
            vec![
                (1, "wall-clock"),
                (2, "hash-collections-in-sim-state"),
                (2, "unordered-float-accum"),
            ]
        );
    }
}
