//! Pool maps: targets, their states, and object placement.
//!
//! A DAOS pool spans a set of engines (one per server node in the
//! paper's deployments), each exposing 16 targets backed by one NVMe
//! device each.  Objects are placed on targets by a deterministic hash
//! of their OID, in shard groups whose width depends on the object class
//! (1 for plain shards, `r` for replication, `k+p` for erasure coding).
//!
//! The map is **versioned**: every effective state transition (and every
//! membership change) bumps a monotonic map version, exactly like the
//! pool-map revision DAOS distributes to clients.  Two maps at the same
//! version are byte-identical, so layouts computed against an unchanged
//! version are stable; any divergence in placement implies a version
//! step in between.

use crate::class::ObjectClass;
use crate::oid::Oid;
use simkit::json::{self, Json};

/// One DAOS target: `(server rank, target index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TargetId {
    /// Engine rank (server node index within the pool).
    pub server: u16,
    /// Target index within the engine.
    pub target: u16,
}

impl TargetId {
    /// Pack into the opaque `u64` payload carried by
    /// [`simkit::FaultAction`] crash/restart events.
    pub fn pack(self) -> u64 {
        (self.server as u64) << 16 | self.target as u64
    }

    /// Inverse of [`TargetId::pack`].
    pub fn unpack(v: u64) -> TargetId {
        TargetId {
            server: (v >> 16) as u16,
            target: (v & 0xffff) as u16,
        }
    }
}

/// Health / membership state of a target.
///
/// The four states split along two axes: **placement** (do new layouts
/// use it?) and **service** (can it serve I/O for shards it already
/// holds?).  `Up` is both; `Drain` serves but no longer places (its
/// shards are being migrated away before retirement); `Reint` places
/// nothing yet but accepts and serves migrated shards (a reintegrating
/// or newly added target); `Down` is neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetState {
    /// Serving I/O and eligible for new placements.
    Up,
    /// Serving existing shards, excluded from new layouts; the
    /// migration engine is moving its shards away, after which it
    /// retires to `Down`.
    Drain,
    /// Excluded/failed: receives no I/O; its shards are unavailable.
    Down,
    /// Rejoining (or newly added): receives migrated shards and serves
    /// them, but new layouts skip it until it is promoted to `Up`.
    Reint,
}

impl TargetState {
    fn as_str(self) -> &'static str {
        match self {
            TargetState::Up => "up",
            TargetState::Drain => "drain",
            TargetState::Down => "down",
            TargetState::Reint => "reint",
        }
    }

    fn from_str(s: &str) -> Option<TargetState> {
        match s {
            "up" => Some(TargetState::Up),
            "drain" => Some(TargetState::Drain),
            "down" => Some(TargetState::Down),
            "reint" => Some(TargetState::Reint),
            _ => None,
        }
    }
}

/// The pool map: target inventory, health, and a monotonic version.
#[derive(Debug, Clone)]
pub struct PoolMap {
    servers: usize,
    targets_per_server: usize,
    version: u64,
    state: Vec<TargetState>,
    /// Cached `Up` count, maintained on every transition so lookup
    /// paths never rescan the state vector.
    up: usize,
    /// Cached non-`Down` count (targets able to serve I/O).
    servable: usize,
}

/// The placement of one object: shard groups of equal width.
///
/// * plain (`S*`/`SX`): `groups[g] = [target]`;
/// * replication: `groups[g] = [replica0, replica1, …]`;
/// * erasure coding: `groups[g] = [data0 … data(k-1), parity0 …]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Shard groups in dkey order.
    pub groups: Vec<Vec<TargetId>>,
    /// The class the layout was generated for.
    pub class: ObjectClass,
}

impl Layout {
    /// Group responsible for a dkey (Array chunk index or KV dkey hash).
    pub fn group_for(&self, dkey_hash: u64) -> &[TargetId] {
        &self.groups[(dkey_hash % self.groups.len() as u64) as usize]
    }

    /// Index of the group responsible for a dkey.
    pub fn group_index(&self, dkey_hash: u64) -> usize {
        (dkey_hash % self.groups.len() as u64) as usize
    }
}

impl PoolMap {
    /// A pool over `servers` engines with `targets_per_server` targets
    /// each, all up, at map version 0.
    pub fn new(servers: usize, targets_per_server: usize) -> Self {
        assert!(servers > 0 && targets_per_server > 0);
        let total = servers * targets_per_server;
        PoolMap {
            servers,
            targets_per_server,
            version: 0,
            state: vec![TargetState::Up; total],
            up: total,
            servable: total,
        }
    }

    /// Engines in the pool.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Targets per engine.
    pub fn targets_per_server(&self) -> usize {
        self.targets_per_server
    }

    /// Total targets, regardless of state.
    pub fn total_targets(&self) -> usize {
        self.state.len()
    }

    /// Monotonic map version: bumped by every effective state
    /// transition and by every membership change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of `Up` targets (placement-eligible), O(1).
    pub fn up_count(&self) -> usize {
        self.up
    }

    /// Number of non-`Down` targets (able to serve I/O), O(1).
    pub fn servable_count(&self) -> usize {
        self.servable
    }

    /// Linear index of a target.
    pub fn index(&self, t: TargetId) -> usize {
        t.server as usize * self.targets_per_server + t.target as usize
    }

    /// Target at a linear index.
    pub fn target_at(&self, idx: usize) -> TargetId {
        TargetId {
            server: (idx / self.targets_per_server) as u16,
            target: (idx % self.targets_per_server) as u16,
        }
    }

    /// Health of a target.
    pub fn state(&self, t: TargetId) -> TargetState {
        self.state[self.index(t)]
    }

    /// True when the target is `Up`: serving I/O *and* eligible for new
    /// placements.
    pub fn is_up(&self, t: TargetId) -> bool {
        self.state(t) == TargetState::Up
    }

    /// True when the target can serve I/O for shards it holds (`Up`,
    /// `Drain` or `Reint` — everything but `Down`).
    pub fn is_servable(&self, t: TargetId) -> bool {
        self.state(t) != TargetState::Down
    }

    /// The single transition point: applies the new state, maintains the
    /// cached counts, and bumps the version — only when the state
    /// actually changes, so no-op transitions leave the version alone.
    fn set_state(&mut self, t: TargetId, new: TargetState) {
        let i = self.index(t);
        let old = self.state[i];
        if old == new {
            return;
        }
        self.up -= (old == TargetState::Up) as usize;
        self.up += (new == TargetState::Up) as usize;
        self.servable -= (old != TargetState::Down) as usize;
        self.servable += (new != TargetState::Down) as usize;
        self.state[i] = new;
        self.version += 1;
    }

    /// Mark a target down (failure injection / `dmg pool exclude`).
    pub fn exclude(&mut self, t: TargetId) {
        self.set_state(t, TargetState::Down);
    }

    /// Mark every target of a server down.
    pub fn exclude_server(&mut self, server: u16) {
        for t in 0..self.targets_per_server as u16 {
            self.exclude(TargetId { server, target: t });
        }
    }

    /// Bring a target back up (reintegration completed / restart).
    pub fn reintegrate(&mut self, t: TargetId) {
        self.set_state(t, TargetState::Up);
    }

    /// Start draining a target (`dmg pool drain`): it keeps serving its
    /// shards but new layouts skip it.  Only meaningful for targets that
    /// currently serve (`Up`/`Reint`); draining a `Down` target is a
    /// no-op.
    pub fn drain(&mut self, t: TargetId) {
        if self.is_servable(t) {
            self.set_state(t, TargetState::Drain);
        }
    }

    /// Start draining every target of a server.
    pub fn drain_server(&mut self, server: u16) {
        for t in 0..self.targets_per_server as u16 {
            self.drain(TargetId { server, target: t });
        }
    }

    /// Begin reintegrating a `Down` target: it becomes a migration
    /// destination (`Reint`) but stays out of new layouts until
    /// [`PoolMap::promote_reint`] (or [`PoolMap::reintegrate`]).
    pub fn start_reint(&mut self, t: TargetId) {
        if self.state(t) == TargetState::Down {
            self.set_state(t, TargetState::Reint);
        }
    }

    /// Grow the pool by one server whose targets start in `Reint`
    /// (receiving migrated shards, not yet placement-eligible).
    /// Returns the new server's rank.
    pub fn add_server(&mut self) -> u16 {
        let rank = self.servers as u16;
        self.servers += 1;
        self.state.extend(std::iter::repeat_n(
            TargetState::Reint,
            self.targets_per_server,
        ));
        self.servable += self.targets_per_server;
        self.version += 1;
        rank
    }

    /// Retire every fully-drained target: `Drain` → `Down`.  Called when
    /// the migration engine has moved the last shard off the draining
    /// targets.
    pub fn retire_drained(&mut self) {
        for i in 0..self.state.len() {
            if self.state[i] == TargetState::Drain {
                self.set_state(self.target_at(i), TargetState::Down);
            }
        }
    }

    /// Promote every reintegrating target: `Reint` → `Up`.  Called when
    /// the migration engine has finished populating them.
    pub fn promote_reint(&mut self) {
        for i in 0..self.state.len() {
            if self.state[i] == TargetState::Reint {
                self.set_state(self.target_at(i), TargetState::Up);
            }
        }
    }

    /// Currently-up targets, in linear order.
    // simlint::allow(hot-alloc) — collects the live-target view for a placement decision; runs per create/rebuild, not per I/O event (counting paths use the cached up_count instead)
    pub fn up_targets(&self) -> Vec<TargetId> {
        (0..self.state.len())
            .filter(|&i| self.state[i] == TargetState::Up)
            .map(|i| self.target_at(i))
            .collect()
    }

    /// Serialize to the pool-map JSON format (compact, stable field
    /// order): membership shape, version, and one state string per
    /// target in linear order.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("servers".into(), Json::num_u64(self.servers as u64)),
            (
                "targets_per_server".into(),
                Json::num_u64(self.targets_per_server as u64),
            ),
            ("version".into(), Json::num_u64(self.version)),
            (
                "states".into(),
                Json::Arr(
                    self.state
                        .iter()
                        .map(|s| Json::Str(s.as_str().into()))
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parse a map serialized by [`PoolMap::to_json`], restoring the
    /// version and every per-target state exactly.
    pub fn from_json(input: &str) -> Result<PoolMap, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let num = |name: &str| -> Result<u64, String> {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing u64 \"{name}\""))
        };
        let servers = num("servers")? as usize;
        let targets_per_server = num("targets_per_server")? as usize;
        if servers == 0 || targets_per_server == 0 {
            return Err("servers and targets_per_server must be > 0".into());
        }
        let version = num("version")?;
        let states = doc
            .get("states")
            .and_then(Json::as_arr)
            .ok_or("missing \"states\" array")?;
        if states.len() != servers * targets_per_server {
            return Err(format!(
                "states length {} != servers {servers} × targets_per_server {targets_per_server}",
                states.len()
            ));
        }
        let mut state = Vec::with_capacity(states.len());
        for (i, s) in states.iter().enumerate() {
            let name = s
                .as_str()
                .ok_or_else(|| format!("state {i}: not a string"))?;
            state.push(
                TargetState::from_str(name)
                    .ok_or_else(|| format!("state {i}: unknown state \"{name}\""))?,
            );
        }
        let up = state.iter().filter(|&&s| s == TargetState::Up).count();
        let servable = state.iter().filter(|&&s| s != TargetState::Down).count();
        Ok(PoolMap {
            servers,
            targets_per_server,
            version,
            state,
            up,
            servable,
        })
    }

    /// Generate the layout for an object: a **per-object pseudorandom
    /// permutation** of the up targets (seeded by the OID), cut into
    /// shard groups of the class's width.
    ///
    /// The permutation matters: real DAOS placement maps each object's
    /// shards through an independent pseudorandom layout, so concurrent
    /// sequential writers never march over the targets in correlated
    /// order.  (An earlier rotation-based layout produced convoys of
    /// processes colliding on the same devices and cost half the
    /// cluster's bandwidth at queue depth 1.)
    pub fn layout(&self, oid: &Oid, class: ObjectClass) -> Layout {
        self.layout_salted(oid, class, 0)
    }

    /// Like [`PoolMap::layout`], with an extra seed mixed into the
    /// permutation.  DAOS object ids are only unique within a container,
    /// so placement salts them with container identity; without this,
    /// object `N` of every container would land on the same targets.
    // simlint::allow(hot-alloc) — placement computes a fresh layout per object create (and rebuild remap), not per I/O event
    pub fn layout_salted(&self, oid: &Oid, class: ObjectClass, salt: u64) -> Layout {
        let mut up = self.up_targets();
        assert!(!up.is_empty(), "no targets up");
        let width = class.group_width();
        assert!(
            width <= up.len(),
            "class {class} needs {width} targets, only {} up",
            up.len()
        );
        let groups_n = class.shard_groups(up.len());
        // seeded Fisher-Yates shuffle
        let mut rng = simkit::SplitMix64::new(
            oid.placement_hash() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        for i in (1..up.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            up.swap(i, j);
        }
        // fault-domain awareness: interleave the shuffled targets by
        // server so that the members of a shard group land on distinct
        // nodes whenever enough nodes are up (replicas and EC cells must
        // survive a node loss)
        let mut per_server: Vec<Vec<TargetId>> = vec![Vec::new(); self.servers];
        let mut server_order: Vec<usize> = Vec::new();
        for t in up.iter().rev() {
            if per_server[t.server as usize].is_empty() {
                server_order.push(t.server as usize);
            }
            per_server[t.server as usize].push(*t);
        }
        let mut interleaved: Vec<TargetId> = Vec::with_capacity(up.len());
        let mut round = 0;
        while interleaved.len() < up.len() {
            for &s in &server_order {
                if let Some(&t) = per_server[s].get(round) {
                    interleaved.push(t);
                }
            }
            round += 1;
        }
        let groups = (0..groups_n)
            .map(|g| {
                (0..width)
                    .map(|m| interleaved[(g * width + m) % interleaved.len()])
                    .collect()
            })
            .collect();
        Layout { groups, class }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::OidAllocator;

    #[test]
    fn indexing_round_trips() {
        let pm = PoolMap::new(4, 16);
        for i in 0..pm.total_targets() {
            assert_eq!(pm.index(pm.target_at(i)), i);
        }
    }

    #[test]
    fn exclusion_and_reintegration() {
        let mut pm = PoolMap::new(2, 4);
        let t = TargetId {
            server: 1,
            target: 2,
        };
        assert!(pm.is_up(t));
        pm.exclude(t);
        assert!(!pm.is_up(t));
        assert_eq!(pm.up_targets().len(), 7);
        pm.reintegrate(t);
        assert!(pm.is_up(t));
        pm.exclude_server(0);
        assert_eq!(pm.up_targets().len(), 4);
    }

    #[test]
    fn cached_counts_track_every_transition() {
        let mut pm = PoolMap::new(2, 4);
        assert_eq!((pm.up_count(), pm.servable_count()), (8, 8));
        let t = TargetId {
            server: 0,
            target: 1,
        };
        pm.exclude(t);
        assert_eq!((pm.up_count(), pm.servable_count()), (7, 7));
        pm.start_reint(t);
        assert_eq!((pm.up_count(), pm.servable_count()), (7, 8));
        pm.promote_reint();
        assert_eq!((pm.up_count(), pm.servable_count()), (8, 8));
        pm.drain_server(1);
        assert_eq!((pm.up_count(), pm.servable_count()), (4, 8));
        pm.retire_drained();
        assert_eq!((pm.up_count(), pm.servable_count()), (4, 4));
        // the caches always agree with a fresh scan
        assert_eq!(pm.up_count(), pm.up_targets().len());
    }

    #[test]
    fn version_is_monotonic_under_interleaved_transitions() {
        let mut pm = PoolMap::new(3, 4);
        assert_eq!(pm.version(), 0);
        let mut last = pm.version();
        let targets: Vec<TargetId> = (0..pm.total_targets()).map(|i| pm.target_at(i)).collect();
        // an interleaved exclude/drain/reintegrate storm: the version
        // never decreases and steps on every effective transition
        for (i, &t) in targets.iter().enumerate() {
            match i % 3 {
                0 => pm.exclude(t),
                1 => pm.drain(t),
                _ => pm.reintegrate(t),
            }
            assert!(pm.version() >= last, "version must never decrease");
            last = pm.version();
        }
        for &t in &targets {
            pm.reintegrate(t);
            assert!(pm.version() >= last);
            last = pm.version();
        }
        // no-op transitions do not bump: reintegrating an Up target
        let v = pm.version();
        pm.reintegrate(targets[0]);
        assert_eq!(pm.version(), v, "no-op transition must not bump");
        // draining a Down target is a no-op
        pm.exclude(targets[1]);
        let v = pm.version();
        pm.drain(targets[1]);
        assert_eq!(pm.version(), v);
    }

    #[test]
    fn add_server_grows_membership_and_bumps_version() {
        let mut pm = PoolMap::new(2, 4);
        let v0 = pm.version();
        let rank = pm.add_server();
        assert_eq!(rank, 2);
        assert_eq!(pm.server_count(), 3);
        assert_eq!(pm.total_targets(), 12);
        assert!(pm.version() > v0, "membership change bumps the version");
        // new targets receive migration but are not placement-eligible
        let t = TargetId {
            server: rank,
            target: 0,
        };
        assert_eq!(pm.state(t), TargetState::Reint);
        assert!(pm.is_servable(t) && !pm.is_up(t));
        assert_eq!(pm.up_count(), 8);
        pm.promote_reint();
        assert_eq!(pm.up_count(), 12);
        assert!(pm.is_up(t));
    }

    #[test]
    fn json_round_trip_preserves_version_and_states() {
        let mut pm = PoolMap::new(3, 4);
        pm.exclude(TargetId {
            server: 0,
            target: 1,
        });
        pm.drain_server(1);
        pm.add_server();
        pm.start_reint(TargetId {
            server: 0,
            target: 1,
        });
        let json = pm.to_json();
        let back = PoolMap::from_json(&json).expect("parses");
        assert_eq!(back.version(), pm.version());
        assert_eq!(back.server_count(), pm.server_count());
        assert_eq!(back.total_targets(), pm.total_targets());
        for i in 0..pm.total_targets() {
            let t = pm.target_at(i);
            assert_eq!(back.state(t), pm.state(t), "target {t:?}");
        }
        assert_eq!(back.up_count(), pm.up_count());
        assert_eq!(back.servable_count(), pm.servable_count());
        // byte-identical re-serialization
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_malformed_maps() {
        assert!(PoolMap::from_json("{}").is_err());
        assert!(PoolMap::from_json(
            "{\"servers\":1,\"targets_per_server\":2,\"version\":0,\"states\":[\"up\"]}"
        )
        .is_err());
        assert!(PoolMap::from_json(
            "{\"servers\":1,\"targets_per_server\":1,\"version\":0,\"states\":[\"meteor\"]}"
        )
        .is_err());
        assert!(PoolMap::from_json(
            "{\"servers\":0,\"targets_per_server\":1,\"version\":0,\"states\":[]}"
        )
        .is_err());
    }

    #[test]
    fn layouts_are_stable_for_unchanged_versions() {
        let mut pm = PoolMap::new(4, 16);
        pm.exclude(TargetId {
            server: 2,
            target: 3,
        });
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::RP_2, 0);
        // same version ⇒ identical layout, run after run and across a
        // JSON round trip
        let v = pm.version();
        let l1 = pm.layout(&oid, ObjectClass::RP_2);
        let l2 = pm.layout(&oid, ObjectClass::RP_2);
        assert_eq!(pm.version(), v, "layout generation must not mutate");
        assert_eq!(l1, l2);
        let restored = PoolMap::from_json(&pm.to_json()).unwrap();
        assert_eq!(restored.layout(&oid, ObjectClass::RP_2), l1);
        // a version step (drain) may move placements
        pm.drain_server(0);
        assert!(pm.version() > v);
        let l3 = pm.layout(&oid, ObjectClass::RP_2);
        for g in &l3.groups {
            for t in g {
                assert_ne!(t.server, 0, "drained server excluded from new layouts");
            }
        }
    }

    #[test]
    fn s1_layout_single_target() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::S1, 0);
        let l = pm.layout(&oid, ObjectClass::S1);
        assert_eq!(l.groups.len(), 1);
        assert_eq!(l.groups[0].len(), 1);
    }

    #[test]
    fn sx_layout_covers_all_targets() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::SX, 0);
        let l = pm.layout(&oid, ObjectClass::SX);
        assert_eq!(l.groups.len(), 64);
        let mut seen: Vec<TargetId> = l.groups.iter().map(|g| g[0]).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 64, "every target appears exactly once");
    }

    #[test]
    fn ec_groups_have_distinct_members() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::EC_2P1, 0);
        let l = pm.layout(&oid, ObjectClass::EC_2P1);
        for g in &l.groups {
            assert_eq!(g.len(), 3);
            let mut m = g.clone();
            m.sort();
            m.dedup();
            assert_eq!(m.len(), 3, "group members must be distinct targets");
        }
    }

    #[test]
    fn layout_is_deterministic_and_spread() {
        let pm = PoolMap::new(4, 16);
        let mut alloc = OidAllocator::new();
        let mut starts = std::collections::HashSet::new();
        for _ in 0..64 {
            let oid = alloc.next(ObjectClass::S1, 0);
            let l1 = pm.layout(&oid, ObjectClass::S1);
            let l2 = pm.layout(&oid, ObjectClass::S1);
            assert_eq!(l1, l2, "deterministic");
            starts.insert(l1.groups[0][0]);
        }
        assert!(
            starts.len() > 32,
            "S1 objects spread over targets: {}",
            starts.len()
        );
    }

    #[test]
    fn layout_avoids_down_targets() {
        let mut pm = PoolMap::new(2, 4);
        pm.exclude_server(0);
        let mut alloc = OidAllocator::new();
        for _ in 0..32 {
            let oid = alloc.next(ObjectClass::RP_2, 0);
            let l = pm.layout(&oid, ObjectClass::RP_2);
            for g in &l.groups {
                for t in g {
                    assert_eq!(t.server, 1, "placement must skip down server");
                }
            }
        }
    }

    #[test]
    fn layout_skips_drain_and_reint_targets() {
        let mut pm = PoolMap::new(3, 4);
        pm.drain_server(0);
        pm.add_server(); // server 3, all Reint
        let mut alloc = OidAllocator::new();
        for _ in 0..16 {
            let oid = alloc.next(ObjectClass::RP_2, 0);
            let l = pm.layout(&oid, ObjectClass::RP_2);
            for g in &l.groups {
                for t in g {
                    assert!(
                        t.server == 1 || t.server == 2,
                        "placement must use Up targets only, got {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn group_for_is_stable() {
        let pm = PoolMap::new(2, 8);
        let mut alloc = OidAllocator::new();
        let oid = alloc.next(ObjectClass::SX, 0);
        let l = pm.layout(&oid, ObjectClass::SX);
        assert_eq!(l.group_for(5), l.group_for(5 + 16 * l.groups.len() as u64));
        assert_eq!(l.group_index(3), 3 % l.groups.len());
    }
}
