//! A numerical-weather-prediction archive pipeline on FDB — the
//! domain scenario that motivates the paper.
//!
//! Four "model writer" processes archive one forecast cycle (members ×
//! params × levels) through FDB's DAOS backend; a "product generator"
//! then retrieves a slice of the fields.  Everything round-trips with
//! real bytes.
//!
//! ```text
//! cargo run --release --example weather_archive
//! ```

use cluster::{ClusterSpec, Payload, GIB, MIB};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use fdb_sim::{Fdb, FdbDaos, FieldKey};
use simkit::{run, OpId, Scheduler, SimTime, SplitMix64, Step, World};
use std::cell::RefCell;
use std::rc::Rc;

struct Done(SimTime);
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn exec(sched: &mut Scheduler, step: Step) {
    sched.submit(step, OpId(0));
    run(sched, &mut Done(SimTime::ZERO));
}

fn main() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 2).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos));
    let (mut fdb, s) = FdbDaos::new(daos, 0, cid, ObjectClass::S1, ObjectClass::S1).unwrap();
    exec(&mut sched, s);

    // --- archive: 4 ensemble members, 8 params x 4 levels each ---------
    let field_bytes = MIB as usize / 4;
    let mut rng = SplitMix64::new(2026_0706);
    let mut archived = Vec::new();
    let t0 = sched.now();
    for member in 0..4usize {
        for i in 0..32usize {
            let key = FieldKey::sequence(member, i);
            let mut field = vec![0u8; field_bytes];
            rng.fill_bytes(&mut field);
            let step = fdb
                .archive(member % 2, member, &key, Payload::Bytes(field.clone()))
                .unwrap();
            exec(&mut sched, step);
            archived.push((key, field));
        }
        let step = fdb.flush(member % 2, member).unwrap();
        exec(&mut sched, step);
    }
    let t_archive = sched.now().secs_since(t0);
    let volume = archived.len() as f64 * field_bytes as f64;
    println!(
        "archived {} fields ({:.1} MiB) in {:.3}s simulated -> {:.2} GiB/s",
        archived.len(),
        volume / MIB,
        t_archive,
        volume / t_archive / GIB
    );

    // --- retrieve: the product generator pulls every 4th field ----------
    let t0 = sched.now();
    let mut checked = 0;
    for (key, expect) in archived.iter().step_by(4) {
        let (data, step) = fdb.retrieve(1, 99, key).unwrap();
        exec(&mut sched, step);
        assert_eq!(data.bytes().unwrap(), &expect[..], "field {key} corrupt");
        checked += 1;
    }
    let t_retrieve = sched.now().secs_since(t0);
    println!(
        "retrieved and verified {checked} fields in {:.3}s simulated \
         (every retrieval paid its ~10 Key-Value index lookups)",
        t_retrieve
    );
    println!("total simulated time: {}", sched.now());
}
