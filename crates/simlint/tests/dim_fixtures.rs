//! Fixture-workspace tests for the stage-4 dimension pass.
//!
//! Mirrors `cost_fixtures.rs`: the `dim_taint` fixture is a miniature
//! workspace that is analyzed — never compiled — with at least one true
//! positive and one clean negative per dimension analysis.  The CLI
//! tests drive the built binary end-to-end to cover `--deny`, baselines
//! and the version-checked index cache.

use std::path::PathBuf;
use std::process::Command;

use simlint::{dim, flow};
use simlint::{Finding, Severity};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze_fixture(name: &str) -> Vec<Finding> {
    dim::analyze_tree(&fixture_root(name)).expect("fixture tree readable")
}

// ---------------------------------------------------------------------------
// dim-mixed-add
// ---------------------------------------------------------------------------

#[test]
fn mixed_add_true_positive_and_same_unit_negative() {
    let findings = analyze_fixture("dim_taint");
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "dim-mixed-add")
        .collect();
    let hit = hits
        .iter()
        .find(|f| f.message.contains("Xfer::mixed_sum"))
        .expect("bytes + ns flagged");
    assert_eq!(hit.severity, Severity::Error, "{hit:?}");
    assert!(hit.message.contains("bytes") && hit.message.contains("ns"));
    // Same-dimension addition stays silent.
    assert!(
        hits.iter().all(|f| !f.message.contains("Xfer::total_len")),
        "{hits:#?}"
    );
}

#[test]
fn allow_directive_suppresses_mixed_add() {
    let findings = analyze_fixture("dim_taint");
    assert!(
        findings.iter().all(|f| !f.message.contains("Xfer::packed")),
        "{findings:#?}"
    );
}

// ---------------------------------------------------------------------------
// dim-divide-no-convert
// ---------------------------------------------------------------------------

#[test]
fn divide_no_convert_true_positive_and_helper_negative() {
    let findings = analyze_fixture("dim_taint");
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "dim-divide-no-convert")
        .collect();
    let hit = hits
        .iter()
        .find(|f| f.message.contains("Xfer::eta_broken"))
        .expect("seconds reaching Step::delay flagged");
    assert_eq!(hit.severity, Severity::Error, "{hit:?}");
    assert!(hit.message.contains("Step::delay"), "{hit:?}");
    // Routing through the registered secs_to_ns helper is clean.
    assert!(
        hits.iter().all(|f| !f.message.contains("Xfer::eta_fixed")),
        "{hits:#?}"
    );
}

// ---------------------------------------------------------------------------
// dim-unchecked-sink
// ---------------------------------------------------------------------------

#[test]
fn derived_product_at_sink_true_positive_and_plain_bytes_negative() {
    let findings = analyze_fixture("dim_taint");
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "dim-unchecked-sink")
        .collect();
    let hit = hits
        .iter()
        .find(|f| f.message.contains("Xfer::units_broken"))
        .expect("bytes * rate reaching Step::transfer flagged");
    assert_eq!(hit.severity, Severity::Warn, "{hit:?}");
    assert!(hit.message.contains("bytes*bytes_per_sec"), "{hit:?}");
    assert!(
        hits.iter()
            .all(|f| !f.message.contains("Xfer::units_fixed")),
        "{hits:#?}"
    );
}

// ---------------------------------------------------------------------------
// dim-raw-literal
// ---------------------------------------------------------------------------

#[test]
fn raw_literal_true_positive_and_units_module_exemption() {
    let findings = analyze_fixture("dim_taint");
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "dim-raw-literal")
        .collect();
    assert!(
        hits.iter().any(|f| f.message.contains("Xfer::eta_inline")),
        "{hits:#?}"
    );
    // The named constant and the whole units module stay silent: the
    // fixture units.rs deliberately contains `1e9`, `1_000_000_000` and
    // `1024.0 * 1024.0`.
    assert!(
        hits.iter().all(|f| !f.message.contains("Xfer::eta_named")),
        "{hits:#?}"
    );
    assert!(
        hits.iter().all(|f| !f.path.ends_with("units.rs")),
        "{hits:#?}"
    );
}

// ---------------------------------------------------------------------------
// index cache round-trip at the bumped format version
// ---------------------------------------------------------------------------

#[test]
fn index_round_trip_preserves_dim_findings() {
    let root = fixture_root("dim_taint");
    let sources = flow::read_sources(&root).expect("fixture sources");
    let index = flow::build_index(&sources);
    let json = flow::index_to_json(&index);
    assert!(
        json.starts_with("{\"version\":4,"),
        "stage 4 must bump the index format version"
    );
    let restored = flow::index_from_json(&json).expect("round trip");
    assert_eq!(index, restored);
    assert_eq!(
        dim::analyze(&index, &sources),
        dim::analyze(&restored, &sources)
    );
}

#[test]
fn stale_format_version_is_rejected() {
    let root = fixture_root("dim_taint");
    let sources = flow::read_sources(&root).expect("fixture sources");
    let json = flow::index_to_json(&flow::build_index(&sources));
    let stale = json.replacen("{\"version\":4,", "{\"version\":3,", 1);
    assert!(
        flow::index_from_json(&stale).is_err(),
        "pre-stage-4 caches must be rebuilt, not trusted"
    );
}

// ---------------------------------------------------------------------------
// CLI end-to-end: --deny, --baseline, --save-index/--load-index
// ---------------------------------------------------------------------------

fn simlint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simlint-dim-{}-{name}", std::process::id()))
}

#[test]
fn cli_deny_fails_on_dim_fixture_and_baseline_accepts_it() {
    let root = fixture_root("dim_taint");

    let status = simlint_cmd()
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("run simlint");
    assert!(
        !status.status.success(),
        "dimension errors must fail --deny"
    );

    let baseline = scratch("baseline.json");
    let status = simlint_cmd()
        .args(["--root"])
        .arg(&root)
        .args(["--write-baseline"])
        .arg(&baseline)
        .output()
        .expect("write baseline");
    assert!(status.status.success());
    let status = simlint_cmd()
        .args(["--deny", "--root"])
        .arg(&root)
        .args(["--baseline"])
        .arg(&baseline)
        .output()
        .expect("run with baseline");
    assert!(
        status.status.success(),
        "baselined errors must not fail --deny"
    );
    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn cli_index_cache_reproduces_dim_findings() {
    let root = fixture_root("dim_taint");
    let index = scratch("index.json");

    let first = simlint_cmd()
        .args(["--json", "--root"])
        .arg(&root)
        .args(["--save-index"])
        .arg(&index)
        .output()
        .expect("save index");
    let second = simlint_cmd()
        .args(["--json", "--root"])
        .arg(&root)
        .args(["--load-index"])
        .arg(&index)
        .output()
        .expect("load index");
    assert_eq!(first.stdout, second.stdout);
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("dim-divide-no-convert"), "{stdout}");
    assert!(stdout.contains("dim-mixed-add"), "{stdout}");
    let _ = std::fs::remove_file(&index);
}
