//! Unified run reports: one artifact per run aggregating bandwidth,
//! windowed utilisation (with peak windows and busy intervals), tail
//! latencies up to p99.9, telemetry counter totals and SLO verdicts.
//!
//! A [`RunReport`] is collected from a scheduler that ran with the
//! telemetry registry, span recording and a windowed [`Monitor`] all
//! enabled — the three observers that, per their shared determinism
//! contract, never perturb the replay digest.  It renders two ways:
//!
//! * [`RunReport::render_json`] — stable field order via
//!   [`simkit::Json`], exact integers, byte-identical across replays
//!   (the artifact CI uploads and diffs);
//! * [`RunReport::render_text`] — the aligned human-readable summary.
//!
//! The SLO half is declarative: a rule set ([`default_slo_rules`] for
//! the healthy scenario family, [`faulted_slo_rules`] for runs where
//! faults are *supposed* to fire) is evaluated after the run by
//! [`simkit::evaluate_slos`] and the verdicts land in the report.  The
//! repro harness's `report` target compares those verdicts against the
//! committed `SLO_baseline.json` and fails CI when a rule that passed
//! at the seed starts failing.

use crate::driver::PhaseResult;
use crate::faulted::{FaultedOpts, FaultedReport, FaultedScenario, PlanSource};
use crate::rebalance::{RebalanceOpts, RebalanceRunReport, RebalanceScenario};
use crate::scenarios::{make_sched, run_scenario_on, RunSpec, Scenario};
use cluster::Calibration;
use simkit::{
    chrome_trace_json_with_counters, evaluate_slos, generate, layer_histograms, render_slo_text,
    ChaosConfig, Json, Monitor, Rate, ResourceId, Scheduler, SloInputs, SloRule, SloVerdict,
};
use std::fmt::Write as _;

/// Telemetry / monitor window width for reported runs: 10 ms of sim
/// time, fine enough that a small scenario still spans tens of windows,
/// coarse enough that counter-track exports stay a few hundred KiB.
// simlint::dim(ns)
pub const RUN_REPORT_WINDOW_NS: u64 = 10_000_000;

/// Utilisation fraction at or above which a window counts as busy for
/// the report's busy-interval rows.
pub const BUSY_THRESHOLD: f64 = 0.95;

/// The SLO rule set for healthy runs: bounded tails, no endless
/// saturation, no faults, no exhausted retries.
pub fn default_slo_rules() -> Vec<SloRule> {
    vec![
        // No (layer, op) pair's p99.9 latency past 30 simulated seconds.
        SloRule::latency("tail-p999-bounded", "*", "*", 999, 30_000_000_000),
        // No resource pinned at >=99.9% capacity for 2000 consecutive
        // windows (20 s of sim time at the report window width).
        SloRule::utilisation_burn("no-endless-saturation", "*", 999, 2_000),
        SloRule::counter_ceiling("no-faults-fired", "engine.faults.fired", 0),
        SloRule::counter_ceiling("no-ops-gave-up", "daos.retry.gave_up", 0),
        // the end-to-end integrity contract: a verified read either
        // serves bytes whose checksum matches or refuses — never both
        SloRule::counter_ceiling("served-corrupt-never", "daos.csum.served_corrupt", 0),
        SloRule::counter_ceiling("scrub-all-repairable", "daos.scrub.unrepairable", 0),
    ]
}

/// The SLO rule set for the faulted/chaos/rebalance families: faults
/// fire by design, but tails stay bounded, retries must absorb every
/// failure, and the schedule stays within the chaos budget.
pub fn faulted_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule::latency("tail-p999-bounded", "*", "*", 999, 30_000_000_000),
        SloRule::counter_ceiling("no-ops-gave-up", "daos.retry.gave_up", 0),
        SloRule::counter_ceiling("faults-bounded", "engine.faults.fired", 64),
        // even under chaos, corrupt bytes are never served: detected rot
        // is repaired in place or the read refuses loudly
        SloRule::counter_ceiling("served-corrupt-never", "daos.csum.served_corrupt", 0),
        SloRule::counter_ceiling("scrub-all-repairable", "daos.scrub.unrepairable", 0),
    ]
}

/// One resource's utilisation row: the monitor's windowed series
/// summarised by mean, peak (with its window), and the intervals spent
/// at or above [`BUSY_THRESHOLD`].
#[derive(Debug, Clone)]
pub struct ResourceReport {
    /// Resource name as registered with the scheduler.
    pub name: String,
    /// Mean utilisation fraction over all windows.
    pub mean_fraction: f64,
    /// Peak single-window utilisation fraction.
    pub peak_fraction: f64,
    /// Index of the peak window (earliest on ties).
    pub peak_window: usize,
    /// Half-open `[start, end)` window runs at or above the busy
    /// threshold.
    pub busy: Vec<(usize, usize)>,
}

/// One `(layer, op)` latency row, quantiles from the span histograms.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Span layer.
    pub layer: &'static str,
    /// Operation within the layer.
    pub op: &'static str,
    /// Closed spans measured.
    pub count: u64,
    // simlint::dim(ns)
    pub p50: u64,
    // simlint::dim(ns)
    pub p95: u64,
    // simlint::dim(ns)
    pub p99: u64,
    // simlint::dim(ns)
    pub p999: u64,
    // simlint::dim(ns)
    pub max: u64,
}

/// The unified per-run artifact.  Byte-identical across replays of the
/// same run in both renderings.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario display name.
    pub scenario: String,
    /// Write-phase bandwidth in GiB/s.
    pub write_gib: f64,
    /// Read-phase bandwidth in GiB/s.
    pub read_gib: f64,
    /// Replay digest over the `(time, op)` completion stream.
    pub replay_digest: u64,
    /// Span-stream digest.
    pub span_digest: u64,
    /// Telemetry/monitor window width.
    // simlint::dim(ns)
    pub window_ns: u64,
    /// Windows the longest metric row spans.
    pub num_windows: usize,
    /// Per-resource utilisation rows (capacity resources only, ordered
    /// by registration).
    pub resources: Vec<ResourceReport>,
    /// Per-`(layer, op)` latency quantiles, key order.
    pub latencies: Vec<LatencyRow>,
    /// Telemetry totals, name order.
    pub counters: Vec<(String, u64)>,
    /// SLO verdicts, rule order.
    pub verdicts: Vec<SloVerdict>,
}

impl RunReport {
    /// Collect a report from a scheduler that ran with telemetry, spans
    /// and a windowed monitor enabled.
    pub fn collect(
        sched: &Scheduler,
        scenario: &str,
        write: &PhaseResult,
        read: &PhaseResult,
        rules: &[SloRule],
    ) -> RunReport {
        let tel = sched.telemetry();
        let hists = layer_histograms(sched.spans());
        let mon = sched.monitor();
        let caps = sched.capacities().to_vec();

        let mut utilisation: Vec<(String, Vec<f64>)> = Vec::new();
        let mut resources = Vec::new();
        for (i, &cap) in caps.iter().enumerate() {
            if cap <= Rate::ZERO {
                continue;
            }
            let r = ResourceId(i as u32);
            let fr = mon.window_fractions(r, cap);
            if fr.is_empty() {
                continue;
            }
            let mean = fr.iter().sum::<f64>() / fr.len() as f64;
            let (peak_window, peak_fraction) = mon.peak_window(r, cap).unwrap_or((0, 0.0));
            resources.push(ResourceReport {
                name: sched.resource_name(r).to_string(),
                mean_fraction: mean,
                peak_fraction,
                peak_window,
                busy: mon.busy_intervals(r, cap, BUSY_THRESHOLD),
            });
            utilisation.push((sched.resource_name(r).to_string(), fr));
        }

        let latencies = hists
            .iter()
            .map(|(&(layer, op), h)| {
                let (p50, p95, p99, p999, max) = h.summary();
                LatencyRow {
                    layer,
                    op,
                    count: h.count(),
                    p50,
                    p95,
                    p99,
                    p999,
                    max,
                }
            })
            .collect();

        let mut counters: Vec<(String, u64)> = tel
            .views()
            .iter()
            .map(|v| (v.name.to_string(), v.total))
            .collect();
        counters.sort();

        let verdicts = evaluate_slos(
            rules,
            &SloInputs {
                latencies: &hists,
                utilisation: &utilisation,
                telemetry: tel,
            },
        );

        RunReport {
            scenario: scenario.to_string(),
            write_gib: write.bandwidth() / cluster::GIB,
            read_gib: read.bandwidth() / cluster::GIB,
            replay_digest: sched.digest(),
            span_digest: sched.span_digest(),
            window_ns: tel.window_ns(),
            num_windows: tel.num_windows(),
            resources,
            latencies,
            counters,
            verdicts,
        }
    }

    /// True when every SLO rule passed.
    pub fn slo_ok(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// The report as a [`Json`] tree with stable field order.
    pub fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let resources = self
            .resources
            .iter()
            .map(|r| {
                obj(vec![
                    ("name", Json::Str(r.name.clone())),
                    (
                        "mean_fraction",
                        Json::Num(format!("{:.4}", r.mean_fraction)),
                    ),
                    (
                        "peak_fraction",
                        Json::Num(format!("{:.4}", r.peak_fraction)),
                    ),
                    ("peak_window", Json::num_u64(r.peak_window as u64)),
                    (
                        "busy",
                        Json::Arr(
                            r.busy
                                .iter()
                                .map(|&(s, e)| {
                                    Json::Arr(vec![
                                        Json::num_u64(s as u64),
                                        Json::num_u64(e as u64),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let latencies = self
            .latencies
            .iter()
            .map(|l| {
                obj(vec![
                    ("layer", Json::Str(l.layer.to_string())),
                    ("op", Json::Str(l.op.to_string())),
                    ("count", Json::num_u64(l.count)),
                    ("p50", Json::num_u64(l.p50)),
                    ("p95", Json::num_u64(l.p95)),
                    ("p99", Json::num_u64(l.p99)),
                    ("p999", Json::num_u64(l.p999)),
                    ("max", Json::num_u64(l.max)),
                ])
            })
            .collect();
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(name, total)| (name.clone(), Json::num_u64(*total)))
                .collect(),
        );
        let slo = self
            .verdicts
            .iter()
            .map(|v| {
                obj(vec![
                    ("rule", Json::Str(v.rule.clone())),
                    ("pass", Json::Bool(v.pass)),
                    ("observed", Json::num_u64(v.observed)),
                    ("limit", Json::num_u64(v.limit)),
                ])
            })
            .collect();
        obj(vec![
            ("scenario", Json::Str(self.scenario.clone())),
            ("write_bw_gib", Json::Num(format!("{:.3}", self.write_gib))),
            ("read_bw_gib", Json::Num(format!("{:.3}", self.read_gib))),
            (
                "replay_digest",
                Json::Str(format!("{:#018x}", self.replay_digest)),
            ),
            (
                "span_digest",
                Json::Str(format!("{:#018x}", self.span_digest)),
            ),
            ("window_ns", Json::num_u64(self.window_ns)),
            ("num_windows", Json::num_u64(self.num_windows as u64)),
            ("resources", Json::Arr(resources)),
            ("latency_ns", Json::Arr(latencies)),
            ("counters", counters),
            ("slo", Json::Arr(slo)),
        ])
    }

    /// Render the JSON artifact (stable order, trailing newline).
    pub fn render_json(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }

    /// Render the aligned text summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== run report: {} ==", self.scenario);
        let _ = writeln!(
            out,
            "bandwidth: write {:.3} GiB/s, read {:.3} GiB/s",
            self.write_gib, self.read_gib
        );
        let _ = writeln!(
            out,
            "replay digest {:#018x}, span digest {:#018x}",
            self.replay_digest, self.span_digest
        );
        let _ = writeln!(
            out,
            "telemetry: {} metrics over {} windows of {} ms",
            self.counters.len(),
            self.num_windows,
            self.window_ns / 1_000_000
        );
        let _ = writeln!(out, "\nutilisation (mean / peak @ window, busy runs):");
        for r in &self.resources {
            let busy: Vec<String> = r.busy.iter().map(|&(s, e)| format!("{s}..{e}")).collect();
            let _ = writeln!(
                out,
                "  {:<24} {:>6.3} / {:>6.3} @ {:<6} [{}]",
                r.name,
                r.mean_fraction,
                r.peak_fraction,
                r.peak_window,
                busy.join(", ")
            );
        }
        let _ = writeln!(out, "\nlatency (p50/p95/p99/p99.9/max) us:");
        for l in &self.latencies {
            let us = |ns: u64| ns as f64 / 1_000.0;
            let _ = writeln!(
                out,
                "  {:<10} {:<12} n={:<7} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                l.layer,
                l.op,
                l.count,
                us(l.p50),
                us(l.p95),
                us(l.p99),
                us(l.p999),
                us(l.max)
            );
        }
        let _ = writeln!(out, "\ncounters:");
        for (name, total) in &self.counters {
            let _ = writeln!(out, "  {name:<40} {total:>12}");
        }
        let _ = writeln!(out, "\nslo:");
        out.push_str(&render_slo_text(&self.verdicts));
        out
    }
}

/// One reported run of a plain scenario.
#[derive(Debug, Clone)]
pub struct ReportedRun {
    /// The unified report.
    pub report: RunReport,
    /// Chrome trace JSON with the telemetry counter tracks merged in —
    /// load in Perfetto to see spans and counters on one timeline.
    pub trace_json: String,
}

/// Run a plain scenario with telemetry, spans and a windowed monitor
/// all enabled, and collect the unified report plus the merged trace.
/// The scheduler configuration is identical to
/// [`crate::run_scenario_digest`]'s, so the replay digest in the report
/// must equal the untelemetered run's — the contract the span
/// determinism suite asserts for every scenario.
// simlint::digest_root — reported-run replay-digest entry
pub fn run_reported(
    spec: &RunSpec,
    scen: Scenario,
    cal: &Calibration,
    rules: &[SloRule],
) -> ReportedRun {
    let mut sched = make_sched(spec, false);
    sched.set_monitor(Monitor::windowed(RUN_REPORT_WINDOW_NS));
    sched.enable_spans();
    sched.enable_telemetry(RUN_REPORT_WINDOW_NS);
    let (result, _) = run_scenario_on(&mut sched, spec, scen, cal);
    let report = RunReport::collect(&sched, scen.name(), &result.write, &result.read, rules);
    let trace_json = chrome_trace_json_with_counters(sched.spans(), sched.telemetry());
    ReportedRun { report, trace_json }
}

/// Run a faulted scenario with telemetry enabled: the returned report's
/// `run_report` field carries the unified artifact (evaluated against
/// [`faulted_slo_rules`]).
pub fn report_faulted(spec: &RunSpec, scen: FaultedScenario, cal: &Calibration) -> FaultedReport {
    let opts = FaultedOpts {
        traced: true,
        telemetry: true,
        ..FaultedOpts::default()
    };
    crate::faulted::run_faulted_with(spec, scen, cal, &opts).0
}

/// Run a chaos-generated schedule through the faulted family with
/// telemetry enabled (chaos capacity weather plus the crash surface,
/// all folded into the same unified report).
pub fn report_chaos_case(
    spec: &RunSpec,
    scen: FaultedScenario,
    cal: &Calibration,
    seed: u64,
) -> FaultedReport {
    let space = crate::chaos::chaos_space(spec, cal);
    let plan = generate(&space, &ChaosConfig::default(), seed);
    let opts = FaultedOpts {
        plan: PlanSource::Fixed(plan),
        traced: true,
        telemetry: true,
        ..FaultedOpts::default()
    };
    crate::faulted::run_faulted_with(spec, scen, cal, &opts).0
}

/// Run a rebalance scenario with telemetry enabled: the returned
/// report's `run_report` field carries the unified artifact, including
/// the migration-wave counters.
pub fn report_rebalance(
    spec: &RunSpec,
    scen: RebalanceScenario,
    cal: &Calibration,
) -> RebalanceRunReport {
    let opts = RebalanceOpts {
        telemetry: true,
        ..RebalanceOpts::default()
    };
    crate::rebalance::run_rebalance_with(spec, scen, cal, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::run_scenario_digest;

    fn small_spec() -> RunSpec {
        let mut spec = RunSpec::new(1, 1, 2);
        spec.ops_per_proc = 8;
        spec
    }

    #[test]
    fn reported_run_matches_untelemetered_digest() {
        let spec = small_spec();
        let cal = Calibration::default();
        let (_, plain) = run_scenario_digest(&spec, Scenario::IorDfs, &cal);
        let reported = run_reported(&spec, Scenario::IorDfs, &cal, &default_slo_rules());
        assert_eq!(
            reported.report.replay_digest, plain,
            "telemetry changed the schedule"
        );
        assert!(reported.report.num_windows > 0, "no windows sampled");
        assert!(
            reported
                .report
                .counters
                .iter()
                .any(|(n, _)| n == "engine.ops.completed"),
            "engine counters missing"
        );
    }

    #[test]
    fn report_artifacts_are_byte_identical_across_replays() {
        let spec = small_spec();
        let cal = Calibration::default();
        let a = run_reported(&spec, Scenario::IorDaos, &cal, &default_slo_rules());
        let b = run_reported(&spec, Scenario::IorDaos, &cal, &default_slo_rules());
        assert_eq!(a.report.render_json(), b.report.render_json());
        assert_eq!(a.report.render_text(), b.report.render_text());
        assert_eq!(a.trace_json, b.trace_json);
        // merged trace carries both span and counter events
        assert!(a.trace_json.contains("\"ph\":\"X\""));
        assert!(a.trace_json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn healthy_run_passes_default_slos() {
        let r = run_reported(
            &small_spec(),
            Scenario::IorDaos,
            &Calibration::default(),
            &default_slo_rules(),
        );
        assert!(r.report.slo_ok(), "{:?}", r.report.verdicts);
        // json parses back and keeps the verdict count
        let parsed = simkit::json::parse(&r.report.render_json()).expect("valid json");
        assert_eq!(
            parsed.get("slo").and_then(|s| s.as_arr()).map(|a| a.len()),
            Some(default_slo_rules().len())
        );
        assert!(parsed.get("scenario").is_some());
    }

    #[test]
    fn report_folds_busy_intervals_and_tail_latencies() {
        let r = run_reported(
            &small_spec(),
            Scenario::IorDfuse,
            &Calibration::default(),
            &default_slo_rules(),
        );
        assert!(!r.report.resources.is_empty(), "no utilisation rows");
        assert!(!r.report.latencies.is_empty(), "no latency rows");
        for l in &r.report.latencies {
            assert!(l.p999 >= l.p99, "{}.{}: p99.9 below p99", l.layer, l.op);
            assert!(l.max >= l.p999);
        }
        let text = r.report.render_text();
        assert!(text.contains("p99.9"), "{text}");
        assert!(text.contains("slo:"));
    }

    #[test]
    fn faulted_report_carries_retry_and_rebuild_counters() {
        let mut spec = crate::faulted::default_faulted_spec();
        spec.ops_per_proc = 32;
        let r = report_faulted(&spec, FaultedScenario::IorEasyRp2, &Calibration::default());
        let run = r.run_report.as_ref().expect("telemetry report");
        let total = |name: &str| {
            run.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(total("daos.retry.attempts"), r.retry.attempts);
        assert_eq!(total("daos.retry.retries"), r.retry.retries);
        assert!(total("engine.faults.fired") > 0, "no faults counted");
        let rb = r.rebuild.as_ref().expect("rebuild ran");
        assert_eq!(
            total("daos.rebuild.shards_rebuilt"),
            rb.shards_rebuilt as u64
        );
        assert!(total("span.retry.backoff") > 0, "retry spans not counted");
        assert!(run.slo_ok(), "{:?}", run.verdicts);
        // telemetry+spans leave the faulted digest untouched
        let plain = crate::faulted::run_faulted(
            &spec,
            FaultedScenario::IorEasyRp2,
            &Calibration::default(),
        );
        assert_eq!(
            r.digest, plain.digest,
            "telemetry changed the faulted schedule"
        );
    }

    #[test]
    fn rebalance_report_carries_migration_counters() {
        let mut spec = crate::rebalance::default_rebalance_spec();
        spec.ops_per_proc = 24;
        let r = report_rebalance(
            &spec,
            RebalanceScenario::IorEasyRp2,
            &Calibration::default(),
        );
        let run = r.run_report.as_ref().expect("telemetry report");
        let total = |name: &str| {
            run.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(
            total("daos.migration.moves_done"),
            r.migration.moves_done as u64
        );
        assert!(
            total("engine.faults.fired") > 0,
            "membership events counted"
        );
    }
}
