//! End-to-end determinism check: every paper scenario, executed twice
//! from fresh state, must produce identical replay digests and
//! bit-identical bandwidths.  This is the runtime counterpart of the
//! `simlint` static pass — if simulation state regresses to hash-ordered
//! iteration (or sim logic starts reading clocks/environment), this test
//! is what catches it.

use benchkit::{replay_all, RunSpec, Scenario};
use cluster::Calibration;

#[test]
fn every_scenario_replays_identically() {
    // Small but non-trivial: multiple processes on multiple nodes so
    // completions genuinely interleave, and enough ops per process to
    // exercise setup, steady state and drain in both phases.
    let mut spec = RunSpec::new(2, 2, 4);
    spec.ops_per_proc = 12;
    let reports = replay_all(&spec, &Calibration::default());
    assert_eq!(reports.len(), Scenario::ALL.len());
    let mut failures = Vec::new();
    for r in &reports {
        if !r.deterministic() {
            failures.push(format!(
                "{}: digests {:#018x} vs {:#018x}, bandwidths {:?} vs {:?}",
                r.scenario.name(),
                r.digests[0],
                r.digests[1],
                r.bandwidths[0],
                r.bandwidths[1],
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "nondeterministic scenarios:\n{}",
        failures.join("\n")
    );
}

#[test]
fn digest_distinguishes_workload_shape() {
    // Changing the workload must change the digest: the digest reflects
    // the schedule, not just "a run happened".
    let cal = Calibration::default();
    let mut a = RunSpec::new(1, 1, 2);
    a.ops_per_proc = 8;
    let mut b = a.clone();
    b.ops_per_proc = 9;
    let ra = benchkit::run_scenario_digest(&a, Scenario::IorDaos, &cal).1;
    let rb = benchkit::run_scenario_digest(&b, Scenario::IorDaos, &cal).1;
    assert_ne!(ra, rb);
}
