//! Deterministic fault injection: scheduled events the engine applies at
//! exact simulated times.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s built before (or
//! during) a run and installed on the [`Scheduler`](crate::Scheduler) with
//! [`Scheduler::install_faults`](crate::Scheduler::install_faults).  The
//! run loop fires each event when simulated time reaches it **while work
//! is pending** — a run that drains before a fault's time completes
//! normally and leaves the fault armed for the next run phase, so untimed
//! setup barriers never fast-forward through the failure schedule.
//!
//! Two event kinds are applied by the engine itself (capacity scaling for
//! [`FaultAction::SlowDisk`] and [`FaultAction::NicBrownout`]); the rest
//! are *domain* events the engine only times and digests — the
//! [`World`](crate::World) receives every fired event through
//! [`World::on_fault`](crate::World::on_fault) and maps crash/restart/
//! delay payloads onto its own storage-system state.
//!
//! Every fired event is folded into the replay digest with a tag byte, so
//! a faulted run's digest covers the failure schedule as well as the op
//! completion stream: replaying with a different plan (or the same plan
//! firing at different times) is detected exactly like any other schedule
//! divergence.

use crate::step::ResourceId;
use crate::time::SimTime;

/// What a fault event does when it fires.
///
/// `TargetCrash`/`TargetRestart`/`DelayedCompletion` carry an opaque
/// `u64` payload interpreted by the [`World`](crate::World) (the DAOS
/// layer packs a `(server, target)` pair; a baseline may pack an OST
/// index).  `SlowDisk`/`NicBrownout` name an engine resource directly and
/// are applied by the scheduler as capacity scaling relative to the
/// resource's registered baseline — `scale: 1.0` restores full capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// A storage target fails: the world should mark it down and route
    /// around it (degraded reads, failover, rebuild).
    TargetCrash(u64),
    /// A previously-crashed target returns (reintegration).
    TargetRestart(u64),
    /// Transient slow disk: scale the resource's capacity to
    /// `baseline × scale`.  Must be `> 0` — a dead device is a
    /// [`FaultAction::TargetCrash`], not a zero-rate flow (which would
    /// stall the run).
    SlowDisk {
        /// The degraded device resource.
        resource: ResourceId,
        /// Fraction of baseline capacity (0 < scale, 1.0 = restored).
        scale: f64,
    },
    /// Network brownout: like [`FaultAction::SlowDisk`] but for a NIC
    /// direction resource.  Kept distinct so plans read like the failure
    /// they model and reports can attribute slowdowns.
    NicBrownout {
        /// The degraded NIC resource.
        resource: ResourceId,
        /// Fraction of baseline capacity (0 < scale, 1.0 = restored).
        scale: f64,
    },
    /// Completions involving `payload` (world-interpreted, e.g. a server
    /// rank) take `extra_ns` longer until cleared with `extra_ns: 0`.
    DelayedCompletion {
        /// World-interpreted locator for the slow component.
        payload: u64,
        /// Added latency in nanoseconds (0 clears the fault).
        extra_ns: u64,
    },
}

/// One scheduled fault: an action firing at an exact simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time at which the event fires (or as soon after as work
    /// is pending).
    pub at: SimTime,
    /// Plan-assigned sequence number; tie-breaks simultaneous events and
    /// is folded into the replay digest with the firing time.
    pub id: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic failure schedule: fault events ordered by `(at, id)`.
///
/// Plans are plain data — building one performs no I/O and consults no
/// clock or RNG, so the same construction code always yields the same
/// schedule.  Randomised schedules seed a
/// [`SplitMix64`](crate::SplitMix64) and derive times from it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `action` at absolute sim time `at`; returns the event id.
    pub fn at(&mut self, at: SimTime, action: FaultAction) -> u64 {
        let id = self.events.len() as u64;
        self.events.push(FaultEvent { at, id, action });
        id
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by `(at, id)` (stable — simultaneous events keep
    /// insertion order).
    pub fn into_events(mut self) -> Vec<FaultEvent> {
        self.events.sort_by_key(|e| (e.at, e.id));
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_events_by_time_then_id() {
        let mut p = FaultPlan::new();
        let a = p.at(SimTime::from_millis(5), FaultAction::TargetCrash(1));
        let b = p.at(SimTime::from_millis(2), FaultAction::TargetCrash(2));
        let c = p.at(SimTime::from_millis(5), FaultAction::TargetRestart(1));
        assert_eq!((a, b, c), (0, 1, 2));
        let evs = p.into_events();
        assert_eq!(evs[0].id, 1, "earliest time first");
        assert_eq!(evs[1].id, 0, "ties keep insertion order");
        assert_eq!(evs[2].id, 2);
    }

    #[test]
    fn plan_construction_is_deterministic() {
        let build = || {
            let mut p = FaultPlan::new();
            p.at(
                SimTime::from_millis(1),
                FaultAction::DelayedCompletion {
                    payload: 3,
                    extra_ns: 200_000,
                },
            );
            p.at(
                SimTime::from_millis(4),
                FaultAction::SlowDisk {
                    resource: ResourceId(7),
                    scale: 0.25,
                },
            );
            p.into_events()
        };
        assert_eq!(build(), build());
    }
}
