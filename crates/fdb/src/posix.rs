//! FDB's POSIX backend: per-writer file pairs with client-side buffering.
//!
//! Mirrors the behaviour §II-A4 describes: each writer process creates an
//! **index file** and a **data file**; small field writes accumulate in
//! client memory and are persisted in large sequential blocks (to avoid
//! throttling the weather model), which is why fdb-hammer writes reach
//! IOR-class bandwidth on Lustre.  Readers, conversely, *open and read
//! the two files for every field*, producing the metadata storm that the
//! centralised Lustre MDS cannot absorb (Fig. 7).

use crate::backend::{Fdb, FdbError};
use crate::key::{FieldKey, KeyQuery};
use cluster::payload::{Payload, ReadPayload};
use cluster::posix::{FsError, PosixFs};
use daos_core::{RetryExec, RetryPolicy, RetryStats};
use simkit::Step;
use std::collections::BTreeMap;

/// Size of one packed index entry on disk.
const INDEX_ENTRY_BYTES: u64 = 512;

#[derive(Debug, Clone, Copy)]
struct TocEntry {
    owner: usize,
    offset: u64,
    len: u64,
    index_slot: u64,
}

struct WriterState {
    data_path: String,
    index_path: String,
    /// Buffered-but-unflushed bytes.
    buffered: f64,
    /// The actual buffered data when payloads carry bytes (Full mode);
    /// `None` once any sized payload degrades the buffer to lengths.
    buf: Option<Vec<u8>>,
    /// Pending index entries to persist with the next flush.
    pending_entries: u64,
    /// Next data-file offset.
    data_off: u64,
    /// Next index slot.
    index_slot: u64,
}

/// FDB over any [`PosixFs`] (a DFUSE mount or the Lustre client).
// simlint::sim_state — replay-visible simulation state
pub struct FdbPosix<P: PosixFs> {
    fs: P,
    flush_bytes: f64,
    writers: BTreeMap<usize, WriterState>,
    toc: BTreeMap<FieldKey, TocEntry>,
    /// Retry machinery around the (idempotent) retrieve path (off by
    /// default).
    retry: RetryExec,
}

impl<P: PosixFs> FdbPosix<P> {
    /// Create the backend over a mounted file system.  `flush_bytes` is
    /// the client-side buffer size (the calibration default is 64 MiB).
    pub fn new(mut fs: P, flush_bytes: f64) -> Result<FdbPosix<P>, FdbError> {
        fs.mkdir(0, "/fdb").map_err(map_fs)?;
        Ok(FdbPosix {
            fs,
            flush_bytes,
            writers: BTreeMap::new(),
            toc: BTreeMap::new(),
            retry: RetryExec::disabled(),
        })
    }

    /// The wrapped file system.
    // simlint::allow(digest-taint) — escape-hatch accessor: mutations made through it land in the inner system's own digested operations
    pub fn fs_mut(&mut self) -> &mut P {
        &mut self.fs
    }

    /// Configure retry/timeout/backoff on the retrieve path (`seed`
    /// drives the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    fn writer(&mut self, node: usize, proc: usize) -> Result<(&mut WriterState, Step), FdbError> {
        let mut setup = Step::Noop;
        if let std::collections::btree_map::Entry::Vacant(slot) = self.writers.entry(proc) {
            let data_path = format!("/fdb/p{proc}.data");
            let index_path = format!("/fdb/p{proc}.index");
            // create both files once; handles are kept open while writing
            let (fd, s1) = self.fs.open(node, &data_path, true).map_err(map_fs)?;
            let s2 = self.fs.close(node, fd).map_err(map_fs)?;
            let (fi, s3) = self.fs.open(node, &index_path, true).map_err(map_fs)?;
            let s4 = self.fs.close(node, fi).map_err(map_fs)?;
            setup = Step::seq([s1, s2, s3, s4]);
            slot.insert(WriterState {
                data_path,
                index_path,
                buffered: 0.0,
                buf: Some(Vec::new()),
                pending_entries: 0,
                data_off: 0,
                index_slot: 0,
            });
        }
        let w = self
            .writers
            .get_mut(&proc)
            .ok_or(FdbError::Backend("writer state missing"))?;
        Ok((w, setup))
    }

    fn flush_writer(&mut self, node: usize, proc: usize) -> Result<Step, FdbError> {
        let (buffered, payload, entries, data_off, data_path, index_path, index_slot) = {
            let w = match self.writers.get_mut(&proc) {
                Some(w) => w,
                None => return Ok(Step::Noop),
            };
            if w.buffered <= 0.0 {
                return Ok(Step::Noop);
            }
            let payload = match w.buf.take() {
                Some(bytes) if bytes.len() as f64 == w.buffered => Payload::Bytes(bytes),
                _ => Payload::Sized(w.buffered as u64),
            };
            let out = (
                w.buffered,
                payload,
                w.pending_entries,
                w.data_off,
                w.data_path.clone(),
                w.index_path.clone(),
                w.index_slot,
            );
            w.buffered = 0.0;
            w.pending_entries = 0;
            w.buf = Some(Vec::new());
            out
        };
        // one large sequential data write + the index entries
        let (fd, s1) = self.fs.open(node, &data_path, false).map_err(map_fs)?;
        let s2 = self
            .fs
            .write(node, fd, data_off - buffered as u64, payload)
            .map_err(map_fs)?;
        let s3 = self.fs.close(node, fd).map_err(map_fs)?;
        let (fi, s4) = self.fs.open(node, &index_path, false).map_err(map_fs)?;
        let idx_bytes = entries * INDEX_ENTRY_BYTES;
        let s5 = self
            .fs
            .write(
                node,
                fi,
                (index_slot - entries) * INDEX_ENTRY_BYTES,
                Payload::Sized(idx_bytes),
            )
            .map_err(map_fs)?;
        let s6 = self.fs.close(node, fi).map_err(map_fs)?;
        Ok(Step::seq([s1, s2, s3, s4, s5, s6]))
    }
}

fn map_fs(e: FsError) -> FdbError {
    match e {
        FsError::NotFound => FdbError::FieldNotFound,
        // the retriable face of a mount/OST fault (see `FdbError`'s
        // `daos_core::retry::Retriable` impl)
        FsError::Unavailable => FdbError::Backend("transient"),
        _ => FdbError::Backend("posix"),
    }
}

impl<P: PosixFs> Fdb for FdbPosix<P> {
    fn setup_proc(&mut self, node: usize, proc: usize) -> Result<Step, FdbError> {
        let (_, setup) = self.writer(node, proc)?;
        Ok(setup)
    }

    fn archive(
        &mut self,
        node: usize,
        proc: usize,
        key: &FieldKey,
        data: Payload,
    ) -> Result<Step, FdbError> {
        let len = data.len();
        let flush_at = self.flush_bytes;
        let (w, setup) = self.writer(node, proc)?;
        let entry = TocEntry {
            owner: proc,
            offset: w.data_off,
            len,
            index_slot: w.index_slot,
        };
        w.data_off += len;
        w.index_slot += 1;
        w.buffered += len as f64;
        w.pending_entries += 1;
        match (&mut w.buf, data.bytes()) {
            (Some(buf), Some(bytes)) => buf.extend_from_slice(bytes),
            // a sized payload degrades this buffer to length tracking
            (buf, None) => *buf = None,
            (None, _) => {}
        }
        let need_flush = w.buffered >= flush_at;
        self.toc.insert(*key, entry);
        let flush = if need_flush {
            self.flush_writer(node, proc)?
        } else {
            Step::Noop
        };
        // buffering is a memcpy; charge a token client-side cost
        Ok(Step::span(
            "fdb",
            "archive",
            len,
            Step::seq([setup, Step::delay(2_000), flush]),
        ))
    }

    fn flush(&mut self, node: usize, proc: usize) -> Result<Step, FdbError> {
        Ok(Step::span(
            "fdb",
            "flush",
            0,
            self.flush_writer(node, proc)?,
        ))
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn list(&mut self, node: usize, query: &KeyQuery) -> Result<(Vec<FieldKey>, Step), FdbError> {
        // scan the index file of every writer whose member could match:
        // open + bulk index read + close per file (metadata-heavy on
        // Lustre, like everything in the fdb read path)
        let owners: Vec<usize> = self
            .writers
            .keys()
            .copied()
            .filter(|o| query.member.is_none_or(|m| m as usize == *o))
            .collect();
        let mut steps = Vec::new();
        for owner in owners {
            let (index_path, slots) = {
                let w = &self.writers[&owner];
                (w.index_path.clone(), w.index_slot)
            };
            let (fi, s1) = self.fs.open(node, &index_path, false).map_err(map_fs)?;
            let (_, s2) = self
                .fs
                .read(node, fi, 0, slots * INDEX_ENTRY_BYTES)
                .map_err(map_fs)?;
            let s3 = self.fs.close(node, fi).map_err(map_fs)?;
            steps.push(Step::seq([s1, s2, s3]));
        }
        let mut keys: Vec<FieldKey> = self
            .toc
            .keys()
            .filter(|k| query.matches(k))
            .copied()
            .collect();
        keys.sort();
        Ok((keys, Step::span("fdb", "list", 0, Step::par(steps))))
    }

    fn retrieve(
        &mut self,
        node: usize,
        _proc: usize,
        key: &FieldKey,
    ) -> Result<(ReadPayload, Step), FdbError> {
        // Take the executor out so the retried closure can borrow `self`.
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run(|| self.retrieve_inner(node, key));
        self.retry = retry;
        let (data, s) = r?;
        let bytes = data.len();
        Ok((data, Step::span("fdb", "retrieve", bytes, s)))
    }
}

impl<P: PosixFs> FdbPosix<P> {
    fn retrieve_inner(
        &mut self,
        node: usize,
        key: &FieldKey,
    ) -> Result<(ReadPayload, Step), FdbError> {
        let entry = *self.toc.get(key).ok_or(FdbError::FieldNotFound)?;
        let (index_path, data_path) = {
            let w = self
                .writers
                .get(&entry.owner)
                .ok_or(FdbError::FieldNotFound)?;
            (w.index_path.clone(), w.data_path.clone())
        };
        // exactly the paper's reader pattern: open index, read the
        // entry, open data, read the field, close both
        let (fi, s1) = self.fs.open(node, &index_path, false).map_err(map_fs)?;
        let (_, s2) = self
            .fs
            .read(
                node,
                fi,
                entry.index_slot * INDEX_ENTRY_BYTES,
                INDEX_ENTRY_BYTES,
            )
            .map_err(map_fs)?;
        let s3 = self.fs.close(node, fi).map_err(map_fs)?;
        let (fd, s4) = self.fs.open(node, &data_path, false).map_err(map_fs)?;
        let (data, s5) = self
            .fs
            .read(node, fd, entry.offset, entry.len)
            .map_err(map_fs)?;
        let s6 = self.fs.close(node, fd).map_err(map_fs)?;
        Ok((data, Step::seq([s1, s2, s3, s4, s5, s6])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::units;
    use cluster::ClusterSpec;
    use lustre_sim::{LustreDataMode, LustreSystem, StripeOpts};
    use simkit::{run, OpId, Scheduler, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    fn lustre_fdb() -> (Scheduler, FdbPosix<LustreSystem>) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let fs = LustreSystem::deploy(
            &topo,
            &mut sched,
            2,
            LustreDataMode::Sized,
            StripeOpts {
                count: 8,
                size: 8 << 20,
            },
        );
        let fdb = FdbPosix::new(fs, 4.0 * units::MIB).unwrap();
        (sched, fdb)
    }

    #[test]
    fn archive_buffers_until_flush_threshold() {
        let (mut sched, mut fdb) = lustre_fdb();
        let mib = 1u64 << 20;
        // first three 1 MiB fields stay buffered (threshold 4 MiB)
        let mut flushed = 0;
        for i in 0..8 {
            let k = FieldKey::sequence(0, i);
            let s = fdb.archive(0, 0, &k, Payload::Sized(mib)).unwrap();
            // a flush moves megabytes; file-creation setup only moves a
            // handful of metadata service ops
            if s.total_units() > 1024.0 {
                flushed += 1;
            }
            exec(&mut sched, s);
        }
        assert_eq!(flushed, 2, "8 MiB at a 4 MiB threshold = 2 flushes");
        let s = fdb.flush(0, 0).unwrap();
        assert!(s.is_noop(), "nothing left to flush");
    }

    #[test]
    fn retrieve_round_trip_and_missing() {
        let (mut sched, mut fdb) = lustre_fdb();
        let k = FieldKey::sequence(0, 0);
        exec(
            &mut sched,
            fdb.archive(0, 0, &k, Payload::Sized(1 << 20)).unwrap(),
        );
        exec(&mut sched, fdb.flush(0, 0).unwrap());
        let (data, s) = fdb.retrieve(0, 0, &k).unwrap();
        exec(&mut sched, s);
        assert_eq!(data.len(), 1 << 20);
        let missing = FieldKey::sequence(9, 9);
        assert_eq!(
            fdb.retrieve(0, 0, &missing).unwrap_err(),
            FdbError::FieldNotFound
        );
    }

    #[test]
    fn cross_process_retrieval() {
        let (mut sched, mut fdb) = lustre_fdb();
        let k = FieldKey::sequence(3, 7);
        exec(
            &mut sched,
            fdb.archive(0, 3, &k, Payload::Sized(1 << 20)).unwrap(),
        );
        exec(&mut sched, fdb.flush(0, 3).unwrap());
        // another process reads it
        let (data, s) = fdb.retrieve(0, 11, &k).unwrap();
        exec(&mut sched, s);
        assert_eq!(data.len(), 1 << 20);
    }

    #[test]
    fn reads_hammer_the_mds() {
        // Per-field retrieval costs 4 MDS transactions (2 opens + 2
        // closes); verify the chain touches the MDS that many times.
        let (mut sched, mut fdb) = lustre_fdb();
        let k = FieldKey::sequence(0, 0);
        exec(
            &mut sched,
            fdb.archive(0, 0, &k, Payload::Sized(1 << 20)).unwrap(),
        );
        exec(&mut sched, fdb.flush(0, 0).unwrap());
        let (_, step) = fdb.retrieve(0, 0, &k).unwrap();
        let mds_cap = 180_000.0;
        fn mds_ops(s: &Step, sched: &Scheduler, cap: f64) -> f64 {
            match s {
                Step::Transfer { units, path }
                    if path.iter().any(|&r| (sched.capacity(r) - cap).abs() < 1.0) =>
                {
                    *units
                }
                Step::Transfer { .. } => 0.0,
                Step::Seq(v) | Step::Par(v) => v.iter().map(|s| mds_ops(s, sched, cap)).sum(),
                Step::Span { inner, .. } => mds_ops(inner, sched, cap),
                _ => 0.0,
            }
        }
        assert!(mds_ops(&step, &sched, mds_cap) >= 4.0, "open+close x2");
        exec(&mut sched, step);
    }
}
