//! Trace one scenario and print where the time goes.
//!
//! ```text
//! cargo run --release --example trace_one [scenario]
//! ```
//!
//! Runs the scenario (default `ior-dfuse`) with span recording on, then
//! prints the top-3 critical-path contributors of every layer plus the
//! full report, and drops the Chrome trace JSON next to the binary's
//! working directory — load it in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing` to browse the causal tree interactively.  The
//! trace includes telemetry counter tracks (queue depth, in-flight
//! flows, per-layer op counters) rendered under the span tree, and the
//! run's SLO verdicts print alongside the critical path.

use benchkit::runreport::{default_slo_rules, run_reported};
use benchkit::scenarios::{RunSpec, Scenario};
use benchkit::trace_scenario;
use cluster::{Calibration, GIB};

fn parse(name: &str) -> Option<Scenario> {
    match name {
        "ior-daos" => Some(Scenario::IorDaos),
        "ior-dfs" => Some(Scenario::IorDfs),
        "ior-dfuse" => Some(Scenario::IorDfuse),
        "ior-dfuse-il" => Some(Scenario::IorDfuseIl),
        "ior-hdf5-dfuse-il" => Some(Scenario::IorHdf5DfuseIl),
        "ior-hdf5-daos" => Some(Scenario::IorHdf5Daos),
        "fieldio" => Some(Scenario::FieldIo),
        "fdb-daos" => Some(Scenario::FdbDaos),
        "ior-lustre" => Some(Scenario::IorLustre),
        "fdb-lustre" => Some(Scenario::FdbLustre),
        "ior-ceph" => Some(Scenario::IorCeph),
        "fdb-ceph" => Some(Scenario::FdbCeph),
        _ => None,
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or("ior-dfuse".to_string());
    let Some(scen) = parse(&arg) else {
        eprintln!(
            "unknown scenario '{arg}'; one of: ior-daos ior-dfs ior-dfuse ior-dfuse-il \
             ior-hdf5-dfuse-il ior-hdf5-daos fieldio fdb-daos ior-lustre fdb-lustre \
             ior-ceph fdb-ceph"
        );
        std::process::exit(2);
    };
    let mut spec = RunSpec::new(2, 2, 4);
    spec.ops_per_proc = 24;
    let t = trace_scenario(&spec, scen, &Calibration::default());
    println!(
        "{}: write {:.2} GiB/s, read {:.2} GiB/s, {} spans",
        scen.name(),
        t.result.write.bandwidth() / GIB,
        t.result.read.bandwidth() / GIB,
        t.exports.span_count
    );
    println!("\ntop-3 critical-path contributors per layer:");
    for layer in t.exports.layers() {
        println!("  {layer}:");
        for c in t.exports.top_of_layer(layer, 3) {
            println!("    {:<20} {} ns", c.op, c.self_ns);
        }
    }
    println!("\n{}", t.exports.critical_path);
    // A second, telemetered run of the same scenario: identical replay
    // digest (checked below), but the exported trace carries counter
    // tracks and the run report carries SLO verdicts.
    let reported = run_reported(&spec, scen, &Calibration::default(), &default_slo_rules());
    assert_eq!(
        reported.report.replay_digest, t.replay_digest,
        "telemetry must not perturb the replay digest"
    );
    println!("slo:");
    for v in &reported.report.verdicts {
        println!(
            "  {:<32} {}",
            v.rule,
            if v.pass { "ok" } else { "VIOLATED" }
        );
    }
    let path = format!("{arg}.trace.json");
    match std::fs::write(&path, &reported.trace_json) {
        Ok(()) => println!("wrote {path} (spans + counter tracks) — open it in ui.perfetto.dev"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
