//! Stage-2 **flow pass**: a cross-crate, call-graph-aware analysis layer
//! on top of the per-line token rules in `lib.rs`.
//!
//! The stage-1 rules see one line at a time, so they cannot answer the
//! questions that actually guard the paper's replay contract: *is every
//! sim-state mutation covered by the replay digest?  Can a panic fire in
//! the middle of a degraded-mode run?  Can a terminal error be laundered
//! into a retry loop?*  This module builds a lightweight item index
//! (functions, impl blocks, structs, enum variants) from the
//! [`crate::lex`] token stream, links functions into a **name-based call
//! graph**, and runs three flow analyses over it:
//!
//! * **`digest-taint`** — every `&mut self` method of a type registered
//!   as sim state must be reachable from a registered digest fold root;
//!   an unreachable mutator is a silent-divergence hazard (replays cannot
//!   witness its effect).
//! * **`span-digest`** — the same contract for types registered as
//!   `span_source` (span logs): a mutator no digest root reaches records
//!   trace events the span digest cannot witness, so traced replays
//!   could diverge silently.
//! * **`panic-path`** — `unwrap`/`expect`/slice indexing in any function
//!   reachable from a panic root (fault handlers, `rebuild`, the retry
//!   executor and its callers) is an error: a panic mid-degraded-mode
//!   aborts the bandwidth-under-failure scenarios.
//! * **`retry-taxonomy`** — a terminal error variant (registered with
//!   `terminal_error`) must never be classified or remapped as
//!   retriable: retrying after data loss can never succeed.
//!
//! The index built here is shared by the stage-3 cost pass
//! ([`crate::cost`]) and the stage-4 dimension pass ([`crate::dim`]):
//! their body facts are extracted in the same parse and cached in the
//! same JSON index.
//!
//! # Registration markers
//!
//! The analyses are registration-driven: ordinary `//` comments on (or
//! directly above) a declaration register it with the pass:
//!
//! ```text
//! // simlint::sim_state — replay-visible pool/target state
//! pub struct DaosSystem { … }
//!
//! // simlint::span_source — span open/close must fold into the span digest
//! pub struct SpanLog { … }
//!
//! // simlint::digest_root — replay harness entry
//! pub fn run_digest<W: World>(…) -> u64 { … }
//!
//! // simlint::panic_root — fault handler: must never panic
//! pub fn crash_target(&mut self, t: TargetId) { … }
//!
//! // simlint::retry_entry — closure executor: callers become panic roots
//! pub fn run<T, E: Retriable>(…) { … }
//!
//! pub enum DaosError {
//!     // simlint::terminal_error — data loss, retries can never succeed
//!     Unavailable,
//! }
//! ```
//!
//! # Approximations (deliberate)
//!
//! The pass is std-only and name-based, not type-checked.  Call edges
//! connect a call site to **every** workspace function with the same
//! name (an explicit `Type::name` qualifier narrows the match); there is
//! no trait resolution, no closure tracking (a closure's calls are
//! attributed to the enclosing function, which is why `retry_entry`
//! promotes callers to roots), and nested items inside function bodies
//! are not indexed.  This over-approximates reachability — the safe
//! direction for `panic-path` and `retry-taxonomy`, and the reason
//! `digest-taint` findings are phrased as hazards, not proofs.  Findings
//! are suppressed with the same `simlint::allow(rule) — reason`
//! directives as stage 1.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

use crate::lex::{lex, Tok, TokKind};
use crate::{allow_covers, classify, collect_rs_files, parse_allow, Allow, Finding, Severity};

/// Registration markers understood by the pass (`simlint::<marker>`).
/// `hot_root` and `amortized` belong to the stage-3 cost pass
/// ([`crate::cost`]), which shares this index.
pub const MARKERS: &[&str] = &[
    "sim_state",
    "span_source",
    "digest_root",
    "panic_root",
    "retry_entry",
    "terminal_error",
    "hot_root",
    "amortized",
];

/// Identifier treated as the retriable classification in remap checks.
const RETRIABLE_TOKEN: &str = "Retriable";

/// Physical dimensions understood by the stage-4 pass
/// (`simlint::dim(<unit>)` / `simlint::dim(name: unit, return: unit)`).
pub const UNITS: &[&str] = &["bytes", "bytes_per_sec", "ns", "secs"];

/// Descriptor for a flow rule (stage 2 has no per-line predicate, so it
/// does not reuse [`crate::Rule`]).
pub struct FlowRule {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// The stage-2 rule registry.
pub fn flow_rules() -> &'static [FlowRule] {
    &[
        FlowRule {
            id: "digest-taint",
            severity: Severity::Error,
            summary: "sim-state mutators must be reachable from a digest fold root, else replays cannot witness the mutation",
        },
        FlowRule {
            id: "span-digest",
            severity: Severity::Error,
            summary: "span-source mutators must be reachable from a digest fold root, else traced replays can diverge without the span digest noticing",
        },
        FlowRule {
            id: "panic-path",
            severity: Severity::Error,
            summary: "unwrap/expect/indexing reachable from fault handlers, rebuild or the retry executor aborts degraded-mode runs",
        },
        FlowRule {
            id: "retry-taxonomy",
            severity: Severity::Error,
            summary: "terminal error variants must never be classified or remapped as retriable",
        },
        FlowRule {
            id: "flow-config",
            severity: Severity::Warn,
            summary: "flow-pass registration problems (e.g. an analysis with no registered roots)",
        },
    ]
}

// ---------------------------------------------------------------------------
// Index model
// ---------------------------------------------------------------------------

/// Everything the flow analyses need to know about one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnFact {
    /// Bare function name.
    pub name: String,
    /// `Type::name` inside an impl/trait block, else the bare name.
    pub qual: String,
    /// The impl/trait self type, when inside one.
    pub impl_type: Option<String>,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Takes `&mut self` (or `mut self`).
    pub mut_self: bool,
    /// Registration markers attached to this function.
    pub markers: BTreeSet<String>,
    /// Call sites: `(qualifier_or_empty, callee_name)`.
    pub calls: Vec<(String, String)>,
    /// Panic sites: `(line, "unwrap" | "expect" | "index")`.
    pub panics: Vec<(u32, String)>,
    /// Mentions of registered terminal variants: `(variant, line)`.
    pub terminal_mentions: Vec<(String, u32)>,
    /// Lines of `map_err(…)` whose arguments contain the retriable token.
    pub maperr_retriable: Vec<u32>,
    /// Match arms remapping a terminal variant to retriable: `(variant, line)`.
    pub arm_remaps: Vec<(String, u32)>,
    /// Allocation sites for the stage-3 cost pass: `(line, kind)` where
    /// kind is e.g. `"Vec::new"`, `"vec!"`, `".clone()"`.
    pub allocs: Vec<(u32, String)>,
    /// Map accesses for the double-lookup analysis:
    /// `(receiver, key, method, line)` — e.g. `("self.caps", "t", "get", 42)`.
    pub map_ops: Vec<(String, String, String, u32)>,
    /// Full scans over fields of a registered sim-state type, recorded
    /// only for methods of such types: `(line, rendered expression)`.
    pub state_loops: Vec<(u32, String)>,
    /// Stage-4 additive mixing events: `(line, left unit, right unit)`
    /// for a `+`/`-`/`+=`/`-=` whose operands carry unlike dimensions.
    pub dim_mixed: Vec<(u32, String, String)>,
    /// Stage-4 sink violations: `(line, callee, expected unit, got)` for
    /// a call argument whose dimension disagrees with the callee's
    /// registered parameter dimension (`got` is a unit name or a derived
    /// expression like `bytes*bytes_per_sec`).
    pub dim_sinks: Vec<(u32, String, String, String)>,
    /// Stage-4 raw conversion literals: `(line, literal)` for `1e9`,
    /// `1_000_000_000`, `1073741824` or `1024.0 * 1024.0` in a body
    /// (the analysis exempts units modules by path).
    pub dim_lits: Vec<(u32, String)>,
}

/// Dimension signature of one function for the stage-4 pass: the units
/// of its (0-based, non-`self`) parameters and of its return value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DimSig {
    /// `(parameter position, unit)` for each dimensioned parameter.
    pub params: Vec<(u32, String)>,
    /// Unit of the return value, when registered.
    pub ret: Option<String>,
}

/// The parsed item index for the workspace: the unit that is cached
/// between CI steps ([`index_to_json`]/[`index_from_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    /// FNV-1a fingerprint of the source set the index was built from.
    pub fingerprint: u64,
    /// Types registered with `sim_state`.
    pub sim_state: BTreeSet<String>,
    /// Types registered with `span_source` (span logs: every mutation
    /// must fold into the span digest, so mutators are held to the same
    /// reachability contract as sim state).
    pub span_source: BTreeSet<String>,
    /// Enum variants registered with `terminal_error`, as `Enum::Variant`.
    pub terminals: BTreeSet<String>,
    /// Stage-4: type name → unit, from `simlint::dim(unit)` on structs
    /// plus the built-in simkit unit types.
    pub dim_types: BTreeMap<String, String>,
    /// Stage-4: `Type::field` → unit, from field markers or a field's
    /// type resolving through `dim_types`.
    pub dim_fields: BTreeMap<String, String>,
    /// Stage-4: `Type::fn` (or bare fn name) → dimension signature, from
    /// `simlint::dim(name: unit, return: unit)` markers plus built-ins.
    pub dim_sigs: BTreeMap<String, DimSig>,
    /// All indexed functions, in deterministic (file, line) order.
    pub fns: Vec<FnFact>,
}

// ---------------------------------------------------------------------------
// Source collection
// ---------------------------------------------------------------------------

/// Read every `.rs` file under `root` that the flow pass analyses:
/// library code of simulation crates (tooling crates and
/// tests/benches/examples are out of scope, exactly like stage 1's
/// sim-scoped rules).  Keys are workspace-relative paths.
pub fn read_sources(root: &Path) -> std::io::Result<BTreeMap<String, String>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut out = BTreeMap::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = classify(&rel);
        if !ctx.sim_crate || !ctx.lib_code {
            continue;
        }
        out.insert(rel, std::fs::read_to_string(&path)?);
    }
    Ok(out)
}

/// The analyzer's own sources, baked in at compile time.  They seed the
/// index fingerprint so that a cached index saved by an older simlint is
/// rebuilt after the analyzer itself changes — otherwise a stale index
/// (missing facts a newer analysis reads) would silently survive CI's
/// cross-run cache as long as the *crate* sources were untouched.
const SELF_SOURCES: &[&str] = &[
    include_str!("lib.rs"),
    include_str!("lex.rs"),
    include_str!("flow.rs"),
    include_str!("cost.rs"),
    include_str!("dim.rs"),
    include_str!("json.rs"),
    include_str!("main.rs"),
];

/// FNV-1a over the analyzer's own sources: the seed for [`fingerprint`].
pub fn self_fingerprint() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for src in SELF_SOURCES {
        for &b in src.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Order-sensitive FNV-1a fingerprint over `(path, content)` pairs,
/// seeded with [`self_fingerprint`]; used to validate a cached index
/// against both the current tree and the current analyzer.
pub fn fingerprint(sources: &BTreeMap<String, String>) -> u64 {
    let mut h: u64 = self_fingerprint();
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (path, content) in sources {
        fold(path.as_bytes());
        fold(&[0x00]);
        fold(content.as_bytes());
        fold(&[0xff]);
    }
    h
}

// ---------------------------------------------------------------------------
// Marker scanning
// ---------------------------------------------------------------------------

/// Markers found per 1-based line (inside `//` comments only).
fn scan_markers(lines: &[&str]) -> BTreeMap<usize, Vec<String>> {
    let mut out: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, raw) in lines.iter().enumerate() {
        let Some(pos) = raw.find("//") else { continue };
        let comment = &raw[pos..];
        for marker in MARKERS {
            let needle = format!("simlint::{marker}");
            if let Some(mpos) = comment.find(&needle) {
                // Word boundary after, so `sim_state` never matches a
                // longer marker name by prefix.
                let after = comment[mpos + needle.len()..].chars().next();
                if !matches!(after, Some(c) if c.is_alphanumeric() || c == '_') {
                    out.entry(i + 1).or_default().push(marker.to_string());
                }
            }
        }
    }
    out
}

/// Markers attached to a declaration at `line` (1-based): same-line
/// trailing comment, or any comment/attribute line directly above.
fn markers_for(
    line: usize,
    lines: &[&str],
    marks: &BTreeMap<usize, Vec<String>>,
) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = marks.get(&line).into_iter().flatten().cloned().collect();
    let mut l = line;
    while l > 1 {
        l -= 1;
        let t = lines[l - 1].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
            out.extend(marks.get(&l).into_iter().flatten().cloned());
        } else {
            break;
        }
    }
    out
}

/// Dimension annotations found per 1-based line (inside `//` comments
/// only).  Each entry is `(key, unit)` where the key is `""` for the
/// bare form `simlint::dim(bytes)`, a parameter name for
/// `simlint::dim(s: secs)`, or `"return"`.  Units not listed in
/// [`UNITS`] are dropped silently — the pass is advisory and an
/// unknown unit most likely means a marker from a newer simlint.
fn scan_dim_markers(lines: &[&str]) -> BTreeMap<usize, Vec<(String, String)>> {
    let mut out: BTreeMap<usize, Vec<(String, String)>> = BTreeMap::new();
    for (i, raw) in lines.iter().enumerate() {
        let Some(pos) = raw.find("//") else { continue };
        let comment = &raw[pos..];
        let needle = "simlint::dim(";
        let Some(mpos) = comment.find(needle) else {
            continue;
        };
        let rest = &comment[mpos + needle.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        for part in rest[..close].split(',') {
            let (key, unit) = match part.split_once(':') {
                Some((k, u)) => (k.trim(), u.trim()),
                None => ("", part.trim()),
            };
            if UNITS.contains(&unit) {
                out.entry(i + 1)
                    .or_default()
                    .push((key.to_string(), unit.to_string()));
            }
        }
    }
    out
}

/// Dimension annotations attached to a declaration at `line` (1-based):
/// same-line trailing comment, or any comment/attribute line directly
/// above — the same attachment walk as [`markers_for`].
fn dims_for(
    line: usize,
    lines: &[&str],
    dmarks: &BTreeMap<usize, Vec<(String, String)>>,
) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = dmarks.get(&line).into_iter().flatten().cloned().collect();
    let mut l = line;
    while l > 1 {
        l -= 1;
        let t = lines[l - 1].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
            out.extend(dmarks.get(&l).into_iter().flatten().cloned());
        } else {
            break;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------------

/// A function before body analysis: signature facts plus its body's token
/// range within the file's stream.
struct RawFn {
    name: String,
    qual: String,
    impl_type: Option<String>,
    line: u32,
    mut_self: bool,
    markers: BTreeSet<String>,
    /// Non-`self` parameter names in declaration order (`""` for
    /// unnamed pattern parameters, to keep positions aligned).
    params: Vec<String>,
    /// `simlint::dim` annotations attached to the declaration:
    /// `(key, unit)` with key `""`/`"return"`/a parameter name.
    dims: Vec<(String, String)>,
    /// Token range of the body, outer braces excluded.
    body: std::ops::Range<usize>,
}

/// A parsed struct declaration.
struct StructP {
    name: String,
    markers: BTreeSet<String>,
    /// Bare `simlint::dim(unit)` on the struct declaration.
    dim: Option<String>,
    /// `(field name, marker unit, type head ident)` per named field.
    fields: Vec<(String, Option<String>, Option<String>)>,
}

struct FileParse {
    toks: Vec<Tok>,
    fns: Vec<RawFn>,
    structs: Vec<StructP>,
    /// `(Enum::Variant, markers)` per enum variant.
    variants: Vec<(String, BTreeSet<String>)>,
}

pub(crate) const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "unsafe", "else", "in", "as",
    "let", "mut", "ref", "where", "impl", "dyn",
];

fn parse_file(source: &str) -> FileParse {
    let lines: Vec<&str> = source.lines().collect();
    let marks = scan_markers(&lines);
    let dmarks = scan_dim_markers(&lines);
    let toks = lex(source);
    let mut fns = Vec::new();
    let mut structs = Vec::new();
    let mut variants = Vec::new();

    let mut p = 0usize;
    let mut depth = 0usize;
    // (self type, depth at which the impl/trait block opened)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();

    while p < toks.len() {
        let t = &toks[p];
        if t.is_punct("{") {
            depth += 1;
            p += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            while impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                impl_stack.pop();
            }
            p += 1;
        } else if t.is_punct("#") {
            let (end, test_gated) = parse_attribute(&toks, p);
            p = end;
            if test_gated {
                // Skip trailing attributes, then the gated item itself.
                while p < toks.len() && toks[p].is_punct("#") {
                    let (e, _) = parse_attribute(&toks, p);
                    p = e;
                }
                p = skip_item(&toks, p);
            }
        } else if t.is_ident("impl") || t.is_ident("trait") {
            let is_trait = t.is_ident("trait");
            let (self_ty, body_open) = parse_impl_header(&toks, p + 1, is_trait);
            impl_stack.push((self_ty, depth));
            p = body_open; // the `{` (or stream end); main loop opens it
        } else if t.is_ident("struct") {
            if let Some(name_tok) = toks.get(p + 1).filter(|t| t.kind == TokKind::Ident) {
                let nline = name_tok.line as usize;
                let m = markers_for(nline, &lines, &marks);
                let dim = dims_for(nline, &lines, &dmarks)
                    .into_iter()
                    .find(|(k, _)| k.is_empty())
                    .map(|(_, u)| u);
                let (fields, end) = parse_struct_body(&toks, p + 2, &lines, &dmarks);
                structs.push(StructP {
                    name: name_tok.text.clone(),
                    markers: m,
                    dim,
                    fields,
                });
                p = end;
            } else {
                p += 1;
            }
        } else if t.is_ident("enum") {
            if let Some(name_tok) = toks.get(p + 1).filter(|t| t.kind == TokKind::Ident) {
                let ename = name_tok.text.clone();
                let (vars, end) = parse_enum_variants(&toks, p + 2, &lines, &marks);
                for (vname, vmarks) in vars {
                    variants.push((format!("{ename}::{vname}"), vmarks));
                }
                p = end;
            } else {
                p += 1;
            }
        } else if t.is_ident("fn") {
            match parse_fn(
                &toks,
                p,
                &lines,
                &marks,
                &dmarks,
                impl_stack.last().map(|(n, _)| n),
            ) {
                Some((raw, end)) => {
                    fns.push(raw);
                    p = end;
                }
                None => p += 1,
            }
        } else {
            p += 1;
        }
    }

    FileParse {
        toks,
        fns,
        structs,
        variants,
    }
}

/// Consume an attribute starting at the `#` token; returns the index past
/// it and whether it is `cfg`-test-gated.
fn parse_attribute(toks: &[Tok], p: usize) -> (usize, bool) {
    let mut q = p + 1;
    if toks.get(q).is_some_and(|t| t.is_punct("!")) {
        q += 1;
    }
    if !toks.get(q).is_some_and(|t| t.is_punct("[")) {
        return (p + 1, false);
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while q < toks.len() {
        let t = &toks[q];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (q + 1, saw_cfg && saw_test);
            }
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            saw_test = true;
        }
        q += 1;
    }
    (q, false)
}

/// Skip one item: to the matching `}` of its first brace, or to a `;`
/// reached before any brace opens.
fn skip_item(toks: &[Tok], mut p: usize) -> usize {
    let mut depth = 0usize;
    let mut opened = false;
    while p < toks.len() {
        let t = &toks[p];
        if t.is_punct("{") {
            depth += 1;
            opened = true;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if opened && depth == 0 {
                return p + 1;
            }
        } else if t.is_punct(";") && !opened {
            return p + 1;
        }
        p += 1;
    }
    p
}

/// Parse an `impl`/`trait` header starting after the keyword; returns the
/// self-type name (last path segment, generics stripped) and the index of
/// the opening `{`.
fn parse_impl_header(toks: &[Tok], mut p: usize, _is_trait: bool) -> (String, usize) {
    // Leading generic parameters: `impl<T: Foo<U>> …`.
    if toks.get(p).is_some_and(|t| t.is_punct("<")) {
        p = skip_angle_brackets(toks, p);
    }
    let (mut name, mut q) = parse_type_path(toks, p);
    if toks.get(q).is_some_and(|t| t.is_ident("for")) {
        let (n2, q2) = parse_type_path(toks, q + 1);
        name = n2;
        q = q2;
    }
    // Skip where clauses etc. up to the block open.
    while q < toks.len() && !toks[q].is_punct("{") {
        q += 1;
    }
    (name, q)
}

/// Parse a type path like `crate::fmt::Display<'a, T>`; returns the last
/// plain segment and the index past the path (generics skipped).
fn parse_type_path(toks: &[Tok], mut p: usize) -> (String, usize) {
    let mut last = String::new();
    loop {
        match toks.get(p) {
            Some(t) if t.kind == TokKind::Ident => {
                last = t.text.clone();
                p += 1;
                if toks.get(p).is_some_and(|t| t.is_punct("::")) {
                    p += 1;
                    continue;
                }
                if toks.get(p).is_some_and(|t| t.is_punct("<")) {
                    p = skip_angle_brackets(toks, p);
                }
                break;
            }
            Some(t) if t.is_punct("&") || t.is_punct("(") => {
                // `impl Trait for &T` / tuple impls: tolerated, unnamed.
                p += 1;
            }
            _ => break,
        }
    }
    (last, p)
}

/// Skip a balanced `<…>` region starting at `<`.
pub(crate) fn skip_angle_brackets(toks: &[Tok], mut p: usize) -> usize {
    let mut depth = 0isize;
    while p < toks.len() {
        let t = &toks[p];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth <= 0 {
                return p + 1;
            }
        } else if t.is_punct("->") && depth == 0 {
            return p;
        }
        p += 1;
    }
    p
}

/// Parse a `fn` item starting at the `fn` keyword.  Returns the raw
/// record and the index past the body (or past the `;` for a bodyless
/// trait method, in which case no record is produced).
/// Skip a balanced `(…)`/`[…]`/`{…}` region starting at its opener.
pub(crate) fn skip_balanced(toks: &[Tok], mut p: usize) -> usize {
    let mut depth = 0usize;
    while p < toks.len() {
        let t = &toks[p];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return p + 1;
            }
        }
        p += 1;
    }
    p
}

/// One parsed named field: `(field name, marker unit, type head ident)`.
type FieldDim = (String, Option<String>, Option<String>);

/// Parse a struct declaration starting after its name: generics, then a
/// unit `;`, a tuple body (fields unnamed, skipped) or a named-field
/// body.  Returns one [`FieldDim`] per named field and the index past
/// the whole item.
fn parse_struct_body(
    toks: &[Tok],
    mut p: usize,
    lines: &[&str],
    dmarks: &BTreeMap<usize, Vec<(String, String)>>,
) -> (Vec<FieldDim>, usize) {
    let mut fields = Vec::new();
    let mut saw_where = false;
    while p < toks.len() {
        let t = &toks[p];
        if t.is_punct("<") {
            p = skip_angle_brackets(toks, p);
        } else if t.is_punct(";") {
            return (fields, p + 1); // unit struct
        } else if t.is_punct("(") {
            if saw_where {
                // Paren inside a where clause (`F: Fn(u32)`), not a
                // tuple body; step over it and keep looking.
                p = skip_balanced(toks, p);
                continue;
            }
            // Tuple struct: skip the parens, then the trailing `;`.
            p = skip_balanced(toks, p);
            while p < toks.len() && !toks[p].is_punct(";") {
                p += 1;
            }
            return (fields, (p + 1).min(toks.len()));
        } else if t.is_punct("{") {
            break;
        } else {
            saw_where |= t.is_ident("where");
            p += 1;
        }
    }
    if p >= toks.len() {
        return (fields, p);
    }
    p += 1; // past `{`
    while p < toks.len() {
        let t = &toks[p];
        if t.is_punct("}") {
            return (fields, p + 1);
        }
        if t.is_punct("#") {
            let (e, _) = parse_attribute(toks, p);
            p = e;
            continue;
        }
        if t.kind == TokKind::Ident
            && !t.is_ident("pub")
            && toks.get(p + 1).is_some_and(|n| n.is_punct(":"))
        {
            let mdim = dims_for(t.line as usize, lines, dmarks)
                .into_iter()
                .find(|(k, _)| k.is_empty())
                .map(|(_, u)| u);
            // Type head: first ident after `:`, `&`/`*` stripped; two
            // adjacent idents mean the first was a lifetime (the lexer
            // drops the tick from `&'a Bytes`).
            let mut q = p + 2;
            let mut head: Option<String> = None;
            while q < toks.len() {
                let ty = &toks[q];
                if ty.kind == TokKind::Ident && !ty.is_ident("mut") && !ty.is_ident("dyn") {
                    if toks.get(q + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                        q += 1;
                        continue;
                    }
                    head = Some(ty.text.clone());
                    break;
                } else if ty.is_punct("&") || ty.is_punct("*") {
                    q += 1;
                } else {
                    break;
                }
            }
            fields.push((t.text.clone(), mdim, head));
            p += 2;
            continue;
        }
        // Nested regions in a field's type can hold `,` tokens; skip
        // them wholesale so they never read as field separators.
        if t.is_punct("(") || t.is_punct("[") {
            p = skip_balanced(toks, p);
        } else if t.is_punct("<") {
            p = skip_angle_brackets(toks, p);
        } else {
            p += 1;
        }
    }
    (fields, p)
}

fn parse_fn(
    toks: &[Tok],
    p: usize,
    lines: &[&str],
    marks: &BTreeMap<usize, Vec<String>>,
    dmarks: &BTreeMap<usize, Vec<(String, String)>>,
    impl_type: Option<&String>,
) -> Option<(RawFn, usize)> {
    let name_tok = toks.get(p + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(…)` pointer type, not an item
    }
    let name = name_tok.text.clone();
    let line = toks[p].line;
    let mut q = p + 2;
    if toks.get(q).is_some_and(|t| t.is_punct("<")) {
        q = skip_angle_brackets(toks, q);
    }
    if !toks.get(q).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    // Scan the parameter list; detect a `self` receiver with `mut` and
    // collect parameter names for the stage-4 dimension pass.
    let mut depth = 0usize;
    let mut groups: Vec<Vec<&Tok>> = vec![Vec::new()];
    while q < toks.len() {
        let t = &toks[q];
        if t.is_punct("(") {
            depth += 1;
            if depth > 1 {
                groups.last_mut().unwrap().push(t);
            }
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                q += 1;
                break;
            }
            groups.last_mut().unwrap().push(t);
        } else if t.is_punct(",") && depth == 1 {
            groups.push(Vec::new());
        } else if depth >= 1 {
            groups.last_mut().unwrap().push(t);
        }
        q += 1;
    }
    let mut_self =
        groups[0].iter().any(|t| t.is_ident("self")) && groups[0].iter().any(|t| t.is_ident("mut"));
    let mut params: Vec<String> = Vec::new();
    for g in &groups {
        if g.is_empty() || g.iter().any(|t| t.is_ident("self")) {
            continue; // empty list, or the receiver
        }
        let mut k = 0usize;
        while g.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        // `""` for pattern parameters keeps later names positional.
        let name = match (g.get(k), g.get(k + 1)) {
            (Some(n), Some(c)) if n.kind == TokKind::Ident && c.is_punct(":") => n.text.clone(),
            _ => String::new(),
        };
        params.push(name);
    }
    // Return type / where clause up to the body or `;`.  `;` inside
    // brackets (`-> [u8; 4]`) does not terminate the signature.
    let mut nested = 0usize;
    while q < toks.len() {
        let t = &toks[q];
        if t.is_punct("[") || t.is_punct("(") {
            nested += 1;
        } else if t.is_punct("]") || t.is_punct(")") {
            nested = nested.saturating_sub(1);
        } else if nested == 0 && (t.is_punct("{") || t.is_punct(";")) {
            break;
        }
        q += 1;
    }
    if !toks.get(q).is_some_and(|t| t.is_punct("{")) {
        return None; // bodyless trait method declaration
    }
    // Body: balanced braces from here.
    let body_start = q + 1;
    let mut bdepth = 0usize;
    while q < toks.len() {
        if toks[q].is_punct("{") {
            bdepth += 1;
        } else if toks[q].is_punct("}") {
            bdepth -= 1;
            if bdepth == 0 {
                break;
            }
        }
        q += 1;
    }
    let body_end = q.min(toks.len());
    let qual = match impl_type {
        Some(t) if !t.is_empty() => format!("{t}::{name}"),
        _ => name.clone(),
    };
    Some((
        RawFn {
            name,
            qual,
            impl_type: impl_type.filter(|t| !t.is_empty()).cloned(),
            line,
            mut_self,
            markers: markers_for(line as usize, lines, marks),
            params,
            dims: dims_for(line as usize, lines, dmarks),
            body: body_start..body_end,
        },
        (q + 1).min(toks.len()),
    ))
}

/// Parse enum variants starting at (or just before) the enum's `{`;
/// returns `(variant name, markers)` pairs and the index past the body.
fn parse_enum_variants(
    toks: &[Tok],
    mut p: usize,
    lines: &[&str],
    marks: &BTreeMap<usize, Vec<String>>,
) -> (Vec<(String, BTreeSet<String>)>, usize) {
    let mut out = Vec::new();
    // Skip generics / where clause up to `{` (a `;`-terminated forward
    // declaration would be invalid Rust; bail out at `;` defensively).
    while p < toks.len() && !toks[p].is_punct("{") {
        if toks[p].is_punct(";") {
            return (out, p + 1);
        }
        p += 1;
    }
    if p >= toks.len() {
        return (out, p);
    }
    p += 1; // past `{`
    let mut depth = 1usize;
    let mut expect_variant = true;
    while p < toks.len() && depth > 0 {
        let t = &toks[p];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 1 {
            if t.is_punct(",") {
                expect_variant = true;
            } else if expect_variant && t.kind == TokKind::Ident {
                let m = markers_for(t.line as usize, lines, marks);
                out.push((t.text.clone(), m));
                expect_variant = false;
            }
        }
        p += 1;
    }
    (out, p)
}

// ---------------------------------------------------------------------------
// Body analysis
// ---------------------------------------------------------------------------

fn analyze_body(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    impl_type: Option<&str>,
    terminals: &BTreeSet<String>,
    fact: &mut FnFact,
) {
    let get = |i: usize| toks.get(i).filter(|_| body.contains(&i));
    // Token ranges covered by `matches!(…)` arguments: a terminal variant
    // named in a `matches!` pattern counts as classifying it (there is no
    // `=>` arrow to scan past in that form).
    let mut matches_ranges: Vec<std::ops::Range<usize>> = Vec::new();
    for i in body.clone() {
        if toks[i].is_ident("matches")
            && get(i + 1).is_some_and(|t| t.is_punct("!"))
            && get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            let mut depth = 0isize;
            let mut j = i + 2;
            while let Some(t) = get(j) {
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            matches_ranges.push(i + 3..j);
        }
    }
    for i in body.clone() {
        let t = &toks[i];
        let prev = i.checked_sub(1).and_then(get);
        let prev2 = i.checked_sub(2).and_then(get);
        let next = get(i + 1);

        // Call sites: `name(` — macros (`name!(`) fall out naturally
        // because the token after the name is `!`.
        if t.kind == TokKind::Ident
            && next.is_some_and(|n| n.is_punct("("))
            && !CALL_KEYWORDS.contains(&t.text.as_str())
        {
            let qualifier = match (prev, prev2) {
                (Some(c), Some(q)) if c.is_punct("::") && q.kind == TokKind::Ident => {
                    if q.text == "Self" {
                        impl_type.unwrap_or("").to_string()
                    } else {
                        q.text.clone()
                    }
                }
                _ => String::new(),
            };
            // `.unwrap()` / `.expect(` are panic sites, not calls —
            // they are recorded below and never resolve to workspace
            // functions anyway, so keeping them out reduces noise.
            let is_panic_method = prev.is_some_and(|p| p.is_punct("."))
                && matches!(t.text.as_str(), "unwrap" | "expect");
            if !is_panic_method {
                fact.calls.push((qualifier, t.text.clone()));
            }
        }

        // Panic sites: `.unwrap()`, `.expect(`, and index expressions.
        if prev.is_some_and(|p| p.is_punct(".")) && next.is_some_and(|n| n.is_punct("(")) {
            if t.is_ident("unwrap") {
                fact.panics.push((t.line, "unwrap".to_string()));
            } else if t.is_ident("expect") {
                fact.panics.push((t.line, "expect".to_string()));
            }
        }
        if t.is_punct("[") {
            // Postfix position: `expr[` — an identifier, call or index
            // result directly before the bracket.  Attributes (`#[`),
            // macro brackets (`vec![`), types and slice patterns all have
            // different predecessors and are not flagged.
            let postfix = prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && !CALL_KEYWORDS.contains(&p.text.as_str()))
                    || p.is_punct(")")
                    || p.is_punct("]")
            });
            if postfix {
                fact.panics.push((t.line, "index".to_string()));
            }
        }

        // Terminal variant mentions (`Enum::Variant` two-segment tails).
        if t.kind == TokKind::Ident
            && prev.is_some_and(|p| p.is_punct("::"))
            && prev2.is_some_and(|q| q.kind == TokKind::Ident)
        {
            let pair = format!(
                "{}::{}",
                prev2.map(|q| q.text.as_str()).unwrap_or(""),
                t.text
            );
            if terminals.contains(&pair) {
                // Inside an `is_retriable` classifier only an arm
                // answering `true` (or a `matches!` pattern, which always
                // answers `true`) misclassifies; a correct `=> false` arm
                // may name the variant and stays silent.
                let record = if fact.name == "is_retriable" {
                    arm_maps_to(toks, &body, i, "true").is_some()
                        || matches_ranges.iter().any(|r| r.contains(&i))
                } else {
                    true
                };
                if record {
                    fact.terminal_mentions.push((pair.clone(), t.line));
                    // Arm remap: scan forward for `=> … Retriable` before
                    // the arm ends (a `,` at this nesting level or the
                    // block close).
                    if let Some(line) = arm_maps_to(toks, &body, i, RETRIABLE_TOKEN) {
                        fact.arm_remaps.push((pair, line));
                    }
                }
            }
        }

        // `map_err(… Retriable …)`.
        if t.is_ident("map_err") && next.is_some_and(|n| n.is_punct("(")) {
            let mut depth = 0isize;
            let mut j = i + 1;
            while let Some(tok) = get(j) {
                if tok.is_punct("(") {
                    depth += 1;
                } else if tok.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tok.is_ident(RETRIABLE_TOKEN) {
                    fact.maperr_retriable.push(t.line);
                    break;
                }
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stage-3 fact extraction (cost pass)
// ---------------------------------------------------------------------------

/// Map-like methods recorded for the double-lookup analysis.
const MAP_METHODS: &[&str] = &["get", "get_mut", "contains_key", "insert", "remove"];

/// Iterator-producing methods that visit every entry of a collection.
const SCAN_METHODS: &[&str] = &["iter", "iter_mut", "keys", "values", "values_mut", "drain"];

/// Record the facts the stage-3 cost pass ([`crate::cost`]) reads:
/// allocation sites, map accesses and full scans over fields of a
/// registered sim-state type.  Runs over the same token range as
/// [`analyze_body`] so the facts are cached in the index.
fn analyze_cost_facts(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    impl_is_sim_state: bool,
    fact: &mut FnFact,
) {
    let get = |i: usize| toks.get(i).filter(|_| body.contains(&i));
    for i in body.clone() {
        let t = &toks[i];
        let prev = i.checked_sub(1).and_then(get);
        let prev2 = i.checked_sub(2).and_then(get);
        let next = get(i + 1);

        // ---- allocation sites --------------------------------------------
        if t.kind == TokKind::Ident && next.is_some_and(|n| n.is_punct("(")) {
            let after_dot = prev.is_some_and(|p| p.is_punct("."));
            let path_qual = prev
                .is_some_and(|p| p.is_punct("::"))
                .then(|| prev2.map(|q| q.text.as_str()))
                .flatten();
            let kind = match t.text.as_str() {
                "new" if path_qual == Some("Vec") => Some("Vec::new"),
                "new" if path_qual == Some("Box") => Some("Box::new"),
                "from" if path_qual == Some("String") => Some("String::from"),
                "clone" if after_dot => Some(".clone()"),
                "to_vec" if after_dot => Some(".to_vec()"),
                "collect" if after_dot => Some(".collect()"),
                _ => None,
            };
            if let Some(k) = kind {
                fact.allocs.push((t.line, k.to_string()));
            }
        }
        if t.kind == TokKind::Ident
            && next.is_some_and(|n| n.is_punct("!"))
            && matches!(t.text.as_str(), "vec" | "format")
        {
            fact.allocs.push((t.line, format!("{}!", t.text)));
        }

        // ---- map accesses (double-lookup facts) --------------------------
        if t.kind == TokKind::Ident
            && MAP_METHODS.contains(&t.text.as_str())
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("("))
        {
            if let (Some(recv), Some(key)) = (
                receiver_chain(toks, &body, i - 1),
                first_arg(toks, &body, i + 1),
            ) {
                fact.map_ops.push((recv, key, t.text.clone(), t.line));
            }
        }

        // ---- full scans over sim-state fields ----------------------------
        if impl_is_sim_state {
            // `self.<field>.<scan_method>(…)` — explicit iterator call.
            if t.kind == TokKind::Ident
                && SCAN_METHODS.contains(&t.text.as_str())
                && prev.is_some_and(|p| p.is_punct("."))
                && next.is_some_and(|n| n.is_punct("("))
            {
                let field = i.checked_sub(2).and_then(get);
                let dot = i.checked_sub(3).and_then(get);
                let slf = i.checked_sub(4).and_then(get);
                if let Some(f2) = field.filter(|t| t.kind == TokKind::Ident) {
                    if dot.is_some_and(|d| d.is_punct("."))
                        && slf.is_some_and(|s| s.is_ident("self"))
                    {
                        fact.state_loops
                            .push((t.line, format!("self.{}.{}()", f2.text, t.text)));
                    }
                }
            }
            // `for … in &[mut] self.<field> {` — implicit IntoIterator.
            if t.is_ident("in") {
                let mut j = i + 1;
                while get(j).is_some_and(|t| t.is_punct("&") || t.is_ident("mut")) {
                    j += 1;
                }
                if get(j).is_some_and(|t| t.is_ident("self"))
                    && get(j + 1).is_some_and(|t| t.is_punct("."))
                {
                    if let Some(field) = get(j + 2).filter(|t| t.kind == TokKind::Ident) {
                        if get(j + 3).is_some_and(|t| t.is_punct("{")) {
                            fact.state_loops
                                .push((field.line, format!("for … in &self.{}", field.text)));
                        }
                    }
                }
            }
        }
    }
}

/// Walk a `a.b.c` receiver chain back from the `.` before a method call.
/// Returns `None` for computed receivers (`f().get(…)`, `m[i].get(…)`),
/// which cannot be compared across call sites by name.
fn receiver_chain(toks: &[Tok], body: &std::ops::Range<usize>, dot: usize) -> Option<String> {
    let get = |i: usize| toks.get(i).filter(|_| body.contains(&i));
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // points at the `.`
    loop {
        let seg = i.checked_sub(1).and_then(get)?;
        if seg.kind != TokKind::Ident {
            return None;
        }
        parts.push(seg.text.clone());
        match i.checked_sub(2).and_then(get) {
            Some(p) if p.is_punct(".") => i -= 2,
            _ => break,
        }
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Render the first argument of a call whose `(` is at `open`, with
/// `&`/`mut`/`*` stripped so `get(&k)` and `insert(k, v)` compare equal.
fn first_arg(toks: &[Tok], body: &std::ops::Range<usize>, open: usize) -> Option<String> {
    let get = |i: usize| toks.get(i).filter(|_| body.contains(&i));
    let mut depth = 0isize;
    let mut out = String::new();
    let mut i = open;
    loop {
        let t = get(i)?;
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
            if depth > 1 {
                out.push_str(&t.text);
            }
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
            out.push_str(&t.text);
        } else if depth == 1 && t.is_punct(",") {
            break;
        } else if depth >= 1 && !(t.is_punct("&") || t.is_punct("*") || t.is_ident("mut")) {
            out.push_str(&t.text);
        }
        i += 1;
    }
    (!out.is_empty()).then_some(out)
}

/// From a terminal-variant mention at `i`, detect `… => … target`
/// before the enclosing match arm ends (`target` is `Retriable` for the
/// remap check, `true` for `is_retriable` classifiers).  Returns the
/// target token's line.  Bounded scan; nesting below the arm (calls,
/// blocks) is stepped over.
fn arm_maps_to(toks: &[Tok], body: &std::ops::Range<usize>, i: usize, target: &str) -> Option<u32> {
    let mut depth = 0isize;
    let mut seen_arrow = false;
    for t in toks[..(i + 200).min(body.end)].iter().skip(i + 1) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return None; // left the arm's nesting level
            }
        } else if t.is_punct("=>") && depth == 0 {
            seen_arrow = true;
        } else if t.is_punct(",") && depth == 0 && seen_arrow {
            return None; // arm ended without the target token
        } else if seen_arrow && t.is_ident(target) {
            return Some(t.line);
        } else if !seen_arrow && t.is_punct("|") {
            // Or-pattern continues; keep scanning toward the arrow.
        } else if !seen_arrow && t.is_punct(",") && depth == 0 {
            return None; // list/tuple position, not a match pattern
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Index construction
// ---------------------------------------------------------------------------

/// Build the item index from already-read sources (path → content).
pub fn build_index(sources: &BTreeMap<String, String>) -> Index {
    let parses: Vec<(&String, FileParse)> = sources
        .iter()
        .map(|(path, src)| (path, parse_file(src)))
        .collect();

    let mut sim_state = BTreeSet::new();
    let mut span_source = BTreeSet::new();
    let mut terminals = BTreeSet::new();
    for (_, fp) in &parses {
        for sp in &fp.structs {
            if sp.markers.contains("sim_state") {
                sim_state.insert(sp.name.clone());
            }
            if sp.markers.contains("span_source") {
                span_source.insert(sp.name.clone());
            }
        }
        for (qual, marks) in &fp.variants {
            if marks.contains("terminal_error") {
                terminals.insert(qual.clone());
            }
        }
    }

    // Stage-4 dimension registrations: built-in knowledge of the simkit
    // unit types seeds the tables, markers extend them.
    let mut dim_types = crate::dim::builtin_types();
    let mut dim_sigs = crate::dim::builtin_sigs();
    for (_, fp) in &parses {
        for sp in &fp.structs {
            if let Some(u) = &sp.dim {
                dim_types.insert(sp.name.clone(), u.clone());
            }
        }
        for raw in &fp.fns {
            let mut sig = DimSig::default();
            for (key, unit) in &raw.dims {
                if key.is_empty() || key == "return" {
                    sig.ret = Some(unit.clone());
                } else if let Some(pos) = raw.params.iter().position(|p| p == key) {
                    sig.params.push((pos as u32, unit.clone()));
                }
            }
            if sig != DimSig::default() {
                sig.params.sort();
                dim_sigs.insert(raw.qual.clone(), sig);
            }
        }
    }
    // Field dimensions: an explicit marker wins; otherwise the field's
    // type head resolves through the (now complete) type table, so
    // `remaining: Bytes` registers without a marker.
    let mut dim_fields: BTreeMap<String, String> = BTreeMap::new();
    for (_, fp) in &parses {
        for sp in &fp.structs {
            for (fname, mdim, thead) in &sp.fields {
                let unit = mdim
                    .clone()
                    .or_else(|| thead.as_ref().and_then(|t| dim_types.get(t).cloned()));
                if let Some(u) = unit {
                    dim_fields.insert(format!("{}::{}", sp.name, fname), u);
                }
            }
        }
    }
    let tables = crate::dim::DimTables::new(&dim_types, &dim_fields, &dim_sigs);

    let mut fns = Vec::new();
    for (path, fp) in &parses {
        for raw in &fp.fns {
            let mut fact = FnFact {
                name: raw.name.clone(),
                qual: raw.qual.clone(),
                impl_type: raw.impl_type.clone(),
                file: (*path).clone(),
                line: raw.line,
                mut_self: raw.mut_self,
                markers: raw.markers.clone(),
                calls: Vec::new(),
                panics: Vec::new(),
                terminal_mentions: Vec::new(),
                maperr_retriable: Vec::new(),
                arm_remaps: Vec::new(),
                allocs: Vec::new(),
                map_ops: Vec::new(),
                state_loops: Vec::new(),
                dim_mixed: Vec::new(),
                dim_sinks: Vec::new(),
                dim_lits: Vec::new(),
            };
            analyze_body(
                &fp.toks,
                raw.body.clone(),
                raw.impl_type.as_deref(),
                &terminals,
                &mut fact,
            );
            analyze_cost_facts(
                &fp.toks,
                raw.body.clone(),
                raw.impl_type
                    .as_deref()
                    .is_some_and(|t| sim_state.contains(t)),
                &mut fact,
            );
            crate::dim::collect_dim_facts(
                &fp.toks,
                raw.body.clone(),
                &tables,
                &raw.params,
                &raw.qual,
                raw.impl_type.as_deref(),
                &mut fact,
            );
            fns.push(fact);
        }
    }

    Index {
        fingerprint: fingerprint(sources),
        sim_state,
        span_source,
        terminals,
        dim_types,
        dim_fields,
        dim_sigs,
        fns,
    }
}

// ---------------------------------------------------------------------------
// Call graph + analyses
// ---------------------------------------------------------------------------

pub(crate) struct Graph {
    /// Forward adjacency: caller index → callee indices.
    pub(crate) out: Vec<Vec<usize>>,
    /// Reverse adjacency: callee index → caller indices.
    pub(crate) into: Vec<Vec<usize>>,
}

pub(crate) fn build_graph(index: &Index) -> Graph {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in index.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
        by_qual.entry(f.qual.as_str()).or_default().push(i);
    }
    let mut out = vec![Vec::new(); index.fns.len()];
    let mut into = vec![Vec::new(); index.fns.len()];
    for (i, f) in index.fns.iter().enumerate() {
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        for (qualifier, name) in &f.calls {
            if !qualifier.is_empty() {
                let key = format!("{qualifier}::{name}");
                if let Some(ids) = by_qual.get(key.as_str()) {
                    targets.extend(ids.iter().copied());
                    continue;
                }
                // A CamelCase qualifier names a type; if no workspace impl
                // matches, the call targets foreign code (`Vec::new`) and
                // must not fan out to every same-named workspace fn.  A
                // lowercase qualifier is a module path (`retry::run`), where
                // the bare-name fallback is the right approximation.
                if qualifier.chars().next().is_some_and(|c| c.is_uppercase()) {
                    continue;
                }
            }
            if let Some(ids) = by_name.get(name.as_str()) {
                targets.extend(ids.iter().copied());
            }
        }
        for t in targets {
            out[i].push(t);
            into[t].push(i);
        }
    }
    Graph { out, into }
}

/// BFS over an adjacency list from a seed set; returns, per node, the
/// seed it was first reached from (`usize::MAX` = unreached).
pub(crate) fn reach(adj: &[Vec<usize>], seeds: &[usize]) -> Vec<usize> {
    let mut origin = vec![usize::MAX; adj.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in seeds {
        if origin[s] == usize::MAX {
            origin[s] = s;
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        let from = origin[n];
        for &m in &adj[n] {
            if origin[m] == usize::MAX {
                origin[m] = from;
                queue.push_back(m);
            }
        }
    }
    origin
}

/// Per-file context for rendering findings and honouring suppressions.
struct FileCtx {
    lines: Vec<String>,
    allows: BTreeMap<usize, Allow>,
}

pub(crate) struct Emitter {
    files: BTreeMap<String, FileCtx>,
    pub(crate) findings: Vec<Finding>,
}

impl Emitter {
    pub(crate) fn new(sources: &BTreeMap<String, String>) -> Emitter {
        let files = sources
            .iter()
            .map(|(path, src)| {
                let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
                let mut allows = BTreeMap::new();
                for (i, l) in lines.iter().enumerate() {
                    if let Some(a) = parse_allow(l) {
                        allows.insert(i + 1, a);
                    }
                }
                (path.clone(), FileCtx { lines, allows })
            })
            .collect();
        Emitter {
            files,
            findings: Vec::new(),
        }
    }

    /// Record a finding unless suppressed.  An `simlint::allow(rule)`
    /// comment on the offending line, the line above it, or (when
    /// `scope` names the enclosing declaration) anywhere in the
    /// contiguous comment/attribute block above that declaration covers
    /// the finding — so one function-level allow with a written reason
    /// silences a whole body of intentional sites instead of needing a
    /// comment per line, and several rules' allows can stack above one
    /// declaration (mirroring how registration markers attach).
    pub(crate) fn emit(
        &mut self,
        rule: &'static str,
        severity: Severity,
        path: &str,
        line: u32,
        scope: Option<u32>,
        message: String,
    ) {
        let line = line as usize;
        if let Some(ctx) = self.files.get(path) {
            let mut probe = vec![line, line.saturating_sub(1)];
            if let Some(s) = scope {
                let s = s as usize;
                probe.push(s);
                // Walk the contiguous comment/attribute block above the
                // declaration so stacked allows (one per rule) all count.
                let mut l = s;
                while l > 1 {
                    l -= 1;
                    let t = ctx.lines.get(l - 1).map(|ln| ln.trim()).unwrap_or_default();
                    if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
                        probe.push(l);
                    } else {
                        break;
                    }
                }
            }
            let allowed = probe
                .iter()
                .filter_map(|l| ctx.allows.get(l))
                .any(|a| allow_covers(a, rule));
            if allowed {
                return;
            }
            let excerpt = ctx
                .lines
                .get(line.saturating_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            self.findings.push(Finding {
                rule,
                severity,
                path: path.to_string(),
                line,
                message,
                excerpt,
            });
        } else {
            self.findings.push(Finding {
                rule,
                severity,
                path: path.to_string(),
                line,
                message,
                excerpt: String::new(),
            });
        }
    }
}

/// Run the three flow analyses over a built index.  `sources` supplies
/// excerpts and `simlint::allow` suppressions; it must be the same tree
/// the index was built from (the CLI enforces this via the fingerprint).
pub fn analyze(index: &Index, sources: &BTreeMap<String, String>) -> Vec<Finding> {
    let graph = build_graph(index);
    let mut em = Emitter::new(sources);

    // ---- digest-taint -----------------------------------------------------
    let digest_roots: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.markers.contains("digest_root"))
        .map(|(i, _)| i)
        .collect();
    if !index.sim_state.is_empty() {
        if digest_roots.is_empty() {
            em.emit(
                "flow-config",
                Severity::Warn,
                "(workspace)",
                0,
                None,
                "sim_state types are registered but no digest_root is; digest-taint cannot run"
                    .to_string(),
            );
        } else {
            let root_names: Vec<&str> = digest_roots
                .iter()
                .map(|&i| index.fns[i].qual.as_str())
                .collect();
            let reached = reach(&graph.out, &digest_roots);
            for (i, f) in index.fns.iter().enumerate() {
                let is_mutator = f.mut_self
                    && f.impl_type
                        .as_deref()
                        .is_some_and(|t| index.sim_state.contains(t));
                if is_mutator && reached[i] == usize::MAX {
                    em.emit(
                        "digest-taint",
                        Severity::Error,
                        &f.file,
                        f.line,
                        None,
                        format!(
                            "sim-state mutator `{}` is not reachable from any digest fold root ({}): replays cannot witness this mutation, so a divergence through it would be silent",
                            f.qual,
                            root_names.join(", "),
                        ),
                    );
                }
            }
        }
    }

    // ---- span-digest ------------------------------------------------------
    // Same reachability contract as digest-taint, applied to span logs:
    // a span open/close/mark that no digest root reaches would record
    // trace events the span digest cannot witness, so two traced replays
    // could silently diverge.
    if !index.span_source.is_empty() {
        if digest_roots.is_empty() {
            em.emit(
                "flow-config",
                Severity::Warn,
                "(workspace)",
                0,
                None,
                "span_source types are registered but no digest_root is; span-digest cannot run"
                    .to_string(),
            );
        } else {
            let reached = reach(&graph.out, &digest_roots);
            for (i, f) in index.fns.iter().enumerate() {
                let is_mutator = f.mut_self
                    && f.impl_type
                        .as_deref()
                        .is_some_and(|t| index.span_source.contains(t));
                if is_mutator && reached[i] == usize::MAX {
                    em.emit(
                        "span-digest",
                        Severity::Error,
                        &f.file,
                        f.line,
                        None,
                        format!(
                            "span-source mutator `{}` is not reachable from any digest fold root: span events through it bypass the span digest, so traced replays could diverge silently",
                            f.qual,
                        ),
                    );
                }
            }
        }
    }

    // ---- panic-path -------------------------------------------------------
    let mut panic_roots: BTreeSet<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.markers.contains("panic_root"))
        .map(|(i, _)| i)
        .collect();
    // Closure executors: a retry operation's body is a closure inside the
    // caller, and closure calls are attributed to the caller — so every
    // direct caller of a `retry_entry` function becomes a root.
    for (i, f) in index.fns.iter().enumerate() {
        if f.markers.contains("retry_entry") {
            panic_roots.extend(graph.into[i].iter().copied());
            panic_roots.insert(i);
        }
    }
    let panic_roots: Vec<usize> = panic_roots.into_iter().collect();
    if !panic_roots.is_empty() {
        let reached = reach(&graph.out, &panic_roots);
        for (i, f) in index.fns.iter().enumerate() {
            if reached[i] == usize::MAX {
                continue;
            }
            let via = &index.fns[reached[i]].qual;
            for (line, kind) in &f.panics {
                // Indexing is reported but does not fail `--deny`: without
                // type information the detector cannot tell fallible slice
                // access from fixed-size arrays or in-range-by-construction
                // hot-path indexing (the same reason clippy ships
                // `indexing_slicing` allow-by-default).
                let (what, severity) = match kind.as_str() {
                    "unwrap" => ("`.unwrap()`", Severity::Error),
                    "expect" => ("`.expect(…)`", Severity::Error),
                    _ => ("slice indexing", Severity::Warn),
                };
                em.emit(
                    "panic-path",
                    severity,
                    &f.file,
                    *line,
                    Some(f.line),
                    format!(
                        "{what} in `{}` is reachable from panic root `{via}`: a panic mid-degraded-mode aborts the bandwidth-under-failure scenarios; propagate the error instead",
                        f.qual,
                    ),
                );
            }
        }
    }

    // ---- retry-taxonomy ---------------------------------------------------
    if !index.terminals.is_empty() {
        // Producers: functions mentioning a terminal variant; carriers:
        // their transitive callers (the error propagates out through `?`).
        let producers: Vec<usize> = index
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.terminal_mentions.is_empty())
            .map(|(i, _)| i)
            .collect();
        let carrier = reach(&graph.into, &producers);

        for (i, f) in index.fns.iter().enumerate() {
            // (a) terminal variant classified retriable.
            if f.name == "is_retriable" {
                for (variant, line) in &f.terminal_mentions {
                    em.emit(
                        "retry-taxonomy",
                        Severity::Error,
                        &f.file,
                        *line,
                        Some(f.line),
                        format!(
                            "terminal error `{variant}` is classified as retriable in `{}`: retrying after data loss can never succeed",
                            f.qual,
                        ),
                    );
                }
            }
            // (b) match arm remapping terminal → retriable.
            for (variant, line) in &f.arm_remaps {
                em.emit(
                    "retry-taxonomy",
                    Severity::Error,
                    &f.file,
                    *line,
                    Some(f.line),
                    format!(
                        "terminal error `{variant}` is remapped to a retriable classification in `{}`; it must stay terminal",
                        f.qual,
                    ),
                );
            }
            // (c) blanket map_err → Retriable in a function that can
            // carry a terminal error from its callees.
            if carrier[i] != usize::MAX {
                let source = &index.fns[carrier[i]].qual;
                for line in &f.maperr_retriable {
                    em.emit(
                        "retry-taxonomy",
                        Severity::Error,
                        &f.file,
                        *line,
                        Some(f.line),
                        format!(
                            "`map_err` to a retriable error in `{}` can launder a terminal error produced by `{source}` into a retry loop",
                            f.qual,
                        ),
                    );
                }
            }
        }
    }

    let mut findings = em.findings;
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Convenience: read sources, build the index and analyze in one call.
pub fn analyze_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let sources = read_sources(root)?;
    let index = build_index(&sources);
    Ok(analyze(&index, &sources))
}

// ---------------------------------------------------------------------------
// Index serialization (CI cache)
// ---------------------------------------------------------------------------

use crate::json::Json;
use crate::json_escape;

/// Serialize the index to JSON (one object; findings-style escaping).
pub fn index_to_json(index: &Index) -> String {
    let mut s = String::new();
    s.push_str("{\"version\":4,");
    s.push_str(&format!("\"fingerprint\":\"{:016x}\",", index.fingerprint));
    let str_arr = |items: &BTreeSet<String>| {
        let inner: Vec<String> = items
            .iter()
            .map(|i| format!("\"{}\"", json_escape(i)))
            .collect();
        format!("[{}]", inner.join(","))
    };
    let str_map = |items: &BTreeMap<String, String>| {
        let inner: Vec<String> = items
            .iter()
            .map(|(k, v)| format!("[\"{}\",\"{}\"]", json_escape(k), json_escape(v)))
            .collect();
        format!("[{}]", inner.join(","))
    };
    s.push_str(&format!("\"sim_state\":{},", str_arr(&index.sim_state)));
    s.push_str(&format!("\"span_source\":{},", str_arr(&index.span_source)));
    s.push_str(&format!("\"terminals\":{},", str_arr(&index.terminals)));
    s.push_str(&format!("\"dim_types\":{},", str_map(&index.dim_types)));
    s.push_str(&format!("\"dim_fields\":{},", str_map(&index.dim_fields)));
    let sigs: Vec<String> = index
        .dim_sigs
        .iter()
        .map(|(q, sig)| {
            let ps: Vec<String> = sig
                .params
                .iter()
                .map(|(pos, u)| format!("[{pos},\"{}\"]", json_escape(u)))
                .collect();
            let ret = match &sig.ret {
                Some(u) => format!("\"{}\"", json_escape(u)),
                None => "null".to_string(),
            };
            format!("[\"{}\",[{}],{}]", json_escape(q), ps.join(","), ret)
        })
        .collect();
    s.push_str(&format!("\"dim_sigs\":[{}],", sigs.join(",")));
    s.push_str("\"fns\":[");
    for (i, f) in index.fns.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"qual\":\"{}\",\"impl_type\":{},\"file\":\"{}\",\"line\":{},\"mut_self\":{},",
            json_escape(&f.name),
            json_escape(&f.qual),
            match &f.impl_type {
                Some(t) => format!("\"{}\"", json_escape(t)),
                None => "null".to_string(),
            },
            json_escape(&f.file),
            f.line,
            f.mut_self,
        ));
        let markers: Vec<String> = f
            .markers
            .iter()
            .map(|m| format!("\"{}\"", json_escape(m)))
            .collect();
        s.push_str(&format!("\"markers\":[{}],", markers.join(",")));
        let calls: Vec<String> = f
            .calls
            .iter()
            .map(|(q, n)| format!("[\"{}\",\"{}\"]", json_escape(q), json_escape(n)))
            .collect();
        s.push_str(&format!("\"calls\":[{}],", calls.join(",")));
        let panics: Vec<String> = f
            .panics
            .iter()
            .map(|(l, k)| format!("[{l},\"{}\"]", json_escape(k)))
            .collect();
        s.push_str(&format!("\"panics\":[{}],", panics.join(",")));
        let mentions: Vec<String> = f
            .terminal_mentions
            .iter()
            .map(|(v, l)| format!("[\"{}\",{l}]", json_escape(v)))
            .collect();
        s.push_str(&format!("\"terminal_mentions\":[{}],", mentions.join(",")));
        let maperr: Vec<String> = f.maperr_retriable.iter().map(|l| l.to_string()).collect();
        s.push_str(&format!("\"maperr_retriable\":[{}],", maperr.join(",")));
        let remaps: Vec<String> = f
            .arm_remaps
            .iter()
            .map(|(v, l)| format!("[\"{}\",{l}]", json_escape(v)))
            .collect();
        s.push_str(&format!("\"arm_remaps\":[{}],", remaps.join(",")));
        let allocs: Vec<String> = f
            .allocs
            .iter()
            .map(|(l, k)| format!("[{l},\"{}\"]", json_escape(k)))
            .collect();
        s.push_str(&format!("\"allocs\":[{}],", allocs.join(",")));
        let map_ops: Vec<String> = f
            .map_ops
            .iter()
            .map(|(r, k, m, l)| {
                format!(
                    "[\"{}\",\"{}\",\"{}\",{l}]",
                    json_escape(r),
                    json_escape(k),
                    json_escape(m)
                )
            })
            .collect();
        s.push_str(&format!("\"map_ops\":[{}],", map_ops.join(",")));
        let scans: Vec<String> = f
            .state_loops
            .iter()
            .map(|(l, w)| format!("[{l},\"{}\"]", json_escape(w)))
            .collect();
        s.push_str(&format!("\"state_loops\":[{}],", scans.join(",")));
        let mixed: Vec<String> = f
            .dim_mixed
            .iter()
            .map(|(l, a, b)| format!("[{l},\"{}\",\"{}\"]", json_escape(a), json_escape(b)))
            .collect();
        s.push_str(&format!("\"dim_mixed\":[{}],", mixed.join(",")));
        let sinks: Vec<String> = f
            .dim_sinks
            .iter()
            .map(|(l, c, e, g)| {
                format!(
                    "[{l},\"{}\",\"{}\",\"{}\"]",
                    json_escape(c),
                    json_escape(e),
                    json_escape(g)
                )
            })
            .collect();
        s.push_str(&format!("\"dim_sinks\":[{}],", sinks.join(",")));
        let lits: Vec<String> = f
            .dim_lits
            .iter()
            .map(|(l, t)| format!("[{l},\"{}\"]", json_escape(t)))
            .collect();
        s.push_str(&format!("\"dim_lits\":[{}]}}", lits.join(",")));
    }
    s.push_str("]}");
    s
}

/// Deserialize an index written by [`index_to_json`].
pub fn index_from_json(s: &str) -> Result<Index, String> {
    let v = Json::parse(s)?;
    if v.get("version").and_then(|x| x.as_u64()) != Some(4) {
        return Err("unsupported index version".to_string());
    }
    let fingerprint = v
        .get("fingerprint")
        .and_then(|x| x.as_str())
        .and_then(|x| u64::from_str_radix(x, 16).ok())
        .ok_or("missing fingerprint")?;
    let str_set = |key: &str| -> Result<BTreeSet<String>, String> {
        v.get(key)
            .and_then(|x| x.as_arr())
            .ok_or_else(|| format!("missing {key}"))?
            .iter()
            .map(|x| x.as_str().map(|s| s.to_string()).ok_or("bad string".into()))
            .collect()
    };
    let sim_state = str_set("sim_state")?;
    let span_source = str_set("span_source")?;
    let terminals = str_set("terminals")?;
    let str_map = |key: &str| -> Result<BTreeMap<String, String>, String> {
        let mut out = BTreeMap::new();
        for e in v
            .get(key)
            .and_then(|x| x.as_arr())
            .ok_or_else(|| format!("missing {key}"))?
        {
            let a = e.as_arr().ok_or("bad map entry")?;
            if a.len() != 2 {
                return Err("bad map entry arity".to_string());
            }
            out.insert(
                a[0].as_str().ok_or("bad map key")?.to_string(),
                a[1].as_str().ok_or("bad map value")?.to_string(),
            );
        }
        Ok(out)
    };
    let dim_types = str_map("dim_types")?;
    let dim_fields = str_map("dim_fields")?;
    let mut dim_sigs = BTreeMap::new();
    for e in v
        .get("dim_sigs")
        .and_then(|x| x.as_arr())
        .ok_or("missing dim_sigs")?
    {
        let a = e.as_arr().ok_or("bad dim_sig")?;
        if a.len() != 3 {
            return Err("bad dim_sig arity".to_string());
        }
        let qual = a[0].as_str().ok_or("bad dim_sig qual")?.to_string();
        let mut params = Vec::new();
        for pe in a[1].as_arr().ok_or("bad dim_sig params")? {
            let pa = pe.as_arr().ok_or("bad dim_sig param")?;
            if pa.len() != 2 {
                return Err("bad dim_sig param arity".to_string());
            }
            params.push((
                pa[0].as_u64().ok_or("bad dim_sig param pos")? as u32,
                pa[1].as_str().ok_or("bad dim_sig param unit")?.to_string(),
            ));
        }
        let ret = a[2].as_str().map(|s| s.to_string());
        dim_sigs.insert(qual, DimSig { params, ret });
    }
    let mut fns = Vec::new();
    for fv in v.get("fns").and_then(|x| x.as_arr()).ok_or("missing fns")? {
        let gs = |key: &str| -> Result<String, String> {
            fv.get(key)
                .and_then(|x| x.as_str())
                .map(|s| s.to_string())
                .ok_or_else(|| format!("fn missing {key}"))
        };
        let pair_list = |key: &str, num_first: bool| -> Result<Vec<(String, u32)>, String> {
            let mut out = Vec::new();
            for e in fv.get(key).and_then(|x| x.as_arr()).unwrap_or(&[]) {
                let a = e.as_arr().ok_or("bad pair")?;
                if a.len() != 2 {
                    return Err("bad pair arity".to_string());
                }
                let (sv, nv) = if num_first {
                    (&a[1], &a[0])
                } else {
                    (&a[0], &a[1])
                };
                out.push((
                    sv.as_str().ok_or("bad pair str")?.to_string(),
                    nv.as_u64().ok_or("bad pair num")? as u32,
                ));
            }
            Ok(out)
        };
        fns.push(FnFact {
            name: gs("name")?,
            qual: gs("qual")?,
            impl_type: fv
                .get("impl_type")
                .and_then(|x| x.as_str())
                .map(|s| s.to_string()),
            file: gs("file")?,
            line: fv
                .get("line")
                .and_then(|x| x.as_u64())
                .ok_or("fn missing line")? as u32,
            mut_self: fv
                .get("mut_self")
                .and_then(|x| x.as_bool())
                .ok_or("fn missing mut_self")?,
            markers: fv
                .get("markers")
                .and_then(|x| x.as_arr())
                .unwrap_or(&[])
                .iter()
                .filter_map(|m| m.as_str().map(|s| s.to_string()))
                .collect(),
            calls: fv
                .get("calls")
                .and_then(|x| x.as_arr())
                .unwrap_or(&[])
                .iter()
                .filter_map(|c| {
                    let a = c.as_arr()?;
                    Some((
                        a.first()?.as_str()?.to_string(),
                        a.get(1)?.as_str()?.to_string(),
                    ))
                })
                .collect(),
            panics: pair_list("panics", true)?
                .into_iter()
                .map(|(k, l)| (l, k))
                .collect(),
            terminal_mentions: pair_list("terminal_mentions", false)?,
            maperr_retriable: fv
                .get("maperr_retriable")
                .and_then(|x| x.as_arr())
                .unwrap_or(&[])
                .iter()
                .filter_map(|l| l.as_u64().map(|n| n as u32))
                .collect(),
            arm_remaps: pair_list("arm_remaps", false)?,
            allocs: pair_list("allocs", true)?
                .into_iter()
                .map(|(k, l)| (l, k))
                .collect(),
            map_ops: {
                let mut out = Vec::new();
                for e in fv.get("map_ops").and_then(|x| x.as_arr()).unwrap_or(&[]) {
                    let a = e.as_arr().ok_or("bad map_op")?;
                    if a.len() != 4 {
                        return Err("bad map_op arity".to_string());
                    }
                    out.push((
                        a[0].as_str().ok_or("bad map_op recv")?.to_string(),
                        a[1].as_str().ok_or("bad map_op key")?.to_string(),
                        a[2].as_str().ok_or("bad map_op method")?.to_string(),
                        a[3].as_u64().ok_or("bad map_op line")? as u32,
                    ));
                }
                out
            },
            state_loops: pair_list("state_loops", true)?
                .into_iter()
                .map(|(k, l)| (l, k))
                .collect(),
            dim_mixed: {
                let mut out = Vec::new();
                for e in fv.get("dim_mixed").and_then(|x| x.as_arr()).unwrap_or(&[]) {
                    let a = e.as_arr().ok_or("bad dim_mixed")?;
                    if a.len() != 3 {
                        return Err("bad dim_mixed arity".to_string());
                    }
                    out.push((
                        a[0].as_u64().ok_or("bad dim_mixed line")? as u32,
                        a[1].as_str().ok_or("bad dim_mixed left")?.to_string(),
                        a[2].as_str().ok_or("bad dim_mixed right")?.to_string(),
                    ));
                }
                out
            },
            dim_sinks: {
                let mut out = Vec::new();
                for e in fv.get("dim_sinks").and_then(|x| x.as_arr()).unwrap_or(&[]) {
                    let a = e.as_arr().ok_or("bad dim_sink")?;
                    if a.len() != 4 {
                        return Err("bad dim_sink arity".to_string());
                    }
                    out.push((
                        a[0].as_u64().ok_or("bad dim_sink line")? as u32,
                        a[1].as_str().ok_or("bad dim_sink callee")?.to_string(),
                        a[2].as_str().ok_or("bad dim_sink expected")?.to_string(),
                        a[3].as_str().ok_or("bad dim_sink got")?.to_string(),
                    ));
                }
                out
            },
            dim_lits: pair_list("dim_lits", true)?
                .into_iter()
                .map(|(k, l)| (l, k))
                .collect(),
        });
    }
    Ok(Index {
        fingerprint,
        sim_state,
        span_source,
        terminals,
        dim_types,
        dim_fields,
        dim_sigs,
        fns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srcs(files: &[(&str, &str)]) -> BTreeMap<String, String> {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources = srcs(files);
        let index = build_index(&sources);
        analyze(&index, &sources)
    }

    fn rules_hit(files: &[(&str, &str)]) -> Vec<&'static str> {
        run(files).into_iter().map(|f| f.rule).collect()
    }

    // ---- item parsing ----

    #[test]
    fn parses_fns_with_impl_quals_and_mut_self() {
        let sources = srcs(&[(
            "crates/x/src/lib.rs",
            "pub struct S;\n\
             impl S {\n\
                 pub fn touch(&mut self) {}\n\
                 pub fn peek(&self) -> u32 { 0 }\n\
                 fn make() -> S { S }\n\
             }\n\
             pub fn free(s: &mut S) {}\n",
        )]);
        let idx = build_index(&sources);
        let by_qual: BTreeMap<&str, &FnFact> =
            idx.fns.iter().map(|f| (f.qual.as_str(), f)).collect();
        assert!(by_qual["S::touch"].mut_self);
        assert!(!by_qual["S::peek"].mut_self);
        assert!(!by_qual["S::make"].mut_self);
        // `&mut S` parameter is not a self receiver.
        assert!(!by_qual["free"].mut_self);
        assert_eq!(by_qual["S::touch"].impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn trait_impls_and_generics_parse() {
        let sources = srcs(&[(
            "crates/x/src/lib.rs",
            "pub trait T { fn go(&self); fn dflt(&self) -> [u8; 2] { [0, 0] } }\n\
             pub struct G<P>(P);\n\
             impl<P: Clone> T for G<P> {\n\
                 fn go(&self) { helper() }\n\
             }\n\
             fn helper() {}\n",
        )]);
        let idx = build_index(&sources);
        let quals: Vec<&str> = idx.fns.iter().map(|f| f.qual.as_str()).collect();
        // Bodyless trait method is not indexed; the default body is.
        assert!(quals.contains(&"T::dflt"), "{quals:?}");
        assert!(quals.contains(&"G::go"), "{quals:?}");
        assert!(quals.contains(&"helper"), "{quals:?}");
        let go = idx.fns.iter().find(|f| f.qual == "G::go").unwrap();
        assert!(go.calls.iter().any(|(_, n)| n == "helper"));
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let sources = srcs(&[(
            "crates/x/src/lib.rs",
            "pub fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { x.unwrap(); }\n\
             }\n",
        )]);
        let idx = build_index(&sources);
        let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn panic_sites_detected_not_in_comments_or_strings() {
        let sources = srcs(&[(
            "crates/x/src/lib.rs",
            "fn f(v: &[u32], m: std::collections::BTreeMap<u32, u32>) -> u32 {\n\
                 // x.unwrap() in a comment\n\
                 let s = \"y.unwrap()\";\n\
                 let a = m.get(&0).unwrap();\n\
                 let b = m.get(&1).expect(\"b\");\n\
                 let c = v[0];\n\
                 let d = [1u32, 2];\n\
                 a + b + c + d[1]\n\
             }\n",
        )]);
        let idx = build_index(&sources);
        let f = &idx.fns[0];
        let kinds: Vec<&str> = f.panics.iter().map(|(_, k)| k.as_str()).collect();
        // unwrap, expect, v[0], d[1] — the array literal `[1u32, 2]` is not
        // an index (predecessor `=`), the attribute/string/comment cases
        // never lex as code.
        assert_eq!(kinds, vec!["unwrap", "expect", "index", "index"]);
    }

    // ---- digest-taint ----

    const DIGEST_POS: &[(&str, &str)] = &[
        (
            "crates/sim/src/lib.rs",
            "// simlint::sim_state — replay-visible\n\
             pub struct Sys { pub x: u32 }\n\
             impl Sys {\n\
                 pub fn covered(&mut self) { self.x += 1; }\n\
                 pub fn stray(&mut self) { self.x += 2; }\n\
                 pub fn read_only(&self) -> u32 { self.x }\n\
             }\n",
        ),
        (
            "crates/harness/src/lib.rs",
            "// simlint::digest_root — fold entry\n\
             pub fn run_digest(sys: &mut crate::Sys) -> u64 {\n\
                 sys.covered();\n\
                 0\n\
             }\n",
        ),
    ];

    #[test]
    fn digest_taint_flags_unreachable_mutator_only() {
        let findings = run(DIGEST_POS);
        let taints: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "digest-taint")
            .collect();
        assert_eq!(taints.len(), 1, "{findings:?}");
        assert!(taints[0].message.contains("Sys::stray"));
        assert!(taints[0].message.contains("run_digest"));
        assert_eq!(taints[0].severity, Severity::Error);
    }

    #[test]
    fn digest_taint_suppressed_with_reason() {
        let mut files: Vec<(&str, &str)> = DIGEST_POS.to_vec();
        files[0] = (
            "crates/sim/src/lib.rs",
            "// simlint::sim_state — replay-visible\n\
             pub struct Sys { pub x: u32 }\n\
             impl Sys {\n\
                 pub fn covered(&mut self) { self.x += 1; }\n\
                 // simlint::allow(digest-taint) — debug-only mutator, asserted unreachable in replay\n\
                 pub fn stray(&mut self) { self.x += 2; }\n\
             }\n",
        );
        assert!(!rules_hit(&files).contains(&"digest-taint"));
    }

    #[test]
    fn digest_taint_transitive_reachability() {
        let files = &[
            (
                "crates/sim/src/lib.rs",
                "// simlint::sim_state\n\
                 pub struct Sys { pub x: u32 }\n\
                 impl Sys {\n\
                     pub fn deep(&mut self) { self.x += 1; }\n\
                 }\n\
                 pub fn middle(sys: &mut Sys) { sys.deep(); }\n",
            ),
            (
                "crates/harness/src/lib.rs",
                "// simlint::digest_root\n\
                 pub fn run_digest(sys: &mut crate::Sys) -> u64 { middle(sys); 0 }\n",
            ),
        ];
        assert!(!rules_hit(files).contains(&"digest-taint"));
    }

    // ---- span-digest ----

    const SPAN_POS: &[(&str, &str)] = &[
        (
            "crates/sim/src/lib.rs",
            "// simlint::span_source — span events fold into the span digest\n\
             pub struct Log { pub n: u32 }\n\
             impl Log {\n\
                 pub fn open(&mut self) { self.n += 1; }\n\
                 pub fn side_channel(&mut self) { self.n += 2; }\n\
                 pub fn len(&self) -> u32 { self.n }\n\
             }\n",
        ),
        (
            "crates/harness/src/lib.rs",
            "// simlint::digest_root — fold entry\n\
             pub fn run_digest(log: &mut crate::Log) -> u64 {\n\
                 log.open();\n\
                 0\n\
             }\n",
        ),
    ];

    #[test]
    fn span_digest_flags_unreachable_mutator_only() {
        let findings = run(SPAN_POS);
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "span-digest")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(hits[0].message.contains("Log::side_channel"));
        assert_eq!(hits[0].severity, Severity::Error);
        // The covered mutator and the shared-receiver accessor are clean.
        assert!(findings.iter().all(|f| !f.message.contains("Log::open")));
        assert!(findings.iter().all(|f| !f.message.contains("Log::len")));
    }

    #[test]
    fn span_digest_suppressed_with_reason() {
        let mut files: Vec<(&str, &str)> = SPAN_POS.to_vec();
        files[0] = (
            "crates/sim/src/lib.rs",
            "// simlint::span_source — span events fold into the span digest\n\
             pub struct Log { pub n: u32 }\n\
             impl Log {\n\
                 pub fn open(&mut self) { self.n += 1; }\n\
                 // simlint::allow(span-digest) — test-only reset, never called in traced runs\n\
                 pub fn side_channel(&mut self) { self.n += 2; }\n\
             }\n",
        );
        assert!(!rules_hit(&files).contains(&"span-digest"));
    }

    #[test]
    fn span_source_without_digest_root_warns() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "// simlint::span_source\n\
             pub struct Log;\n\
             impl Log { pub fn open(&mut self) {} }\n",
        )];
        let findings = run(files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "flow-config");
        assert!(findings[0].message.contains("span_source"));
    }

    #[test]
    fn sim_state_without_digest_root_warns() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "// simlint::sim_state\n\
             pub struct Sys;\n\
             impl Sys { pub fn m(&mut self) {} }\n",
        )];
        let findings = run(files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "flow-config");
        assert_eq!(findings[0].severity, Severity::Warn);
    }

    // ---- panic-path ----

    #[test]
    fn panic_path_transitive_from_marked_root() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "// simlint::panic_root — fault handler\n\
             pub fn rebuild(v: &[u32]) { step(v); }\n\
             fn step(v: &[u32]) { leaf(v); }\n\
             fn leaf(v: &[u32]) { let _ = v[0]; }\n\
             pub fn unrelated(m: &std::collections::BTreeMap<u32, u32>) { m.get(&0).unwrap(); }\n",
        )];
        let findings = run(files);
        let panics: Vec<&Finding> = findings.iter().filter(|f| f.rule == "panic-path").collect();
        // v[0] in leaf is reachable from rebuild; the unwrap in `unrelated`
        // is not reachable from any root and stays clean (stage 1 still
        // warns about it, but the flow pass does not error).
        assert_eq!(panics.len(), 1, "{findings:?}");
        assert!(
            panics[0].message.contains("rebuild"),
            "{}",
            panics[0].message
        );
        assert!(panics[0].message.contains("leaf"));
        // Indexing reports as warn (no type info to prove fallibility)…
        assert_eq!(panics[0].severity, Severity::Warn);
        // …while a reachable unwrap is an error.
        let files = &[(
            "crates/sim/src/lib.rs",
            "// simlint::panic_root — fault handler\n\
             pub fn rebuild(m: &std::collections::BTreeMap<u32, u32>) { let _ = m.get(&0).unwrap(); }\n",
        )];
        let findings = run(files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].severity, Severity::Error);
    }

    #[test]
    fn panic_path_retry_entry_promotes_callers() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "// simlint::retry_entry — closure executor\n\
             pub fn run_retry(op: impl FnMut() -> u32) -> u32 { 0 }\n\
             pub fn caller(m: &std::collections::BTreeMap<u32, u32>) {\n\
                 let _ = run_retry(|| *m.get(&0).unwrap());\n\
             }\n\
             pub fn bystander(m: &std::collections::BTreeMap<u32, u32>) { m.get(&1).copied(); }\n",
        )];
        let findings = run(files);
        let panics: Vec<&Finding> = findings.iter().filter(|f| f.rule == "panic-path").collect();
        assert_eq!(panics.len(), 1, "{findings:?}");
        assert!(panics[0].message.contains("caller"));
    }

    #[test]
    fn panic_path_suppression_on_site_line() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "// simlint::panic_root\n\
             pub fn rebuild(m: &std::collections::BTreeMap<u32, u32>) {\n\
                 // simlint::allow(panic-path) — key inserted unconditionally above\n\
                 let _ = m.get(&0).unwrap();\n\
             }\n",
        )];
        assert!(!rules_hit(files).contains(&"panic-path"));
    }

    // ---- retry-taxonomy ----

    #[test]
    fn retry_taxonomy_flags_retriable_classification() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "pub enum E {\n\
                 Timeout,\n\
                 // simlint::terminal_error — data loss is final\n\
                 Unavailable,\n\
             }\n\
             impl E {\n\
                 pub fn is_retriable(&self) -> bool {\n\
                     matches!(self, E::Timeout | E::Unavailable)\n\
                 }\n\
             }\n",
        )];
        let findings = run(files);
        let tax: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "retry-taxonomy")
            .collect();
        assert_eq!(tax.len(), 1, "{findings:?}");
        assert!(tax[0].message.contains("E::Unavailable"));
    }

    #[test]
    fn retry_taxonomy_flags_arm_remap() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "pub enum E {\n\
                 // simlint::terminal_error\n\
                 Unavailable,\n\
                 Timeout,\n\
             }\n\
             pub enum R { Retriable, Fatal }\n\
             pub fn remap(e: E) -> R {\n\
                 match e {\n\
                     E::Unavailable => R::Retriable,\n\
                     E::Timeout => R::Retriable,\n\
                 }\n\
             }\n",
        )];
        let findings = run(files);
        let tax: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "retry-taxonomy")
            .collect();
        assert_eq!(tax.len(), 1, "{findings:?}");
        assert!(tax[0].message.contains("remap"), "{}", tax[0].message);
    }

    #[test]
    fn retry_taxonomy_clean_when_terminal_stays_fatal() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "pub enum E {\n\
                 // simlint::terminal_error\n\
                 Unavailable,\n\
                 Timeout,\n\
             }\n\
             pub enum R { Retriable, Fatal }\n\
             pub fn remap(e: E) -> R {\n\
                 match e {\n\
                     E::Unavailable => R::Fatal,\n\
                     E::Timeout => R::Retriable,\n\
                 }\n\
             }\n\
             impl E {\n\
                 pub fn is_retriable(&self) -> bool { matches!(self, E::Timeout) }\n\
             }\n",
        )];
        assert!(!rules_hit(files).contains(&"retry-taxonomy"));
    }

    #[test]
    fn retry_taxonomy_maperr_carrier() {
        let files = &[(
            "crates/sim/src/lib.rs",
            "pub enum E {\n\
                 // simlint::terminal_error\n\
                 Unavailable,\n\
             }\n\
             pub enum R { Retriable }\n\
             pub fn produce() -> Result<(), E> { Err(E::Unavailable) }\n\
             pub fn launder() -> Result<(), R> {\n\
                 produce().map_err(|_| R::Retriable)\n\
             }\n\
             pub fn honest() -> Result<(), u32> {\n\
                 other().map_err(|_| 7u32)\n\
             }\n\
             pub fn other() -> Result<(), E> { Ok(()) }\n",
        )];
        let findings = run(files);
        let tax: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "retry-taxonomy")
            .collect();
        assert_eq!(tax.len(), 1, "{findings:?}");
        assert!(tax[0].message.contains("launder"), "{}", tax[0].message);
    }

    // ---- index cache ----

    #[test]
    fn index_json_round_trip_preserves_findings() {
        let sources = srcs(DIGEST_POS);
        let index = build_index(&sources);
        let json = index_to_json(&index);
        let back = index_from_json(&json).unwrap();
        assert_eq!(index, back);
        assert_eq!(analyze(&index, &sources), analyze(&back, &sources));
    }

    #[test]
    fn index_json_round_trip_preserves_span_sources() {
        let sources = srcs(SPAN_POS);
        let index = build_index(&sources);
        assert!(index.span_source.contains("Log"), "{index:?}");
        let back = index_from_json(&index_to_json(&index)).unwrap();
        assert_eq!(index, back);
        assert_eq!(analyze(&index, &sources), analyze(&back, &sources));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = srcs(&[("crates/x/src/lib.rs", "pub fn f() {}\n")]);
        let b = srcs(&[("crates/x/src/lib.rs", "pub fn f() { g() }\n")]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }
}
