//! span-digest fixture: one covered span-log mutator, one stray one.

// simlint::span_source — span open/close must fold into the span digest
pub struct Spans {
    pub opened: u64,
}

impl Spans {
    /// Reachable from the digest root below: clean.
    pub fn open(&mut self) {
        self.opened += 1;
    }

    /// Mutates the span log but no digest root reaches it: finding.
    pub fn backdoor(&mut self) {
        self.opened += 1;
    }

    /// Not a mutator (shared receiver): never flagged.
    pub fn opened(&self) -> u64 {
        self.opened
    }
}

// simlint::digest_root — fixture replay fold
pub fn fold_digest(spans: &mut Spans) -> u64 {
    spans.open();
    spans.opened()
}
