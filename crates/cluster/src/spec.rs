//! Node and cluster specifications mirroring the paper's VM types.

use crate::calibration::Calibration;
use crate::topology::Topology;
use simkit::Scheduler;

/// A storage-server node (GCP `n2-custom-36-153600` in the paper).
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Logical cores (36 in the paper; informational).
    pub cores: usize,
    /// DRAM in GiB (150 in the paper; DAOS keeps metadata here since the
    /// VMs have no storage-class memory).
    pub dram_gib: usize,
    /// Locally-attached NVMe devices (16 logical devices, 6 TiB total).
    pub nvme_devices: usize,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            cores: 36,
            dram_gib: 150,
            nvme_devices: 16,
        }
    }
}

/// A benchmark-client node (GCP `n2-highcpu-32` in the paper).
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Logical cores (32); bounds the useful processes per node.
    pub cores: usize,
    /// DRAM in GiB (32).
    pub dram_gib: usize,
}

impl Default for ClientSpec {
    fn default() -> Self {
        ClientSpec {
            cores: 32,
            dram_gib: 32,
        }
    }
}

/// A whole deployment: servers, clients and the calibration to build
/// them with.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of storage-server nodes.
    pub servers: usize,
    /// Number of benchmark-client nodes.
    pub clients: usize,
    /// Server hardware description.
    pub server: ServerSpec,
    /// Client hardware description.
    pub client: ClientSpec,
    /// Model constants.
    pub cal: Calibration,
    /// Per-server NVMe speed multipliers for heterogeneous fleets
    /// (scale-out experiments mix device generations).  Index `s` scales
    /// server `s`'s device and pool bandwidths; servers beyond the end of
    /// the vector run at the calibrated speed (factor 1.0).
    pub server_speeds: Vec<f64>,
}

impl ClusterSpec {
    /// A deployment with `servers` storage nodes and `clients` benchmark
    /// nodes using the paper's hardware and default calibration.
    pub fn new(servers: usize, clients: usize) -> Self {
        ClusterSpec {
            servers,
            clients,
            server: ServerSpec::default(),
            client: ClientSpec::default(),
            cal: Calibration::default(),
            server_speeds: Vec::new(),
        }
    }

    /// Replace the calibration (used by ablation experiments).
    pub fn with_cal(mut self, cal: Calibration) -> Self {
        self.cal = cal;
        self
    }

    /// Give each server its own NVMe speed multiplier (heterogeneous
    /// fleet).  Servers past the end of `speeds` keep factor 1.0.
    pub fn with_server_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.server_speeds = speeds;
        self
    }

    /// NVMe speed multiplier for server `s`.
    pub fn server_speed(&self, s: usize) -> f64 {
        self.server_speeds.get(s).copied().unwrap_or(1.0)
    }

    /// Instantiate the hardware as scheduler resources.
    pub fn build(&self, sched: &mut Scheduler) -> Topology {
        Topology::build(self, sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_vms() {
        let s = ServerSpec::default();
        assert_eq!((s.cores, s.dram_gib, s.nvme_devices), (36, 150, 16));
        let c = ClientSpec::default();
        assert_eq!((c.cores, c.dram_gib), (32, 32));
    }

    #[test]
    fn build_produces_topology() {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 3).build(&mut sched);
        assert_eq!(topo.servers.len(), 2);
        assert_eq!(topo.clients.len(), 3);
    }
}
