//! Containers: isolated object namespaces with properties and snapshots.

use crate::class::ObjectClass;
use crate::data::ObjData;
use crate::oid::{Oid, OidAllocator};
use crate::pool::Layout;
use std::collections::BTreeMap;

/// Handle to a container within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u32);

/// Properties fixed at container create time.
#[derive(Debug, Clone)]
pub struct ContainerProps {
    /// Optional human-readable label.
    pub label: Option<String>,
    /// Default object class for Arrays created without an explicit one.
    pub array_class: ObjectClass,
    /// Default object class for Key-Values.
    pub kv_class: ObjectClass,
    /// Default Array chunk size in bytes.
    // simlint::dim(bytes)
    pub chunk_size: u64,
}

impl Default for ContainerProps {
    fn default() -> Self {
        ContainerProps {
            label: None,
            array_class: ObjectClass::SX,
            kv_class: ObjectClass::S1,
            chunk_size: 1 << 20,
        }
    }
}

/// One stored object: its placement and its payload.
#[derive(Debug, Clone)]
pub struct ObjectEntry {
    /// Placement across targets, fixed at create time.
    pub layout: Layout,
    /// KV or Array payload.
    pub data: ObjData,
}

/// A container: object namespace, OID allocator, snapshots.
#[derive(Debug)]
pub struct Container {
    /// User attributes (`daos cont set-attr`).
    pub attrs: std::collections::BTreeMap<String, Vec<u8>>,
    /// This container's id.
    pub id: ContainerId,
    /// Creation properties.
    pub props: ContainerProps,
    /// Live objects.
    pub objects: BTreeMap<Oid, ObjectEntry>,
    /// Snapshot epochs, ascending.
    pub snapshots: Vec<u64>,
    /// Epoch counter (advances on snapshot).
    pub next_epoch: u64,
    /// Open handle count (diagnostics; DAOS tracks these pool-side).
    pub open_handles: u32,
    /// Per-container OID allocator.
    pub alloc: OidAllocator,
}

impl Container {
    /// New empty container.
    pub fn new(id: ContainerId, props: ContainerProps) -> Self {
        Container {
            id,
            props,
            attrs: std::collections::BTreeMap::new(),
            objects: BTreeMap::new(),
            snapshots: Vec::new(),
            next_epoch: 1,
            open_handles: 0,
            alloc: OidAllocator::new(),
        }
    }

    /// Record a snapshot; returns its epoch.
    pub fn snapshot(&mut self) -> u64 {
        let e = self.next_epoch;
        self.next_epoch += 1;
        self.snapshots.push(e);
        e
    }

    /// Destroy a snapshot; true if it existed.
    pub fn snapshot_destroy(&mut self, epoch: u64) -> bool {
        let before = self.snapshots.len();
        self.snapshots.retain(|&e| e != epoch);
        self.snapshots.len() != before
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_monotonic() {
        let mut c = Container::new(ContainerId(0), ContainerProps::default());
        let e1 = c.snapshot();
        let e2 = c.snapshot();
        assert!(e2 > e1);
        assert_eq!(c.snapshots, vec![e1, e2]);
        assert!(c.snapshot_destroy(e1));
        assert!(!c.snapshot_destroy(e1));
        assert_eq!(c.snapshots, vec![e2]);
    }

    #[test]
    fn default_props_match_paper_defaults() {
        let p = ContainerProps::default();
        assert_eq!(p.chunk_size, 1 << 20, "1 MiB chunks as in the IOR runs");
        assert_eq!(p.array_class, ObjectClass::SX);
    }
}
