//! # lustre-sim — a Lustre-like distributed POSIX file system
//!
//! The baseline the paper deploys in §III-E: OSS nodes with one OST per
//! NVMe device, file striping, client extent locks, and — crucially — a
//! single centralised Metadata Service whose finite operation rate is
//! what separates Lustre from DAOS under metadata-heavy workloads
//! (Fig. 7).  Implements [`cluster::posix::PosixFs`] so the same
//! benchmark code drives Lustre and DFUSE mounts.

pub mod fs;

pub use fs::{LustreDataMode, LustreSystem, StripeOpts};
