//! End-to-end chaos swarm acceptance: a seeded swarm runs green over
//! both scenario families, and a deliberately planted invariant
//! violation is detected by the oracles, shrunk to a minimal schedule
//! by delta debugging, archived to JSON, and replayed byte-identically
//! from the archive.

use benchkit::chaos::{
    default_chaos_spec, parse_schedule, replay_archived, run_chaos_swarm, run_engine_swarm,
    run_planned_case, schedule_json, shrink_failing,
};
use benchkit::faulted::FaultedScenario;
use cluster::Calibration;
use daos_core::{OracleKind, TargetId};
use simkit::{FaultAction, FaultPlan, SimTime};

#[test]
fn seeded_swarm_is_green_over_both_families() {
    let mut spec = default_chaos_spec();
    spec.ops_per_proc = 8;
    let cal = Calibration::default();

    let faulted = run_chaos_swarm(&spec, &cal, &[1, 2]);
    assert_eq!(faulted.verdicts.len(), 2 * FaultedScenario::ALL.len());
    assert!(faulted.passed(), "faulted swarm:\n{}", faulted.render());
    // every case actually audited something
    for v in &faulted.verdicts {
        assert!(
            v.oracle.checked_kv + v.oracle.checked_extents > 0,
            "case {} seed {} audited nothing",
            v.scenario,
            v.seed
        );
    }

    let mut espec = benchkit::RunSpec::new(2, 1, 2);
    espec.ops_per_proc = 8;
    let engine = run_engine_swarm(&espec, &cal, &[5]);
    assert!(engine.passed(), "engine swarm:\n{}", engine.render());
}

/// A schedule that genuinely breaks the redundancy invariant: the
/// rebuild chain is armed once, by the first crash (rescan fires 2 ms
/// later), so a crash landing *after* the rescan leaves its target down
/// with nothing re-protecting the groups it belonged to.  Target 2.1
/// sits in a shard group of this workload's layout; the delayed
/// completions, the sibling crash the rebuild absorbs, and the restart
/// of an unrelated target are all shrinkable noise.
fn planted_plan() -> FaultPlan {
    let crash = |s: u16, t: u16| {
        FaultAction::TargetCrash(
            TargetId {
                server: s,
                target: t,
            }
            .pack(),
        )
    };
    let mut plan = FaultPlan::new();
    // trigger crash: arms the one-shot rebuild (rescan at +2 ms)
    plan.at(SimTime(0), crash(1, 0));
    // noise: recoverable weather and a sibling crash the rebuild absorbs
    plan.at(
        SimTime(100_000),
        FaultAction::DelayedCompletion {
            payload: 0,
            extra_ns: 50_000,
        },
    );
    plan.at(SimTime(500_000), crash(1, 1));
    // the stranded crash: lands after the rescan, never restarted,
    // never re-protected
    plan.at(SimTime(3_000_000), crash(2, 1));
    // more noise: a restart that heals one of the absorbed crashes
    plan.at(
        SimTime(4_000_000),
        FaultAction::TargetRestart(
            TargetId {
                server: 1,
                target: 1,
            }
            .pack(),
        ),
    );
    plan
}

#[test]
fn planted_violation_is_caught_shrunk_and_replayed_from_archive() {
    let mut spec = default_chaos_spec();
    // a long read phase (~50 ms simulated) keeps work in flight well
    // past the rebuild rescan, so the stranded crash actually fires
    spec.ops_per_proc = 64;
    let cal = Calibration::default();
    let scen = FaultedScenario::IorEasyRp2;
    let plan = planted_plan();

    // 1. detection: the redundancy oracle flags the stranded target
    let verdict = run_planned_case(&spec, scen, &cal, 0xBAD, plan.clone());
    assert!(!verdict.passed(), "planted violation must be caught");
    assert!(
        verdict
            .oracle
            .violations
            .iter()
            .any(|v| v.oracle == OracleKind::RedundancyRestored && v.detail.contains("2.1")),
        "expected a RedundancyRestored violation naming target 2.1:\n{}",
        verdict.oracle.render()
    );

    // 2. shrinking: delta debugging reduces the schedule to the minimal
    // failing pair (trigger crash + stranded crash)
    let outcome = shrink_failing(&spec, scen, &cal, &plan);
    assert!(outcome.reproduced, "shrinker must reproduce the failure");
    assert_eq!(
        outcome.plan.len(),
        2,
        "minimal repro is the crash pair, got:\n{}",
        outcome.plan.to_json()
    );
    assert!(outcome.removed >= 2, "noise events were removed");
    for ev in outcome.plan.events() {
        assert!(
            matches!(ev.action, FaultAction::TargetCrash(_)),
            "only crashes survive shrinking: {:?}",
            ev.action
        );
    }

    // 3. archive: JSON round-trips and the replay command reruns the
    // shrunken schedule byte-identically
    let direct = run_planned_case(&spec, scen, &cal, 0xBAD, outcome.plan.clone());
    assert!(!direct.passed(), "shrunken schedule still fails");
    let json = schedule_json(scen.name(), 0xBAD, &spec, &outcome.plan);
    let arch = parse_schedule(&json).expect("archive parses");
    assert_eq!(arch.plan.to_json(), outcome.plan.to_json());
    let replayed = replay_archived(&arch, &cal).expect("archive replays");
    assert_eq!(
        replayed.digest, direct.digest,
        "replay from archive is byte-identical"
    );
    assert!(!replayed.passed());
}
