//! Sibling crate of the hot-alloc fixture: reached from the engine's
//! hot root, so its allocation is reported — but at Warn severity,
//! because the file is outside the `crates/simkit/` prefix.

pub fn stamp(ev: u64) -> u64 {
    let tag = vec![ev];
    tag.len() as u64 + ev
}
