//! Runtime determinism harness: the enforcement half of the `simlint`
//! static pass.
//!
//! The simulator's contract is that identical inputs produce identical
//! schedules.  The lint forbids the usual ways of breaking that contract
//! (hash-ordered state, wall clocks, ambient RNG); this module *checks*
//! it end to end by executing every paper scenario twice from fresh
//! state and comparing the replay digests (order-sensitive FNV-1a over
//! the `(time, op)` completion stream, see [`simkit::trace::ReplayDigest`])
//! and the reported bandwidths, which must be bit-identical.

use crate::scenarios::{run_scenario_digest, RunSpec, Scenario};
use cluster::Calibration;

/// The two-run comparison for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReplay {
    pub scenario: Scenario,
    /// Replay digest of each run.
    pub digests: [u64; 2],
    /// (write, read) bandwidth in bytes/s of each run.
    pub bandwidths: [(f64, f64); 2],
}

impl ScenarioReplay {
    /// Did both runs replay identically? Bandwidths are compared with
    /// exact equality on purpose: determinism means bit-identical
    /// floats, not merely close ones.
    pub fn deterministic(&self) -> bool {
        self.digests[0] == self.digests[1] && self.bandwidths[0] == self.bandwidths[1]
    }
}

/// Run `scen` twice from fresh state and report both runs.
pub fn replay_scenario(spec: &RunSpec, scen: Scenario, cal: &Calibration) -> ScenarioReplay {
    let runs: Vec<(u64, (f64, f64))> = (0..2)
        .map(|_| {
            let (result, digest) = run_scenario_digest(spec, scen, cal);
            (digest, (result.write.bandwidth(), result.read.bandwidth()))
        })
        .collect();
    ScenarioReplay {
        scenario: scen,
        digests: [runs[0].0, runs[1].0],
        bandwidths: [runs[0].1, runs[1].1],
    }
}

/// Replay every paper scenario twice and report each comparison, in
/// [`Scenario::ALL`] order.  A scenario with differing digests or
/// bandwidths indicates a determinism regression somewhere under it.
pub fn replay_all(spec: &RunSpec, cal: &Calibration) -> Vec<ScenarioReplay> {
    Scenario::ALL
        .iter()
        .map(|&s| replay_scenario(spec, s, cal))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenario_replays_identically() {
        let mut spec = RunSpec::new(1, 1, 2);
        spec.ops_per_proc = 8;
        let r = replay_scenario(&spec, Scenario::IorDaos, &Calibration::default());
        assert!(r.deterministic(), "{r:?}");
        // The digest covers real completions, not the FNV offset basis.
        assert_ne!(r.digests[0], simkit::ReplayDigest::new().value());
    }

    #[test]
    fn different_scenarios_have_different_digests() {
        let mut spec = RunSpec::new(1, 1, 2);
        spec.ops_per_proc = 8;
        let cal = Calibration::default();
        let a = replay_scenario(&spec, Scenario::IorDaos, &cal);
        let b = replay_scenario(&spec, Scenario::IorDfs, &cal);
        assert_ne!(a.digests[0], b.digests[0]);
    }
}
