//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible across runs and across
//! parallel sweep points, so it uses a tiny self-contained generator
//! (SplitMix64) instead of a global or thread-local RNG.  Every benchmark
//! repetition derives its own seed, and every simulated process derives a
//! stream from the repetition seed, so results never depend on execution
//! order.

/// SplitMix64: a small, fast, well-distributed 64-bit generator.
///
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).  Not cryptographic; plenty for workload
/// jitter and synthetic data.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.  Distinct seeds give independent
    /// streams for practical purposes.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            // Avoid the all-zero fixed point of trivially-related seeds.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derive a child generator; used to give each simulated process its
    /// own stream from a run seed.
    #[inline]
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0xff51_afd7_ed55_8ccd);
        SplitMix64::new(s)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.  `n` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for the ranges used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_below(hi - lo)
    }

    /// Multiplicative jitter: a factor uniform in `[1 - amp, 1 + amp]`.
    ///
    /// Used to perturb per-op client overheads between repetitions so the
    /// three-repetition statistics have a non-zero standard deviation, as
    /// in the paper's figures.
    #[inline]
    pub fn jitter(&mut self, amp: f64) -> f64 {
        1.0 + amp * (2.0 * self.next_f64() - 1.0)
    }

    /// Fill a byte buffer with pseudo-random data (synthetic payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn fork_streams_are_independent_enough() {
        let mut root = SplitMix64::new(5);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
