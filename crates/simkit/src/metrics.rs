//! Metrics derived from the span log: log2-bucketed latency histograms,
//! critical-path attribution, and two deterministic exporters (Chrome
//! `trace_event` JSON for Perfetto, and a text critical-path report).
//!
//! Everything here is a pure function of a [`SpanLog`]: iteration is in
//! span-id order and all formatting is integer-based, so two identical
//! logs export byte-identical artefacts — the property the benchkit
//! span-determinism tests assert.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{SpanLog, SpanRecord};
use crate::time::SimTime;

/// A log2-bucketed histogram of nanosecond durations.
///
/// Bucket `i` holds values whose bit length is `i`: bucket 0 is exactly
/// `{0}`, bucket 1 is `{1}`, bucket 2 is `{2, 3}`, …, bucket 64 is
/// `[2^63, u64::MAX]`.  Quantiles report the bucket's inclusive upper
/// bound, so they are conservative (never under-estimate) and exact for
/// the 0 and 1 buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            max: 0,
            sum: 0,
        }
    }
}

/// Bucket index of `v`: its bit length (0 for `v == 0`).
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one duration.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`); exact `max()` for `q = 1.0`.  0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// (p50, p95, p99, p99.9, max) in nanoseconds.  The p99.9 column is
    /// the multi-tenant QoS tail the roadmap asks for: with log2
    /// buckets it is conservative like every other quantile, and it
    /// collapses onto `max` for histograms under 1000 samples.
    pub fn summary(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max,
        )
    }
}

/// Per-`(layer, op)` latency histograms over all *closed* spans.
pub fn layer_histograms(log: &SpanLog) -> BTreeMap<(&'static str, &'static str), Histogram> {
    let mut out: BTreeMap<(&'static str, &'static str), Histogram> = BTreeMap::new();
    for rec in log.records() {
        if rec.is_closed() {
            out.entry((rec.layer, rec.op))
                .or_default()
                .record(rec.duration_ns());
        }
    }
    out
}

/// Self-time attributed to one `(layer, op)` on the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathContribution {
    /// Layer of the spans this row aggregates.
    pub layer: &'static str,
    /// Operation within the layer.
    pub op: &'static str,
    /// Critical-path self-time (ns): wall time where a span of this kind
    /// was the deepest active span on the path that determined completion.
    // simlint::dim(ns)
    pub self_ns: u64,
}

/// Extract the critical path of every span tree and aggregate self-time
/// per `(layer, op)`, sorted by self-time descending (ties by name).
///
/// The walk runs backwards from each span's end: the child whose end is
/// latest (but not past the cursor) is on the path; the gap between that
/// child's end and the cursor is the parent's own time (queueing, fixed
/// delays, its share of transfers).  Children that lose a parallel race
/// contribute nothing — exactly the paper's attribution question ("which
/// layer bounds the plateau").
// simlint::allow(hot-alloc) — post-run trace reporting: runs once per run after the clock stops (hot reachability is a same-name call edge)
pub fn critical_path(log: &SpanLog) -> Vec<PathContribution> {
    let recs = log.records();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); recs.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, r) in recs.iter().enumerate() {
        if !r.is_closed() {
            continue;
        }
        if r.parent.is_none() {
            roots.push(i);
        } else {
            children[r.parent.0 as usize - 1].push(i);
        }
    }
    let mut acc: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
    for root in roots {
        attribute(root, recs, &children, &mut acc);
    }
    let mut out: Vec<PathContribution> = acc
        .into_iter()
        .map(|((layer, op), self_ns)| PathContribution { layer, op, self_ns })
        .collect();
    out.sort_by(|a, b| {
        b.self_ns
            .cmp(&a.self_ns)
            .then(a.layer.cmp(b.layer))
            .then(a.op.cmp(b.op))
    });
    out
}

// simlint::allow(hot-alloc) — post-run trace reporting: runs once per run after the clock stops (hot reachability is a same-name call edge)
fn attribute(
    idx: usize,
    recs: &[SpanRecord],
    children: &[Vec<usize>],
    acc: &mut BTreeMap<(&'static str, &'static str), u64>,
) {
    let s = &recs[idx];
    // Latest-ending child first; ties broken by start then id so the
    // walk is deterministic regardless of insertion order.
    let mut kids: Vec<usize> = children[idx].clone();
    kids.sort_by(|&a, &b| {
        (recs[b].end, recs[b].start, recs[b].id.0).cmp(&(recs[a].end, recs[a].start, recs[a].id.0))
    });
    let mut cursor = s.end;
    let mut self_ns = 0u64;
    for k in kids {
        let c = &recs[k];
        if c.end > cursor {
            // Covered by a sibling already on the path (parallel loser).
            continue;
        }
        self_ns += cursor.nanos_since(c.end);
        attribute(k, recs, children, acc);
        cursor = c.start.min(cursor);
        if cursor <= s.start {
            break;
        }
    }
    self_ns += cursor.nanos_since(s.start);
    *acc.entry((s.layer, s.op)).or_insert(0) += self_ns;
}

/// Total wall time attributed across all span trees: the sum of root
/// span durations (equals the sum of all critical-path self-times).
pub fn attributed_wall_ns(log: &SpanLog) -> u64 {
    log.records()
        .iter()
        .filter(|r| r.parent.is_none() && r.is_closed())
        .map(SpanRecord::duration_ns)
        .sum()
}

/// Format integer nanoseconds as microseconds with three decimals — the
/// `ts`/`dur` unit of the Chrome trace format — without ever touching
/// floating point, so output is byte-stable.
// simlint::allow(hot-alloc) — post-run trace formatting: runs once per span at export time (hot reachability is a same-name call edge)
pub(crate) fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Export the span log as Chrome `trace_event` JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper), loadable in Perfetto or
/// `chrome://tracing`.
///
/// Each span becomes a complete event (`ph: "X"`) with `pid` 0 and `tid`
/// set to the span's root id, so every I/O tree renders as its own track
/// with layers nested by time.  Fault marks become global instant events
/// (`ph: "i"`).  Output is deterministic: spans in id order, marks in
/// firing order, integer-based formatting throughout.
// simlint::allow(hot-alloc) — post-run trace export: runs once per run after the clock stops (hot reachability is a same-name call edge)
pub fn chrome_trace_json(log: &SpanLog) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for r in log.records() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}/{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{},\"args\":{{\"span\":{},\"parent\":{},\"bytes\":{},\"attempt\":{}}}}}",
            r.layer,
            r.op,
            r.layer,
            micros(r.start.as_nanos()),
            micros(r.duration_ns()),
            r.root.0,
            r.id.0,
            r.parent.0,
            r.bytes,
            r.attempt,
        );
    }
    for m in log.marks() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"fault {}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\
             \"pid\":0,\"tid\":{}}}",
            m.fault_id,
            micros(m.at.as_nanos()),
            m.span.0,
        );
    }
    out.push_str("]}");
    out
}

/// [`chrome_trace_json`] with the telemetry registry's Perfetto counter
/// tracks merged into the same `traceEvents` array: spans and fault
/// marks first, then one `ph: "C"` event per metric per window (see
/// [`crate::telemetry::Telemetry::counter_events_json`]).  Byte-stable
/// for identical inputs, like every exporter here.
// simlint::allow(hot-alloc) — post-run trace export: runs once per run after the clock stops (hot reachability is a same-name call edge)
pub fn chrome_trace_json_with_counters(
    log: &SpanLog,
    telemetry: &crate::telemetry::Telemetry,
) -> String {
    let mut out = chrome_trace_json(log);
    let counters = telemetry.counter_events_json();
    if !counters.is_empty() {
        debug_assert!(out.ends_with("]}"));
        out.truncate(out.len() - 2);
        if !out.ends_with('[') {
            out.push(',');
        }
        out.push_str(&counters);
        out.push_str("]}");
    }
    out
}

/// Render a text critical-path + latency report.
///
/// The top section attributes wall time per `(layer, op)` along the
/// critical path ("62.1% dfuse/write"); the bottom lists per-layer
/// latency quantiles.  Deterministic for identical logs.
// simlint::allow(hot-alloc) — post-run trace reporting: runs once per run after the clock stops (hot reachability is a same-name call edge)
pub fn critical_path_report(log: &SpanLog) -> String {
    let mut out = String::new();
    let total = attributed_wall_ns(log);
    let path = critical_path(log);
    let _ = writeln!(
        out,
        "critical path ({} attributed over {} spans):",
        SimTime::from_nanos(total),
        log.len()
    );
    for c in &path {
        let pct = if total > 0 {
            c.self_ns as f64 * 100.0 / total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:>5.1}%  {:<24} {}",
            pct,
            format!("{}/{}", c.layer, c.op),
            SimTime::from_nanos(c.self_ns)
        );
    }
    let hists = layer_histograms(log);
    if !hists.is_empty() {
        let _ = writeln!(out, "latency (p50/p95/p99/p99.9/max):");
        for ((layer, op), h) in &hists {
            let (p50, p95, p99, p999, max) = h.summary();
            let _ = writeln!(
                out,
                "  {:<24} n={:<7} {} / {} / {} / {} / {}",
                format!("{layer}/{op}"),
                h.count(),
                SimTime::from_nanos(p50),
                SimTime::from_nanos(p95),
                SimTime::from_nanos(p99),
                SimTime::from_nanos(p999),
                SimTime::from_nanos(max)
            );
        }
    }
    if !log.marks().is_empty() {
        let _ = writeln!(out, "faults: {} fired during the run", log.marks().len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    #[test]
    fn bucket_edges() {
        // The satellite-mandated edges: 0, 1, u64::MAX.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_edge_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.01), 0, "smallest bucket is exact");
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.summary(), (0, 0, 0, 0, 0));
    }

    #[test]
    fn p999_separates_from_p99_at_scale() {
        // 10_000 samples: 9_990 at ~1k ns, 9 at ~1M, 1 at ~1G.  p99
        // stays in the 1k bucket, p99.9 must climb to the 1M bucket and
        // max to the outlier — the tail the roadmap's QoS reporting
        // needs visible.
        let mut h = Histogram::new();
        for _ in 0..9_989 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        h.record(1_073_741_824);
        let (p50, _, p99, p999, max) = h.summary();
        assert_eq!(p50, bucket_upper(bucket_of(1_000)));
        assert_eq!(p99, bucket_upper(bucket_of(1_000)));
        assert_eq!(p999, bucket_upper(bucket_of(1_000_000)));
        assert_eq!(max, 1_073_741_824);
        assert!(p999 > p99);
    }

    #[test]
    fn quantiles_are_conservative() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300, 1000] {
            h.record(v);
        }
        // All land in buckets 7 (64..=127) and 9/10; p50 reports an
        // upper bound >= the true median and <= max.
        let p50 = h.quantile(0.5);
        assert!((200..=1000).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.mean(), 400);
    }

    fn demo_log() -> SpanLog {
        // root [0, 100]
        //   child A [10, 40]         (libdaos)
        //   child B [40, 90]         (libdaos) -> grandchild [50, 90] (target)
        let mut log = SpanLog::recording();
        let root = log.open(SimTime::from_nanos(0), SpanId::NONE, "dfuse", "write", 8, 0);
        let a = log.open(SimTime::from_nanos(10), root, "libdaos", "update", 8, 0);
        log.close(SimTime::from_nanos(40), a);
        let b = log.open(SimTime::from_nanos(40), root, "libdaos", "update", 8, 0);
        let g = log.open(SimTime::from_nanos(50), b, "target", "nvme_w", 8, 0);
        log.close(SimTime::from_nanos(90), g);
        log.close(SimTime::from_nanos(90), b);
        log.close(SimTime::from_nanos(100), root);
        log
    }

    #[test]
    fn critical_path_attribution() {
        let log = demo_log();
        let path = critical_path(&log);
        let get = |layer: &str, op: &str| {
            path.iter()
                .find(|c| c.layer == layer && c.op == op)
                .map(|c| c.self_ns)
                .unwrap_or(0)
        };
        // dfuse self: [0,10] gap + [90,100] tail = 20
        // libdaos self: A [10,40] = 30, B [40,50] before grandchild = 10
        // target self: [50,90] = 40
        assert_eq!(get("dfuse", "write"), 20);
        assert_eq!(get("libdaos", "update"), 40);
        assert_eq!(get("target", "nvme_w"), 40);
        assert_eq!(attributed_wall_ns(&log), 100);
        assert_eq!(path.iter().map(|c| c.self_ns).sum::<u64>(), 100);
    }

    #[test]
    fn parallel_loser_contributes_nothing() {
        let mut log = SpanLog::recording();
        let root = log.open(SimTime::from_nanos(0), SpanId::NONE, "ior", "write", 0, 0);
        let slow = log.open(SimTime::from_nanos(0), root, "a", "slow", 0, 0);
        let fast = log.open(SimTime::from_nanos(0), root, "b", "fast", 0, 0);
        log.close(SimTime::from_nanos(30), fast);
        log.close(SimTime::from_nanos(100), slow);
        log.close(SimTime::from_nanos(100), root);
        let path = critical_path(&log);
        assert!(
            !path.iter().any(|c| c.layer == "b" && c.self_ns > 0),
            "parallel loser must not appear on the path: {path:?}"
        );
        assert_eq!(path.iter().map(|c| c.self_ns).sum::<u64>(), 100);
    }

    #[test]
    fn chrome_export_is_deterministic_and_wellformed() {
        let a = chrome_trace_json(&demo_log());
        let b = chrome_trace_json(&demo_log());
        assert_eq!(a, b, "identical logs export byte-identically");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.ends_with("]}"));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"dfuse/write\""));
        assert!(a.contains("\"ts\":0.010"), "ns format to fractional us");
        // Balanced braces as a cheap well-formedness check.
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn report_mentions_dominant_layer() {
        let log = demo_log();
        let rep = critical_path_report(&log);
        assert!(rep.contains("critical path"));
        assert!(rep.contains("libdaos/update"));
        assert!(rep.contains("40.0%"), "{rep}");
        assert!(rep.contains("latency (p50/p95/p99/p99.9/max):"));
    }

    #[test]
    fn counter_tracks_merge_into_chrome_trace() {
        use crate::telemetry::Telemetry;
        let log = demo_log();
        let mut tel = Telemetry::enabled(50);
        let c = tel.counter("ops");
        tel.counter_add(c, SimTime::from_nanos(10), 2);
        let a = chrome_trace_json_with_counters(&log, &tel);
        let b = chrome_trace_json_with_counters(&log, &tel);
        assert_eq!(a, b, "merged export is byte-stable");
        assert!(a.contains("\"ph\":\"X\""), "spans survive the merge");
        assert!(a.contains("\"ph\":\"C\""), "counter tracks present");
        assert!(a.contains("\"name\":\"ops\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        // An empty registry leaves the plain export untouched.
        let plain = chrome_trace_json_with_counters(&log, &Telemetry::disabled());
        assert_eq!(plain, chrome_trace_json(&log));
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(10), "0.010");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(12_345_678), "12345.678");
    }
}
