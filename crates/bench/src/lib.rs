//! # bench — Criterion benches and the `repro` figure regenerator
//!
//! * `src/bin/repro.rs` regenerates every paper table/figure (see
//!   `repro --help`);
//! * `benches/` holds one Criterion bench per figure (reduced sweep
//!   points, measuring the simulation engine itself) plus micro-benches
//!   of the hot paths (fair-share solve, placement, erasure coding) and
//!   the `engine_events_per_sec` trajectory bench over the seeded
//!   workloads in [`engine_bench`].

pub mod engine_bench;

/// Re-exported so benches share one source of sweep definitions.
pub use benchkit::figures;
