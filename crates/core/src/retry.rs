//! Client-side retry/timeout/backoff, implemented once for every
//! interface layer.
//!
//! Real DAOS clients (and the POSIX/Ceph baselines) survive transient
//! faults — an engine that crashed and was excluded, an RPC that timed
//! out during a brownout — by retrying against a refreshed pool map with
//! exponential backoff.  This module is the single implementation of
//! that machinery: a [`RetryPolicy`] describing the bounds, a
//! [`RetryExec`] that applies it to any fallible operation returning a
//! cost [`Step`], and a [`Retriable`] classification trait implemented
//! by each layer's error type.
//!
//! Determinism: backoff jitter comes from a seeded
//! [`SplitMix64`](simkit::SplitMix64) stream owned by the executor, and
//! "time" spent waiting is charged as [`Step::delay`] *prepended to the
//! successful attempt's op chain* — the simulated schedule, and hence
//! the replay digest, depends only on the seed and the failure plan.
//! In this simulator a failed attempt surfaces synchronously from pool
//! state, so the per-op timeout is not a detection mechanism: it is the
//! simulated time the client spent waiting before declaring the attempt
//! dead, charged to the penalty delay.
//!
//! The retry loop counts attempts against `max_attempts` and returns the
//! failing match arm's own error on every exit path (no held-then-
//! unwrapped "last error"); the `unguarded-retry-loop` simlint rule
//! rejects unbounded `loop`/`while` retry constructs anywhere in the
//! workspace, and the flow pass's `panic-path` rule keeps the executor
//! and everything reachable from it panic-free.

use simkit::{SimTime, SplitMix64, Step, Telemetry};

/// Classification of an error as transient (worth retrying) or terminal.
pub trait Retriable {
    /// True when a retry against refreshed state could succeed.
    fn is_retriable(&self) -> bool;
}

/// Bounds on the retry machinery.  [`RetryPolicy::none`] — a single
/// attempt, no waiting — is the default everywhere, so layers that never
/// configure a policy behave exactly as before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included); minimum 1.
    pub max_attempts: u32,
    /// Simulated time a failed attempt costs before the client gives up
    /// on it (RPC timeout).
    // simlint::dim(ns)
    pub op_timeout_ns: u64,
    /// Base backoff before retry `n` (doubles each retry).
    // simlint::dim(ns)
    pub backoff_base_ns: u64,
    /// Ceiling on a single backoff wait.
    // simlint::dim(ns)
    pub backoff_cap_ns: u64,
    /// Multiplicative jitter amplitude on each backoff (0.0 = none,
    /// 0.25 = uniform in `[0.75, 1.25]×`), drawn from the executor's
    /// seeded stream.
    pub jitter: f64,
    /// Consecutive failed attempts that open the circuit breaker; while
    /// open, each operation gets a single fail-fast probe and the first
    /// success closes it again.
    pub circuit_break_after: u32,
}

impl RetryPolicy {
    /// Single attempt, no timeout charge, no backoff: behaviourally
    /// identical to calling the operation directly.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            op_timeout_ns: 0,
            backoff_base_ns: 0,
            backoff_cap_ns: 0,
            jitter: 0.0,
            circuit_break_after: u32::MAX,
        }
    }

    /// True when this policy can never change an operation's behaviour.
    pub fn is_none(&self) -> bool {
        self.max_attempts <= 1
    }
}

impl Default for RetryPolicy {
    /// The faulted-scenario policy: 4 attempts, 2 ms op timeout, 250 µs
    /// base backoff capped at 4 ms with ±25 % jitter, circuit break
    /// after 8 consecutive failures.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            op_timeout_ns: 2_000_000,
            backoff_base_ns: 250_000,
            backoff_cap_ns: 4_000_000,
            jitter: 0.25,
            circuit_break_after: 8,
        }
    }
}

/// Counters accumulated by a [`RetryExec`] across operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts issued (first tries included).
    pub attempts: u64,
    /// Re-issued attempts (attempts minus first tries).
    pub retries: u64,
    /// Failed attempts that charged the op timeout.
    pub timeouts: u64,
    /// Times the circuit breaker opened.
    pub circuit_opens: u64,
    /// Operations that exhausted their attempts on retriable errors.
    pub gave_up: u64,
}

impl RetryStats {
    /// Fold another executor's counters into this one (per-layer
    /// aggregation in reports).
    pub fn merge(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.circuit_opens += other.circuit_opens;
        self.gave_up += other.gave_up;
    }

    /// Publish the counters into a telemetry registry as `daos.retry.*`
    /// totals recorded at `at`.  The per-window *time series* of retry
    /// activity already flows through the engine's span-open counters
    /// (`span.retry.backoff`); this records the authoritative end-of-run
    /// totals — including circuit-breaker opens and exhausted ops, which
    /// never surface as spans — in the same registry the run report and
    /// SLO rules read.  No-op on a disabled registry.
    pub fn publish(&self, tel: &mut Telemetry, at: SimTime) {
        if !tel.is_enabled() {
            return;
        }
        for (name, value) in [
            ("daos.retry.attempts", self.attempts),
            ("daos.retry.retries", self.retries),
            ("daos.retry.timeouts", self.timeouts),
            ("daos.retry.circuit_opens", self.circuit_opens),
            ("daos.retry.gave_up", self.gave_up),
        ] {
            let id = tel.counter(name);
            tel.counter_add(id, at, value);
        }
    }
}

/// Applies a [`RetryPolicy`] to fallible operations, accumulating
/// [`RetryStats`] and the deterministic backoff stream.
#[derive(Debug, Clone)]
pub struct RetryExec {
    policy: RetryPolicy,
    rng: SplitMix64,
    stats: RetryStats,
    consecutive_failures: u32,
    circuit_open: bool,
}

impl RetryExec {
    /// Executor with `policy`; `seed` drives the backoff jitter stream.
    pub fn new(policy: RetryPolicy, seed: u64) -> RetryExec {
        RetryExec {
            policy,
            rng: SplitMix64::new(seed ^ 0x7e7a_11c3),
            stats: RetryStats::default(),
            consecutive_failures: 0,
            circuit_open: false,
        }
    }

    /// Passthrough executor ([`RetryPolicy::none`]).
    pub fn disabled() -> RetryExec {
        RetryExec::new(RetryPolicy::none(), 0)
    }

    /// The policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> &RetryStats {
        &self.stats
    }

    /// True while the circuit breaker is open (fail-fast probing).
    pub fn circuit_open(&self) -> bool {
        self.circuit_open
    }

    /// Backoff before retry number `retry` (1-based): jittered
    /// `min(cap, base × 2^(retry-1))`.
    fn backoff_ns(&mut self, retry: u32) -> u64 {
        let base = self.policy.backoff_base_ns;
        if base == 0 {
            return 0;
        }
        let exp = base
            .saturating_mul(1u64 << (retry - 1).min(32))
            .min(self.policy.backoff_cap_ns.max(base));
        (exp as f64 * self.rng.jitter(self.policy.jitter)) as u64
    }

    fn note_failure(&mut self) {
        self.consecutive_failures += 1;
        if !self.circuit_open && self.consecutive_failures >= self.policy.circuit_break_after {
            self.circuit_open = true;
            self.stats.circuit_opens += 1;
        }
    }

    fn note_success(&mut self) {
        self.consecutive_failures = 0;
        self.circuit_open = false;
    }

    /// Run `op` under the policy.  Retriable failures are re-attempted up
    /// to `max_attempts` times (one fail-fast probe while the circuit is
    /// open); each failed attempt charges the op timeout plus a jittered
    /// exponential backoff, prepended as a delay to the successful
    /// attempt's op chain.  Terminal errors and exhausted retries return
    /// the last error.
    // simlint::retry_entry — closure executor: callers' panics fire mid-retry
    pub fn run<T, E: Retriable>(
        &mut self,
        mut op: impl FnMut() -> Result<(T, Step), E>,
    ) -> Result<(T, Step), E> {
        let allowed = if self.circuit_open {
            1
        } else {
            self.policy.max_attempts.max(1)
        };
        let mut penalty_ns: u64 = 0;
        let mut attempt: u32 = 0;
        // Every exit path owns its error: the terminal return hands back
        // the match's own `e`, so there is no held-then-unwrapped
        // `last_err` and no panicking extraction on any path.
        loop {
            self.stats.attempts += 1;
            if attempt > 0 {
                self.stats.retries += 1;
            }
            match op() {
                Ok((value, step)) => {
                    self.note_success();
                    // Retried work is wrapped in a retry span carrying the
                    // attempt ordinal, so traces show the timeout/backoff
                    // penalty and the re-issued op under the originating
                    // span (retry storms become visible in the tree).
                    let step = if penalty_ns > 0 {
                        Step::span_attempt(
                            "retry",
                            "backoff",
                            0,
                            attempt,
                            Step::delay(penalty_ns).then(step),
                        )
                    } else {
                        step
                    };
                    return Ok((value, step));
                }
                Err(e) => {
                    self.note_failure();
                    if !e.is_retriable() {
                        return Err(e);
                    }
                    self.stats.timeouts += 1;
                    penalty_ns = penalty_ns
                        .saturating_add(self.policy.op_timeout_ns)
                        .saturating_add(self.backoff_ns(attempt + 1));
                    attempt += 1;
                    if attempt == allowed || self.circuit_open {
                        self.stats.gave_up += 1;
                        return Err(e);
                    }
                }
            }
        }
    }

    /// [`RetryExec::run`] for operations that return only a [`Step`].
    // simlint::retry_entry — closure executor: callers' panics fire mid-retry
    pub fn run_step<E: Retriable>(
        &mut self,
        mut op: impl FnMut() -> Result<Step, E>,
    ) -> Result<Step, E> {
        self.run(|| op().map(|s| ((), s))).map(|((), s)| s)
    }
}

impl Retriable for crate::DaosError {
    fn is_retriable(&self) -> bool {
        // BadChecksum is transient in principle — a scrub repair or a
        // rewrite may heal the extent between attempts — and when
        // nothing heals it the retry budget exhausts and the failure
        // surfaces loudly; bad bytes are never served either way.
        matches!(
            self,
            crate::DaosError::Timeout
                | crate::DaosError::TargetDown
                | crate::DaosError::BadChecksum
                | crate::DaosError::Retriable
        )
    }
}

impl Retriable for cluster::posix::FsError {
    fn is_retriable(&self) -> bool {
        // `Unavailable` is the transient face of a POSIX-layer fault
        // (OST down, FUSE channel saturated); everything else is a
        // namespace/semantic error retries cannot fix.
        matches!(self, cluster::posix::FsError::Unavailable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum E {
        Transient,
        Fatal,
    }
    impl Retriable for E {
        fn is_retriable(&self) -> bool {
            matches!(self, E::Transient)
        }
    }

    fn flaky(failures: u32) -> impl FnMut() -> Result<(u32, Step), E> {
        let mut left = failures;
        move || {
            if left > 0 {
                left -= 1;
                Err(E::Transient)
            } else {
                Ok((7, Step::delay(10)))
            }
        }
    }

    fn total_delay_ns(step: &Step) -> u64 {
        match step {
            Step::Noop | Step::Transfer { .. } => 0,
            Step::Delay(ns) => *ns,
            Step::Seq(steps) | Step::Par(steps) => steps.iter().map(total_delay_ns).sum(),
            Step::Span { inner, .. } => total_delay_ns(inner),
        }
    }

    #[test]
    fn none_policy_is_passthrough() {
        let mut x = RetryExec::disabled();
        assert_eq!(x.run(flaky(0)).unwrap().0, 7);
        assert_eq!(x.run(flaky(1)).unwrap_err(), E::Transient);
        assert_eq!(x.stats().retries, 0);
        assert_eq!(x.stats().attempts, 2);
    }

    #[test]
    fn retries_until_success_and_charges_penalty() {
        let mut x = RetryExec::new(RetryPolicy::default(), 42);
        let (v, step) = x.run(flaky(2)).unwrap();
        assert_eq!(v, 7);
        assert_eq!(x.stats().attempts, 3);
        assert_eq!(x.stats().retries, 2);
        assert_eq!(x.stats().timeouts, 2);
        assert_eq!(x.stats().gave_up, 0);
        // two failed attempts: 2 × op timeout + two backoffs ≥ base
        let penalty = total_delay_ns(&step) - 10;
        assert!(
            penalty >= 2 * 2_000_000 + 2 * (250_000 * 3 / 4),
            "{penalty}"
        );
    }

    #[test]
    fn exhaustion_returns_last_error_and_counts_gave_up() {
        let mut x = RetryExec::new(RetryPolicy::default(), 1);
        assert_eq!(x.run(flaky(100)).unwrap_err(), E::Transient);
        assert_eq!(x.stats().attempts, 4);
        assert_eq!(x.stats().gave_up, 1);
    }

    #[test]
    fn fatal_errors_short_circuit() {
        let mut x = RetryExec::new(RetryPolicy::default(), 1);
        let r: Result<(u32, Step), E> = x.run(|| Err(E::Fatal));
        assert_eq!(r.unwrap_err(), E::Fatal);
        assert_eq!(x.stats().attempts, 1);
        assert_eq!(x.stats().retries, 0);
    }

    #[test]
    fn circuit_opens_then_probes_then_closes() {
        let policy = RetryPolicy {
            max_attempts: 2,
            circuit_break_after: 4,
            ..RetryPolicy::default()
        };
        let mut x = RetryExec::new(policy, 9);
        // two operations × two failed attempts = 4 consecutive failures
        assert!(x.run(flaky(100)).is_err());
        assert!(x.run(flaky(100)).is_err());
        assert!(x.circuit_open());
        assert_eq!(x.stats().circuit_opens, 1);
        // while open: single fail-fast probe per operation
        let before = x.stats().attempts;
        assert!(x.run(flaky(100)).is_err());
        assert_eq!(x.stats().attempts, before + 1);
        // a success closes it
        assert_eq!(x.run(flaky(0)).unwrap().0, 7);
        assert!(!x.circuit_open());
        assert_eq!(x.stats().circuit_opens, 1, "no reopen without failures");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let run = |seed| {
            let mut x = RetryExec::new(RetryPolicy::default(), seed);
            let (_, step) = x.run(flaky(3)).unwrap();
            total_delay_ns(&step)
        };
        assert_eq!(run(5), run(5), "same seed, same schedule");
        assert_ne!(run(5), run(6), "jitter streams differ by seed");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut x = RetryExec::new(policy, 0);
        assert_eq!(x.backoff_ns(1), 250_000);
        assert_eq!(x.backoff_ns(2), 500_000);
        assert_eq!(x.backoff_ns(3), 1_000_000);
        assert_eq!(x.backoff_ns(10), 4_000_000, "capped");
    }

    #[test]
    fn daos_error_classification() {
        use crate::DaosError;
        assert!(DaosError::Timeout.is_retriable());
        assert!(DaosError::TargetDown.is_retriable());
        assert!(DaosError::Retriable.is_retriable());
        assert!(
            DaosError::BadChecksum.is_retriable(),
            "a scrub repair may heal the extent between attempts"
        );
        assert!(!DaosError::Unavailable.is_retriable(), "data loss is final");
        assert!(!DaosError::NoSuchKey.is_retriable());
    }
}
