//! The rebalance scenario family: live membership changes under load.
//!
//! Each scenario runs a healthy write phase, installs a fault plan at
//! the phase boundary, then drives the read phase through a world that
//! maps membership events onto the elastic-pool API of
//! [`DaosSystem`]:
//!
//! * [`FaultAction::AddServer`] → [`DaosSystem::add_server`] (the
//!   deployment keeps [`SPARE_SERVERS`] unused hardware nodes to grow
//!   into) followed by a [`DaosSystem::rebalance_plan`];
//! * [`FaultAction::DrainServer`] → [`DaosSystem::drain_server`] plus a
//!   plan;
//! * planned moves ship as throttled [`DaosSystem::migration_wave`]s
//!   that compete with the foreground reads through the same fairshare
//!   NIC/engine/NVMe resources;
//! * [`FaultAction::TargetCrash`] → [`DaosSystem::crash_target`] and
//!   the crash → detect → rebuild chain of the faulted family.  A crash
//!   mid-migration invalidates the stale moves (the wave emitter drops
//!   them) and the rebuild re-protects what the crash degraded;
//! * when the pending queue drains, [`DaosSystem::finish_rebalance`]
//!   retires drained targets and promotes reintegrating ones, then one
//!   repair rescan re-protects anything a dropped move left behind.
//!
//! The chaos surface ([`rebalance_space`]) extends the faulted family's
//! with the three rebalance dimensions (server adds, server drains,
//! crashes aimed at migration sources/destinations), and the verdict
//! machinery — durability/redundancy oracles, double-run determinism,
//! schedule archiving, ddmin shrinking — is shared with
//! [`crate::chaos`].

use crate::chaos::{determinism_violation, ChaosVerdict, SwarmReport};
use crate::driver::{run_phase, start_stagger_ns, PhaseResult};
use crate::faulted::PlanSource;
use crate::scenarios::{exec, make_sched, RunSpec};
use cluster::bench::{Phase, ProcWorkload};
use cluster::{Calibration, ClusterSpec};
use daos_core::{
    ContainerProps, DaosSystem, DataMode, MigrationProgress, ObjectClass, OracleReport,
    RebuildReport, RetryPolicy, RetryStats, TargetId,
};
use ior_bench::{AccessOrder, Ior, IorBackend, IorConfig};
use simkit::{
    generate, run, shrink, ChaosConfig, ChaosSpace, FaultAction, FaultEvent, FaultPlan, OpId,
    Scheduler, ShrinkOutcome, SimTime, Step, World,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Spare hardware nodes every rebalance deployment keeps beyond the
/// deployed servers — [`FaultAction::AddServer`] grows into them.
pub const SPARE_SERVERS: usize = 2;

/// Moves shipped per migration wave: the throttle that keeps background
/// migration from starving foreground traffic (each wave is one
/// parallel step; the next is emitted only when it completes).
const WAVE_MOVES: usize = 8;

/// Crash-to-rebuild detection delay, same constant as the faulted
/// family (RAS propagation + pool-map distribution).
const REBUILD_DETECT_NS: u64 = 2_000_000;

/// Marker op ids, far above any process index and disjoint from the
/// faulted family's `1 << 40` block.
const OP_WAVE: OpId = OpId(1 << 41);
const OP_REBUILD_TRIGGER: OpId = OpId((1 << 41) + 1);
const OP_REBUILD_DONE: OpId = OpId((1 << 41) + 2);
const OP_RETIRE_REPAIR: OpId = OpId((1 << 41) + 3);

/// The live-rebalance benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RebalanceScenario {
    /// IOR easy (file-per-process, sequential) on `RP_2` Arrays.
    IorEasyRp2,
    /// IOR hard (shared file, random offsets) on `EC_2P1` Arrays.
    IorHardEc2p1,
    /// IOR easy on unreplicated `S1` Arrays: no redundancy, so a crash
    /// aimed at a migration destination genuinely loses extents — the
    /// planted-violation scenario the swarm's oracles must catch.
    IorEasyS1,
}

impl RebalanceScenario {
    /// Every rebalance scenario (archive name resolution).
    pub const ALL: [RebalanceScenario; 3] = [
        RebalanceScenario::IorEasyRp2,
        RebalanceScenario::IorHardEc2p1,
        RebalanceScenario::IorEasyS1,
    ];

    /// The swarm subset: redundant classes that must stay green under
    /// the full rebalance fault surface.
    pub const SWARM: [RebalanceScenario; 2] = [
        RebalanceScenario::IorEasyRp2,
        RebalanceScenario::IorHardEc2p1,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RebalanceScenario::IorEasyRp2 => "rebalance/IOR-easy/RP_2",
            RebalanceScenario::IorHardEc2p1 => "rebalance/IOR-hard/EC_2P1",
            RebalanceScenario::IorEasyS1 => "rebalance/IOR-easy/S1",
        }
    }
}

/// The sweep point the rebalance swarm runs at: the chaos shape (small
/// ops, `Full` data mode materialises every byte) over four deployed
/// servers with spare hardware to grow into.
pub fn default_rebalance_spec() -> RunSpec {
    crate::chaos::default_chaos_spec()
}

/// The rebalance fault surface for `spec`: the faulted family's full
/// surface (whole-server crash groups, disks, NICs, delayed
/// completions) plus the three rebalance dimensions — spare-server
/// adds, deployed-server drains, and crash groups aimed at migration
/// traffic (one deployed server that holds sources/destinations, one
/// spare whose freshly added targets may be mid-reintegration).
///
/// Resource ids are enumerated from a scratch build of the **grown**
/// topology (`servers + SPARE_SERVERS`), matching the real run's
/// registration order exactly.
pub fn rebalance_space(spec: &RunSpec, cal: &Calibration) -> ChaosSpace {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(spec.servers + SPARE_SERVERS, spec.client_nodes)
        .with_cal(cal.clone())
        .build(&mut sched);
    let mut space = crate::chaos::engine_space(&topo);
    let group = |server: u16| -> Vec<u64> {
        (0..cal.targets_per_server as u16)
            .map(|target| TargetId { server, target }.pack())
            .collect()
    };
    space.crash_groups = (0..spec.servers as u16).map(group).collect();
    space.delay_payloads = (0..spec.servers as u64).collect();
    space.add_servers = (spec.servers..spec.servers + SPARE_SERVERS)
        .map(|s| s as u64)
        .collect();
    // at most half the deployed servers are drainable, so redundant
    // classes always have evacuation destinations
    space.drain_servers = (0..(spec.servers / 2).max(1)).map(|s| s as u64).collect();
    space.migration_crash_groups = vec![
        group(spec.servers as u16 - 1), // a deployed migration source/dest
        group(spec.servers as u16),     // the first spare, mid-reintegration
    ];
    space
}

/// Result of one rebalance run.
#[derive(Debug, Clone)]
pub struct RebalanceRunReport {
    /// Which scenario ran.
    pub scenario: RebalanceScenario,
    /// Healthy write phase.
    pub write: PhaseResult,
    /// Read phase under membership churn.
    pub read: PhaseResult,
    /// Client-side retry counters.
    pub retry: RetryStats,
    /// Reads that failed terminally and were tolerated (only possible
    /// for the unreplicated [`RebalanceScenario::IorEasyS1`]).
    pub unavailable_reads: usize,
    /// Crash-triggered rebuild outcome, if a crash fired.
    pub rebuild: Option<RebuildReport>,
    /// Shard moves planned across every replanning pass.
    pub moves_planned: usize,
    /// Migration waves shipped.
    pub waves: usize,
    /// Migration engine progress at quiescence.
    pub migration: MigrationProgress,
    /// Pool-map version when the run ended (counts every membership
    /// transition; the healthy deployment ends the write phase at 0).
    pub map_version: u64,
    /// Post-quiescence invariant audit (durability + redundancy), when
    /// requested.
    pub oracles: Option<OracleReport>,
    /// End-to-end checksum activity at quiescence (nonzero only when
    /// the schedule planted bit rot).
    pub csum: daos_core::CsumStats,
    /// Unified telemetry report (only with [`RebalanceOpts::telemetry`]),
    /// evaluated against [`crate::runreport::faulted_slo_rules`].
    pub run_report: Option<crate::runreport::RunReport>,
    /// Replay digest over completions and fired faults.
    pub digest: u64,
}

/// Options for [`run_rebalance_with`].
#[derive(Debug, Clone)]
pub struct RebalanceOpts {
    /// The failure schedule (phase-relative when `Fixed`).
    pub plan: PlanSource,
    /// Data mode (`Full` for oracle runs).
    pub mode: DataMode,
    /// Record acked writes and audit every oracle after quiescence.
    pub oracles: bool,
    /// Enable spans, the telemetry registry and a windowed monitor, and
    /// collect a unified [`crate::runreport::RunReport`] into the
    /// result.  Observers only: the digest must match an untelemetered
    /// run's exactly.
    pub telemetry: bool,
}

impl Default for RebalanceOpts {
    fn default() -> Self {
        RebalanceOpts {
            plan: PlanSource::Builtin,
            mode: DataMode::Sized,
            oracles: false,
            telemetry: false,
        }
    }
}

/// What the rebalance driver observed during the churn phase.
struct RebalanceOutcome {
    rebuild: Option<RebuildReport>,
    crash_at: Option<SimTime>,
    moves_planned: usize,
    waves: usize,
}

/// The rebalance-phase world: op chaining plus the membership state
/// machine (add/drain → plan → waves → finish → repair) and the crash →
/// detect → rebuild chain.
struct RebalanceWorld<'a, W: ProcWorkload> {
    wl: &'a mut W,
    daos: &'a Rc<RefCell<DaosSystem>>,
    next_idx: Vec<usize>,
    inflight: Vec<usize>,
    ops_per_proc: usize,
    remaining: usize,
    last_end: SimTime,
    /// A wave is in flight; completions (not events) advance migration.
    migrating: bool,
    out: RebalanceOutcome,
}

impl<W: ProcWorkload> RebalanceWorld<'_, W> {
    /// Replan after a membership change and start pumping waves unless
    /// one is already in flight (it will pick up the new pending moves).
    fn replan_and_pump(&mut self, sched: &mut Scheduler) {
        let report = self.daos.borrow_mut().rebalance_plan();
        self.out.moves_planned += report.moves_planned;
        if !self.migrating {
            self.pump(sched);
        }
    }

    /// Ship the next migration wave, or — when the pending queue has
    /// drained — complete the rebalance: retire/promote membership and
    /// run one repair rescan so nothing a dropped move left behind
    /// stays unprotected.
    fn pump(&mut self, sched: &mut Scheduler) {
        let step = self.daos.borrow_mut().migration_wave(WAVE_MOVES);
        match step {
            Some(wave) => {
                self.migrating = true;
                self.out.waves += 1;
                sched.submit(wave, OP_WAVE);
            }
            None => {
                self.migrating = false;
                let movement = {
                    let mut d = self.daos.borrow_mut();
                    d.finish_rebalance();
                    let (_, movement) = d.rebuild();
                    movement
                };
                sched.submit(movement, OP_RETIRE_REPAIR);
            }
        }
    }

    /// Membership/crash events may name a spare server before it has
    /// been added; state changes for ranks outside the current pool are
    /// no-ops.
    fn rank_exists(&self, t: TargetId) -> bool {
        (t.server as usize) < self.daos.borrow().server_count()
    }
}

impl<W: ProcWorkload> World for RebalanceWorld<'_, W> {
    fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler) {
        if op == OP_WAVE {
            self.pump(sched);
            return;
        }
        if op == OP_RETIRE_REPAIR || op == OP_REBUILD_DONE {
            return;
        }
        if op == OP_REBUILD_TRIGGER {
            let (report, movement) = self.daos.borrow_mut().rebuild();
            self.out.rebuild = Some(report);
            sched.submit(movement, OP_REBUILD_DONE);
            return;
        }
        let proc = op.0 as usize;
        self.last_end = sched.now();
        self.inflight[proc] -= 1;
        let idx = self.next_idx[proc];
        if idx < self.ops_per_proc {
            self.next_idx[proc] += 1;
            self.inflight[proc] += 1;
            let step = self.wl.op(proc, idx);
            sched.submit(step, OpId(proc as u64));
        } else if self.inflight[proc] == 0 {
            self.remaining -= 1;
        }
    }

    // simlint::panic_root — fault handler: must never panic
    fn on_fault(&mut self, event: &FaultEvent, sched: &mut Scheduler) {
        match event.action {
            FaultAction::AddServer { .. } => {
                self.daos.borrow_mut().add_server(sched);
                self.replan_and_pump(sched);
            }
            FaultAction::DrainServer { server } => {
                let rank = TargetId {
                    server: server as u16,
                    target: 0,
                };
                if self.rank_exists(rank) {
                    self.daos.borrow_mut().drain_server(server as u16);
                    self.replan_and_pump(sched);
                }
            }
            FaultAction::TargetCrash(payload) => {
                let t = TargetId::unpack(payload);
                if self.rank_exists(t) {
                    self.daos.borrow_mut().crash_target(t);
                    if self.out.crash_at.is_none() {
                        self.out.crash_at = Some(sched.now());
                        sched.submit(Step::delay(REBUILD_DETECT_NS), OP_REBUILD_TRIGGER);
                    }
                }
            }
            FaultAction::TargetRestart(payload) => {
                let t = TargetId::unpack(payload);
                if self.rank_exists(t) {
                    self.daos.borrow_mut().restart_target(t);
                }
            }
            FaultAction::DelayedCompletion { payload, extra_ns } => {
                self.daos
                    .borrow_mut()
                    .set_extra_delay(payload as u16, extra_ns);
            }
            FaultAction::BitRot { locus, shard } => {
                // silent: only a verified read (or the faulted family's
                // scrubber) will find the damage
                self.daos.borrow_mut().apply_bit_rot(locus, shard);
            }
            // capacity scaling is applied by the engine before dispatch
            FaultAction::SlowDisk { .. } | FaultAction::NicBrownout { .. } => {}
        }
    }
}

/// Like the faulted family's phase runner, with the rebalance world.
fn run_rebalance_phase<W: ProcWorkload>(
    sched: &mut Scheduler,
    wl: &mut W,
    daos: &Rc<RefCell<DaosSystem>>,
) -> (PhaseResult, RebalanceOutcome) {
    let procs = wl.procs();
    let ops_per_proc = wl.ops_per_proc();
    let t0 = sched.now();
    let qd = wl.queue_depth().max(1);
    let initial = qd.min(ops_per_proc);
    let mut world = RebalanceWorld {
        wl,
        daos,
        next_idx: vec![initial; procs],
        inflight: vec![initial; procs],
        ops_per_proc,
        remaining: procs,
        last_end: t0,
        migrating: false,
        out: RebalanceOutcome {
            rebuild: None,
            crash_at: None,
            moves_planned: 0,
            waves: 0,
        },
    };
    for p in 0..procs {
        let stagger = start_stagger_ns(p);
        for i in 0..initial {
            let step = world.wl.op(p, i);
            sched.submit_after(stagger, step, OpId(p as u64));
        }
    }
    run(sched, &mut world);
    assert_eq!(world.remaining, 0, "all processes finished");
    let t_end = world.last_end;
    let total_ops = procs * ops_per_proc;
    (
        PhaseResult {
            bytes: total_ops as f64 * world.wl.bytes_per_op(),
            seconds: t_end.secs_since(t0),
            ops: total_ops,
        },
        world.out,
    )
}

/// The builtin schedule: one server add and one server drain early in
/// the read phase — a plain grow-and-shrink rebalance with no weather.
fn builtin_plan(spec: &RunSpec, t0: SimTime) -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.at(
        SimTime(t0.0 + 1_000_000),
        FaultAction::AddServer {
            server: spec.servers as u64,
        },
    );
    plan.at(
        SimTime(t0.0 + 2_000_000),
        FaultAction::DrainServer { server: 0 },
    );
    plan
}

/// Execute one rebalance scenario under explicit [`RebalanceOpts`]:
/// healthy write phase, fault plan installed at the phase boundary,
/// read phase under membership churn, post-quiescence audit.
// simlint::digest_root — rebalance replay digest entry
pub fn run_rebalance_with(
    spec: &RunSpec,
    scen: RebalanceScenario,
    cal: &Calibration,
    opts: &RebalanceOpts,
) -> RebalanceRunReport {
    let mut sched = make_sched(spec, false);
    if opts.telemetry {
        sched.enable_spans();
        sched.set_monitor(simkit::Monitor::windowed(
            crate::runreport::RUN_REPORT_WINDOW_NS,
        ));
        sched.enable_telemetry(crate::runreport::RUN_REPORT_WINDOW_NS);
    }
    let cspec =
        ClusterSpec::new(spec.servers + SPARE_SERVERS, spec.client_nodes).with_cal(cal.clone());
    let topo = cspec.build(&mut sched);
    let mut daos_sys = DaosSystem::deploy(&topo, &mut sched, spec.servers, opts.mode);
    if opts.oracles {
        daos_sys.enable_ledger();
    }
    let (cid, s) = daos_sys.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos_sys));

    let mut cfg = IorConfig::new(spec.procs(), spec.client_nodes, spec.ops_per_proc);
    cfg.transfer_size = spec.transfer;
    cfg.queue_depth = spec.queue_depth;
    let oclass = match scen {
        RebalanceScenario::IorEasyRp2 => ObjectClass::RP_2,
        RebalanceScenario::IorEasyS1 => {
            // no redundancy: a crash genuinely loses extents, and the
            // oracle — not the benchmark driver — delivers that verdict
            cfg.tolerate_unavailable = true;
            ObjectClass::S1
        }
        RebalanceScenario::IorHardEc2p1 => {
            cfg.file_per_proc = false;
            cfg.access = AccessOrder::Random;
            ObjectClass::EC_2P1
        }
    };
    let backend = IorBackend::Daos {
        daos: daos.clone(),
        cid,
        oclass,
    };
    let mut ior = Ior::new(cfg, backend);
    ior.set_retry_policy(RetryPolicy::default(), spec.seed);
    let write = run_phase(&mut sched, &mut ior);
    let plan = match &opts.plan {
        PlanSource::Builtin => builtin_plan(spec, sched.now()),
        PlanSource::Fixed(plan) => plan.shifted(sched.now()),
    };
    sched.install_faults(plan);
    ior.set_phase(Phase::Read);
    let (read, out) = run_rebalance_phase(&mut sched, &mut ior, &daos);

    let oracles = opts.oracles.then(|| {
        let mut d = daos.borrow_mut();
        let mut report = d.verify_durability(0);
        report.merge(d.verify_redundancy());
        report
    });
    let d = daos.borrow();
    let run_report = opts.telemetry.then(|| {
        // fold the layer-owned totals into the registry before export:
        // client retries, the crash-triggered rebuild, and the
        // migration engine's progress at quiescence
        let at = sched.now();
        ior.retry_stats().publish(sched.telemetry_mut(), at);
        if let Some(rb) = &out.rebuild {
            rb.publish(sched.telemetry_mut(), at);
        }
        d.migration_progress().publish(sched.telemetry_mut(), at);
        d.csum_stats().publish(sched.telemetry_mut(), at);
        crate::runreport::RunReport::collect(
            &sched,
            scen.name(),
            &write,
            &read,
            &crate::runreport::faulted_slo_rules(),
        )
    });
    RebalanceRunReport {
        scenario: scen,
        write,
        read,
        retry: ior.retry_stats(),
        unavailable_reads: ior.unavailable_reads(),
        rebuild: out.rebuild,
        moves_planned: out.moves_planned,
        waves: out.waves,
        migration: d.migration_progress(),
        map_version: d.pool().version(),
        oracles,
        csum: d.csum_stats(),
        run_report,
        digest: sched.digest(),
    }
}

/// Run a rebalance-family case under an explicit schedule, twice from
/// fresh state, with the full oracle suite plus a digest determinism
/// check — the replay and shrink entry point.
pub fn run_planned_rebalance_case(
    spec: &RunSpec,
    scen: RebalanceScenario,
    cal: &Calibration,
    seed: u64,
    plan: FaultPlan,
) -> ChaosVerdict {
    let opts = RebalanceOpts {
        plan: PlanSource::Fixed(plan.clone()),
        mode: DataMode::Full,
        oracles: true,
        ..RebalanceOpts::default()
    };
    let first = run_rebalance_with(spec, scen, cal, &opts);
    let second = run_rebalance_with(spec, scen, cal, &opts);
    let mut oracle = first.oracles.clone().unwrap_or_default();
    if first.digest != second.digest {
        oracle.violations.push(determinism_violation(
            scen.name(),
            first.digest,
            second.digest,
        ));
    }
    ChaosVerdict {
        scenario: scen.name().to_string(),
        seed,
        plan,
        oracle,
        digest: first.digest,
    }
}

/// Run one rebalance chaos case: sample the seed's schedule from the
/// rebalance fault surface and run it as a planned case.
pub fn run_rebalance_case(
    spec: &RunSpec,
    scen: RebalanceScenario,
    cal: &Calibration,
    seed: u64,
) -> ChaosVerdict {
    let space = rebalance_space(spec, cal);
    let plan = generate(&space, &ChaosConfig::default(), seed);
    run_planned_rebalance_case(spec, scen, cal, seed, plan)
}

/// Swarm the rebalance family: every scenario in
/// [`RebalanceScenario::SWARM`] under every seed in `seeds`.
pub fn run_rebalance_swarm(spec: &RunSpec, cal: &Calibration, seeds: &[u64]) -> SwarmReport {
    let mut report = SwarmReport::default();
    for &seed in seeds {
        for scen in RebalanceScenario::SWARM {
            report
                .verdicts
                .push(run_rebalance_case(spec, scen, cal, seed));
        }
    }
    report
}

/// Shrink a failing rebalance-family schedule to a minimal reproducer
/// (single-sided probes; re-establish the verdict with
/// [`run_planned_rebalance_case`]).
pub fn shrink_failing_rebalance(
    spec: &RunSpec,
    scen: RebalanceScenario,
    cal: &Calibration,
    plan: &FaultPlan,
) -> ShrinkOutcome {
    shrink(plan, |candidate| {
        let opts = RebalanceOpts {
            plan: PlanSource::Fixed(candidate.clone()),
            mode: DataMode::Full,
            oracles: true,
            ..RebalanceOpts::default()
        };
        let report = run_rebalance_with(spec, scen, cal, &opts);
        !report
            .oracles
            .as_ref()
            .map(OracleReport::ok)
            .unwrap_or(true)
    })
}

/// Rerun an archived rebalance-family schedule: resolve the scenario
/// against [`RebalanceScenario::ALL`] and replay the stored plan at the
/// stored deployment shape.
pub fn replay_archived_rebalance(
    arch: &crate::chaos::ArchivedSchedule,
    cal: &Calibration,
) -> Result<ChaosVerdict, String> {
    let scen = RebalanceScenario::ALL
        .into_iter()
        .find(|s| s.name() == arch.scenario)
        .ok_or_else(|| format!("unknown rebalance scenario {:?}", arch.scenario))?;
    Ok(run_planned_rebalance_case(
        &arch.spec,
        scen,
        cal,
        arch.seed,
        arch.plan.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> RunSpec {
        let mut spec = default_rebalance_spec();
        spec.ops_per_proc = 8;
        spec
    }

    #[test]
    fn builtin_grow_and_drain_rebalances_cleanly() {
        let spec = tiny_spec();
        let cal = Calibration::default();
        let opts = RebalanceOpts {
            oracles: true,
            mode: DataMode::Full,
            ..RebalanceOpts::default()
        };
        let r = run_rebalance_with(&spec, RebalanceScenario::IorEasyRp2, &cal, &opts);
        assert!(r.map_version > 0, "membership changes bump the map version");
        assert!(r.moves_planned > 0, "grow + drain must move shards");
        assert!(r.waves > 0, "moves ship in waves");
        assert_eq!(
            r.migration.moves_done, r.moves_planned,
            "a crash-free rebalance ships every planned move"
        );
        let oracle = r.oracles.expect("oracles audited");
        assert!(oracle.ok(), "{}", oracle.render());
    }

    #[test]
    fn rebalance_case_is_deterministic() {
        let spec = tiny_spec();
        let cal = Calibration::default();
        let a = run_rebalance_case(&spec, RebalanceScenario::IorEasyRp2, &cal, 3);
        assert!(a.passed(), "seed 3 must be green:\n{}", a.oracle.render());
        let b = run_rebalance_case(&spec, RebalanceScenario::IorEasyRp2, &cal, 3);
        assert_eq!(a.digest, b.digest, "same seed, same case digest");
        assert_eq!(a.plan.to_json(), b.plan.to_json());
    }

    #[test]
    fn rebalance_space_spans_all_dimensions() {
        let spec = tiny_spec();
        let space = rebalance_space(&spec, &Calibration::default());
        assert_eq!(space.add_servers, vec![4, 5]);
        assert_eq!(space.drain_servers, vec![0, 1]);
        assert_eq!(space.migration_crash_groups.len(), 2);
        assert_eq!(space.crash_groups.len(), spec.servers);
    }
}
