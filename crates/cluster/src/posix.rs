//! A minimal POSIX-like file interface shared by every file-system-shaped
//! store in the workspace (DFUSE, DFUSE+IL, Lustre).
//!
//! The benchmarks that the paper runs through "POSIX" backends (IOR,
//! fdb-hammer's file backend, HDF5's POSIX VFD) program against this
//! trait, so the same benchmark code drives DAOS-through-FUSE and Lustre
//! identically — mirroring how the real IOR POSIX backend is pointed at
//! different mounts.

use crate::payload::{Payload, ReadPayload};
use simkit::Step;

/// An open-file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub u64);

/// File-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component missing.
    NotFound,
    /// Create of an existing entry without overwrite.
    Exists,
    /// A non-directory appeared where a directory was needed.
    NotDir,
    /// A directory appeared where a file was needed.
    IsDir,
    /// Directory not empty on removal.
    NotEmpty,
    /// Too many levels of symbolic links.
    SymlinkLoop,
    /// Backing storage unavailable (failed targets).
    Unavailable,
    /// Invalid handle.
    BadHandle,
    /// Anything else.
    Other(&'static str),
}

/// File metadata, as `stat` would return it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Size in bytes.
    // simlint::dim(bytes)
    pub size: u64,
    /// True for directories.
    pub is_dir: bool,
}

/// The operations the paper's POSIX-backend benchmarks need.  Every
/// method returns a [`Step`] modelling the call's cost alongside its
/// result; implementations mutate their state eagerly.
pub trait PosixFs {
    /// Create a directory (parents must exist).
    fn mkdir(&mut self, client: usize, path: &str) -> Result<Step, FsError>;

    /// Open a file; `create` makes it (parents must exist).
    fn open(&mut self, client: usize, path: &str, create: bool) -> Result<(FileId, Step), FsError>;

    /// Write at an offset.
    fn write(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        data: Payload,
    ) -> Result<Step, FsError>;

    /// Read from an offset.
    fn read(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), FsError>;

    /// Stat an open file.
    fn fstat(&mut self, client: usize, f: FileId) -> Result<(FileStat, Step), FsError>;

    /// Stat by path.
    fn stat(&mut self, client: usize, path: &str) -> Result<(FileStat, Step), FsError>;

    /// Close a handle.
    fn close(&mut self, client: usize, f: FileId) -> Result<Step, FsError>;

    /// Remove a file.
    fn unlink(&mut self, client: usize, path: &str) -> Result<Step, FsError>;

    /// List a directory.
    fn readdir(&mut self, client: usize, path: &str) -> Result<(Vec<String>, Step), FsError>;
}

/// Split a path into components, ignoring empty segments.
pub fn components(path: &str) -> Vec<&str> {
    path.split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_normalise() {
        assert_eq!(components("/a/b/c"), vec!["a", "b", "c"]);
        assert_eq!(components("a//b/"), vec!["a", "b"]);
        assert_eq!(components("/"), Vec::<&str>::new());
        assert_eq!(components("./a/./b"), vec!["a", "b"]);
    }
}
