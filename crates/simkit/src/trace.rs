//! Optional event tracing: a bounded in-memory log of op completions
//! for debugging cost models and inspecting schedules.
//!
//! Tracing is off by default (zero overhead beyond a branch); when
//! enabled the scheduler records `(time, op)` pairs which can be dumped
//! as a text timeline.

use crate::engine::OpId;
use crate::time::SimTime;

/// A bounded completion log.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    events: Vec<(SimTime, OpId)>,
    dropped: u64,
}

impl Trace {
    /// Disabled trace (the default).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// Recording trace keeping at most `cap` events (older events are
    /// kept; overflow is counted, not stored).
    pub fn bounded(cap: usize) -> Trace {
        Trace { enabled: true, cap, events: Vec::new(), dropped: 0 }
    }

    /// Whether events are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, at: SimTime, op: OpId) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push((at, op));
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded `(completion time, op)` pairs, in completion order.
    pub fn events(&self) -> &[(SimTime, OpId)] {
        &self.events
    }

    /// Completions that did not fit in the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render a text timeline (one line per completion).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, op) in &self.events {
            let _ = writeln!(out, "{:>14}  op {}", t.to_string(), op.0);
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "... and {} more completions (bound reached)", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::from_millis(1), OpId(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_keeps_prefix_and_counts_overflow() {
        let mut t = Trace::bounded(2);
        for i in 0..5u64 {
            t.record(SimTime::from_millis(i), OpId(i));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        let text = t.render();
        assert!(text.contains("op 0"));
        assert!(text.contains("3 more completions"));
    }
}
