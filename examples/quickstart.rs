//! Quickstart: deploy a small DAOS-like pool, store and fetch data
//! through the native object API, and read the simulated clock.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cluster::{ClusterSpec, Payload, GIB};
use daos_core::{ContainerProps, DaosSystem, DataMode, ObjectClass};
use simkit::{run, OpId, Scheduler, SimTime, Step, World};

/// Collects completion times; the minimal [`World`] a driver needs.
struct Done(SimTime);
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn exec(sched: &mut Scheduler, step: Step) -> f64 {
    let t0 = sched.now();
    sched.submit(step, OpId(0));
    let mut w = Done(SimTime::ZERO);
    run(sched, &mut w);
    w.0.secs_since(t0)
}

fn main() {
    // A 4-server, 1-client deployment of the paper's hardware.
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);

    // Pool -> container -> objects, exactly the libdaos model.
    let (cid, step) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, step);

    // A Key-Value object for metadata…
    let (kv, step) = daos.kv_create(0, cid, ObjectClass::S1).unwrap();
    exec(&mut sched, step);
    let step = daos
        .kv_put(
            0,
            cid,
            kv,
            b"experiment/name",
            Payload::from(&b"quickstart"[..]),
        )
        .unwrap();
    exec(&mut sched, step);

    // …and a sharded Array object for bulk data.
    let (arr, step) = daos.array_create(0, cid, ObjectClass::SX, 1 << 20).unwrap();
    exec(&mut sched, step);

    let mut rng = simkit::SplitMix64::new(7);
    let mut payload = vec![0u8; 8 << 20];
    rng.fill_bytes(&mut payload);
    let secs = exec(
        &mut sched,
        daos.array_write(0, cid, arr, 0, Payload::Bytes(payload.clone()))
            .unwrap(),
    );
    let bw = (8u64 << 20) as f64 / secs / GIB;
    println!("wrote 8 MiB through the SX array in {secs:.4}s of simulated time ({bw:.2} GiB/s)");
    println!("  (single QD1 stream: bounded by per-device burst bandwidth)");

    let (data, step) = daos.array_read(0, cid, arr, 0, 8 << 20).unwrap();
    let secs = exec(&mut sched, step);
    assert_eq!(data.bytes().unwrap(), &payload[..], "read back verified");
    println!("read back 8 MiB, verified byte-for-byte, in {secs:.4}s");

    let (value, step) = daos.kv_get(0, cid, kv, b"experiment/name").unwrap();
    exec(&mut sched, step);
    println!(
        "kv lookup: experiment/name = {:?}",
        String::from_utf8_lossy(value.bytes().unwrap())
    );

    let (size, step) = daos.array_get_size(0, cid, arr).unwrap();
    exec(&mut sched, step);
    println!("array size reported by the pool: {} bytes", size);
    println!("simulated wall clock at exit: {}", sched.now());
}
