//! FDB's Ceph backend: one RADOS object per field, index objects for
//! the TOC.
//!
//! Matches §III-F: fdb-hammer on librados stores every 1 MiB field in a
//! separate object, which spreads load across placement groups and lets
//! it reach much higher bandwidth than IOR's object-per-process pattern
//! on the same cluster.

use crate::backend::{Fdb, FdbError};
use crate::key::{FieldKey, KeyQuery};
use ceph_sim::{CephSystem, RadosError};
use cluster::payload::{Payload, ReadPayload};
use daos_core::{RetryExec, RetryPolicy, RetryStats};
use simkit::Step;
use std::collections::BTreeMap;

/// Size of one packed index entry.
const INDEX_ENTRY_BYTES: u64 = 512;

/// FDB over librados.
// simlint::sim_state — replay-visible simulation state
pub struct FdbCeph {
    ceph: CephSystem,
    toc: BTreeMap<FieldKey, u64>,
    /// Retry machinery around archive/retrieve (off by default).
    retry: RetryExec,
}

fn map_rados(e: RadosError) -> FdbError {
    match e {
        RadosError::NoSuchObject => FdbError::FieldNotFound,
        _ => FdbError::Backend("rados"),
    }
}

impl FdbCeph {
    /// Create the backend over a deployed Ceph cluster.
    pub fn new(ceph: CephSystem) -> FdbCeph {
        FdbCeph {
            ceph,
            toc: BTreeMap::new(),
            retry: RetryExec::disabled(),
        }
    }

    /// The wrapped cluster.
    // simlint::allow(digest-taint) — escape-hatch accessor: mutations made through it land in the inner system's own digested operations
    pub fn ceph_mut(&mut self) -> &mut CephSystem {
        &mut self.ceph
    }

    /// Configure retry/timeout/backoff on archive/retrieve (`seed`
    /// drives the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    fn archive_inner(
        &mut self,
        node: usize,
        key: &FieldKey,
        data: Payload,
    ) -> Result<Step, FdbError> {
        let len = data.len();
        let s1 = self
            .ceph
            .write(node, &Self::field_object(key), 0, data)
            .map_err(map_rados)?;
        let s2 = self
            .ceph
            .append(
                node,
                &Self::index_object(key),
                Payload::Sized(INDEX_ENTRY_BYTES),
            )
            .map_err(map_rados)?;
        self.toc.insert(*key, len);
        Ok(Step::seq([s1, s2]))
    }

    fn retrieve_inner(
        &mut self,
        node: usize,
        key: &FieldKey,
    ) -> Result<(ReadPayload, Step), FdbError> {
        let len = *self.toc.get(key).ok_or(FdbError::FieldNotFound)?;
        let (_, s1) = self
            .ceph
            .read(node, &Self::index_object(key), 0, INDEX_ENTRY_BYTES)
            .map_err(map_rados)?;
        let (data, s2) = self
            .ceph
            .read(node, &Self::field_object(key), 0, len)
            .map_err(map_rados)?;
        Ok((data, Step::seq([s1, s2])))
    }

    fn field_object(key: &FieldKey) -> String {
        format!("fdb/field/{key}")
    }

    fn index_object(key: &FieldKey) -> String {
        format!("fdb/index/{}", key.index_group())
    }
}

impl Fdb for FdbCeph {
    fn archive(
        &mut self,
        node: usize,
        _proc: usize,
        key: &FieldKey,
        data: Payload,
    ) -> Result<Step, FdbError> {
        // Take the executor out so the retried closure can borrow `self`.
        let bytes = data.len();
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run_step(|| self.archive_inner(node, key, data.clone()));
        self.retry = retry;
        Ok(Step::span("fdb", "archive", bytes, r?))
    }

    fn flush(&mut self, _node: usize, _proc: usize) -> Result<Step, FdbError> {
        Ok(Step::Noop)
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn list(&mut self, node: usize, query: &KeyQuery) -> Result<(Vec<FieldKey>, Step), FdbError> {
        // read every matching index-group object
        let mut groups: Vec<String> = self
            .toc
            .keys()
            .filter(|k| query.matches(k))
            .map(Self::index_object)
            .collect();
        groups.sort();
        groups.dedup();
        let mut steps = Vec::new();
        for g in groups {
            let (_, s) = self
                .ceph
                .read(node, &g, 0, INDEX_ENTRY_BYTES)
                .map_err(map_rados)?;
            steps.push(s);
        }
        let mut keys: Vec<FieldKey> = self
            .toc
            .keys()
            .filter(|k| query.matches(k))
            .copied()
            .collect();
        keys.sort();
        Ok((keys, Step::span("fdb", "list", 0, Step::par(steps))))
    }

    fn retrieve(
        &mut self,
        node: usize,
        _proc: usize,
        key: &FieldKey,
    ) -> Result<(ReadPayload, Step), FdbError> {
        let mut retry = std::mem::replace(&mut self.retry, RetryExec::disabled());
        let r = retry.run(|| self.retrieve_inner(node, key));
        self.retry = retry;
        let (data, s) = r?;
        let bytes = data.len();
        Ok((data, Step::span("fdb", "retrieve", bytes, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceph_sim::{CephDataMode, CephPoolOpts};
    use cluster::ClusterSpec;
    use simkit::{run, OpId, Scheduler, SimTime, World};

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) {
        sched.submit(step, OpId(0));
        run(sched, &mut Sink(SimTime::ZERO));
    }

    fn fixture() -> (Scheduler, FdbCeph) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let ceph = CephSystem::deploy(
            &topo,
            &mut sched,
            2,
            CephDataMode::Full,
            CephPoolOpts::default(),
        )
        .unwrap();
        (sched, FdbCeph::new(ceph))
    }

    #[test]
    fn archive_retrieve_round_trip() {
        let (mut sched, mut fdb) = fixture();
        let k = FieldKey::sequence(0, 0);
        let mut rng = simkit::SplitMix64::new(7);
        let mut field = vec![0u8; 50_000];
        rng.fill_bytes(&mut field);
        exec(
            &mut sched,
            fdb.archive(0, 0, &k, Payload::Bytes(field.clone()))
                .unwrap(),
        );
        let (data, s) = fdb.retrieve(0, 0, &k).unwrap();
        exec(&mut sched, s);
        assert_eq!(data.bytes().unwrap(), &field[..]);
    }

    #[test]
    fn object_per_field() {
        let (mut sched, mut fdb) = fixture();
        for i in 0..8 {
            let k = FieldKey::sequence(0, i);
            exec(
                &mut sched,
                fdb.archive(0, 0, &k, Payload::Sized(1 << 20)).unwrap(),
            );
        }
        // 8 field objects + 1 shared index-group object (same member)
        assert_eq!(fdb.ceph.object_count(), 9);
    }

    #[test]
    fn missing_field_errors() {
        let (_sched, mut fdb) = fixture();
        assert_eq!(
            fdb.retrieve(0, 0, &FieldKey::sequence(1, 1)).unwrap_err(),
            FdbError::FieldNotFound
        );
    }
}
