//! Seeded engine-only workloads for the `engine_events_per_sec` bench
//! trajectory.
//!
//! Each family drives the `simkit` Scheduler directly — no interface
//! crates — so its throughput isolates the engine hot path the stage-3
//! cost lint guards: timer drain, flow completion batches, and the
//! max-min rate recomputation.  Workloads are seeded and the op count
//! per family is fixed, so every run completes the same number of
//! events and folds the same replay digest; `repro bench-engine`
//! re-checks both against the committed `BENCH_engine.json` before
//! comparing throughput.  This module performs no timing itself —
//! callers (the criterion bench, the repro target) own the clock.

use simkit::units::{GB, MB};
use simkit::{run, OpId, ResourceId, Scheduler, SplitMix64, Step, World};

/// Ops completed per family run; fixed so event counts are comparable
/// across machines and commits.
pub const BENCH_OPS: u64 = 2048;

/// In-flight op window: deep enough to keep many flows sharing
/// resources (exercising the fair-share recompute), shallow enough
/// that the timer heap and flow slab stay realistic.
const WINDOW: u64 = 64;

/// Resources in the bench topology.
const RESOURCES: usize = 32;

/// The scenario families, in report order.
pub const FAMILIES: &[&str] = &["fanout", "chain", "timer", "mixed"];

/// Iterations of the calibration spin per timing probe.
pub const CALIBRATION_ITERS: u64 = 1 << 22;

/// A pure-CPU reference workload (a SplitMix64 stream folded FNV-style)
/// used to normalise events/sec: the trajectory gate compares the ratio
/// of engine throughput to this spin's rate, so a noisy or slower
/// machine rescales both sides and real per-event cost changes still
/// show.  Returns a checksum so the loop cannot be optimised away.
pub fn calibration_spin(iters: u64) -> u64 {
    let mut rng = SplitMix64::new(0xca11_b7a7);
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..iters {
        acc = (acc ^ rng.next_u64()).wrapping_mul(0x100_0000_01b3);
    }
    acc
}

/// Outcome of one deterministic family run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyResult {
    /// Family name (one of [`FAMILIES`]).
    pub name: &'static str,
    /// Events (completed op chains) processed — always the configured
    /// op count when the run drains.
    pub events: u64,
    /// The engine's replay digest over the completion stream.
    pub digest: u64,
}

enum Kind {
    Fanout,
    Chain,
    Timer,
    Mixed,
}

struct Driver {
    rng: SplitMix64,
    kind: Kind,
    resources: Vec<ResourceId>,
    /// Ops not yet submitted (the seed window comes out of this too).
    remaining: u64,
    completed: u64,
    next_id: u64,
}

impl Driver {
    fn path(&mut self, hops: usize) -> Vec<ResourceId> {
        let n = self.resources.len() as u64;
        (0..hops)
            .map(|_| self.resources[self.rng.next_below(n) as usize])
            .collect()
    }

    // simlint::allow(hot-alloc) — op construction: each bench op owns its Step tree, exactly like the modelled clients do
    fn make_step(&mut self) -> Step {
        let kind = match self.kind {
            Kind::Fanout => 0,
            Kind::Chain => 1,
            Kind::Timer => 2,
            Kind::Mixed => self.rng.next_below(3),
        };
        match kind {
            // Wide sharing: one transfer crossing three of the shared
            // resources — recompute-heavy, completion batches overlap.
            0 => {
                let units = 4096.0 + self.rng.next_below(4096) as f64;
                let path = self.path(3);
                Step::transfer(units, path)
            }
            // Deep chains: eight back-to-back transfers — stresses
            // completion advance and the cached next-deadline.
            1 => {
                let hops: Vec<Step> = (0..8)
                    .map(|_| {
                        let units = 512.0 + self.rng.next_below(512) as f64;
                        let path = self.path(1);
                        Step::transfer(units, path)
                    })
                    .collect();
                Step::seq(hops)
            }
            // Timer-heavy: a seeded delay then a small transfer —
            // stresses the timer heap against the flow deadline race.
            _ => {
                let ns = 1_000 + self.rng.next_below(100_000);
                let units = 256.0 + self.rng.next_below(256) as f64;
                let path = self.path(1);
                Step::delay(ns).then(Step::transfer(units, path))
            }
        }
    }

    fn submit_one(&mut self, sched: &mut Scheduler) {
        let step = self.make_step();
        let op = OpId(self.next_id);
        self.next_id += 1;
        sched.submit(step, op);
    }
}

impl World for Driver {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.completed += 1;
        if self.remaining > 0 {
            self.remaining -= 1;
            self.submit_one(sched);
        }
    }
}

/// Run one family to completion with `ops` total ops and return its
/// deterministic event count and replay digest.
pub fn run_family(name: &str, ops: u64) -> FamilyResult {
    let (kind, seed, static_name) = match name {
        "fanout" => (Kind::Fanout, 0x5eed_0001, FAMILIES[0]),
        "chain" => (Kind::Chain, 0x5eed_0002, FAMILIES[1]),
        "timer" => (Kind::Timer, 0x5eed_0003, FAMILIES[2]),
        "mixed" => (Kind::Mixed, 0x5eed_0004, FAMILIES[3]),
        other => panic!("unknown engine bench family `{other}`"),
    };
    let mut sched = Scheduler::new();
    let resources: Vec<ResourceId> = (0..RESOURCES)
        .map(|i| sched.add_resource(format!("r{i}"), GB + i as f64 * 10.0 * MB))
        .collect();
    let mut driver = Driver {
        rng: SplitMix64::new(seed),
        kind,
        resources,
        remaining: ops,
        completed: 0,
        next_id: 0,
    };
    let window = WINDOW.min(ops);
    for _ in 0..window {
        driver.remaining -= 1;
        driver.submit_one(&mut sched);
    }
    run(&mut sched, &mut driver);
    FamilyResult {
        name: static_name,
        events: driver.completed,
        digest: sched.digest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_deterministic_and_complete() {
        for fam in FAMILIES {
            let a = run_family(fam, 256);
            let b = run_family(fam, 256);
            assert_eq!(a, b, "{fam} must replay identically");
            assert_eq!(a.events, 256, "{fam} must drain its op budget");
        }
    }

    #[test]
    fn families_fold_distinct_digests() {
        let digests: Vec<u64> = FAMILIES.iter().map(|f| run_family(f, 256).digest).collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "families must differ");
            }
        }
    }
}
