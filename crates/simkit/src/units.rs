//! Typed byte/rate units and second↔nanosecond conversion helpers.
//!
//! The simulator's hot arithmetic mixes three physical dimensions —
//! byte counts, transfer rates (bytes or service units per second) and
//! integer-nanosecond time — and a silently wrong conversion corrupts a
//! paper verdict without failing any test.  This module is the single
//! home for that arithmetic: [`Bytes`] and [`Rate`] newtypes whose
//! operators encode the legal combinations (`Bytes / Rate → SimTime`,
//! `Rate * seconds → Bytes`), plus the raw conversion helpers for call
//! sites that must stay `f64`.
//!
//! **Digest neutrality.** Every helper here reproduces the exact `f64`
//! expression it replaced, including evaluation order and the
//! truncating-vs-ceiling distinction: [`secs_to_ns`] truncates (it
//! replaces `(s * 1e9) as u64`), while [`Bytes`]`/`[`Rate`] ceils via
//! [`SimTime::from_secs_f64`] (it replaces
//! `((bytes / rate) * 1e9).ceil() as u64`).  Swapping one for the other
//! shifts event timestamps by one nanosecond and changes every replay
//! digest downstream — that is exactly the bug class the `simlint`
//! stage-4 dimension pass exists to catch.
//!
//! The `simlint::dim(...)` markers below register these types and
//! helpers with that pass; see `DESIGN.md` §14 for the marker grammar.

use crate::time::SimTime;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One kibibyte in bytes.
pub const KIB: f64 = 1024.0;
/// One mebibyte in bytes.
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte in bytes.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
/// One decimal megabyte in bytes (vendor-sheet rates quote these).
pub const MB: f64 = 1e6;
/// One decimal gigabyte in bytes.
pub const GB: f64 = 1e9;
/// Nanoseconds per second, as the `f64` the conversion sites multiply
/// and divide by.
pub const NS_PER_SEC: f64 = 1e9;
/// Nanoseconds per second as an integer, for derived-rate arithmetic
/// that must stay exact (telemetry exports divide window deltas by the
/// window width without ever touching floating point).
pub const NS_PER_SEC_INT: u64 = 1_000_000_000;

/// A byte count (or, on service resources, a generic work amount) as
/// carried by flow-level transfers.
///
/// Kept as `f64` because the max-min solver divides capacities
/// fractionally; the newtype exists so the *dimension* travels with the
/// value.
// simlint::dim(bytes)
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bytes(pub f64);

/// A transfer rate in bytes (or service units) per second.
// simlint::dim(bytes_per_sec)
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(pub f64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0.0);

    /// The raw byte count.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Smaller of two byte counts.
    #[inline]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// True once the count has drained to (or below) zero.
    #[inline]
    pub fn is_drained(self) -> bool {
        self.0 <= 0.0
    }
}

impl Rate {
    /// Zero rate (a stalled flow).
    pub const ZERO: Rate = Rate(0.0);

    /// The raw rate in bytes per second.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Larger of two rates.
    #[inline]
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }

    /// Work moved at this rate over `secs` seconds.
    ///
    /// A named method rather than `Rate * f64` because that operator is
    /// taken by *dimensionless* scaling (fault injection multiplies a
    /// capacity by a scale factor); multiplying by a duration changes
    /// the dimension and deserves to be visible at the call site.
    #[inline]
    pub fn bytes_in(self, secs: f64) -> Bytes {
        Bytes(self.0 * secs)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl AddAssign for Rate {
    #[inline]
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Sub for Rate {
    type Output = Rate;
    #[inline]
    fn sub(self, rhs: Rate) -> Rate {
        Rate(self.0 - rhs.0)
    }
}

impl SubAssign for Rate {
    #[inline]
    fn sub_assign(&mut self, rhs: Rate) {
        self.0 -= rhs.0;
    }
}

/// `bytes / rate` is the time the transfer takes.  Rounds up to the next
/// nanosecond exactly like the engine's flow-deadline expression
/// `((remaining / rate) * 1e9).ceil() as u64` always has.
impl Div<Rate> for Bytes {
    type Output = SimTime;
    // simlint::dim(rhs: bytes_per_sec, return: ns)
    #[inline]
    fn div(self, rhs: Rate) -> SimTime {
        SimTime::from_secs_f64(self.0 / rhs.0)
    }
}

/// Dimensionless scaling: `capacity × 0.5` is still a rate (fault
/// injection, burst factors).  Rate × *time* is [`Rate::bytes_in`].
impl Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, scale: f64) -> Rate {
        Rate(self.0 * scale)
    }
}

/// Dimensionless division: a capacity split across `n` flows is the
/// per-flow fair share, still a rate.
impl Div<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn div(self, n: f64) -> Rate {
        Rate(self.0 / n)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_bytes(self.0))
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_bw(self.0))
    }
}

/// Fractional seconds → integer nanoseconds, **truncating**.
///
/// Replaces bare `(s * 1e9) as u64`; distinct from
/// [`SimTime::from_secs_f64`], which ceils.  Callers that switched
/// between the two would move every downstream event by a nanosecond and
/// break replay digests.
// simlint::dim(s: secs, return: ns)
#[inline]
pub fn secs_to_ns(s: f64) -> u64 {
    (s * NS_PER_SEC) as u64
}

/// Integer nanoseconds → fractional seconds.
///
/// Replaces bare `ns as f64 / 1e9`.
// simlint::dim(ns: ns, return: secs)
#[inline]
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / NS_PER_SEC
}

/// Mean service interval in nanoseconds for a rate given in operations
/// per second.
///
/// Preserves the exact expression `(1e9 / per_sec) as u64`: computing
/// `secs_to_ns(1.0 / per_sec)` instead performs two roundings and is
/// *not* bit-identical for all inputs.
// simlint::dim(return: ns)
#[inline]
pub fn ops_interval_ns(per_sec: f64) -> u64 {
    (NS_PER_SEC / per_sec) as u64
}

/// Render a byte count as a human-readable size.
pub fn fmt_bytes(b: f64) -> String {
    if b >= GIB {
        format!("{:.2} GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Render a bandwidth (bytes/second) the way the paper's figures do.
pub fn fmt_bw(bps: f64) -> String {
    format!("{}/s", fmt_bytes(bps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_values() {
        assert_eq!(KIB, 1024.0);
        assert_eq!(MIB, 1048576.0);
        assert_eq!(GIB, 1073741824.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2.0 * KIB), "2.00 KiB");
        assert_eq!(fmt_bytes(3.5 * MIB), "3.50 MiB");
        assert_eq!(fmt_bw(61.76 * GIB), "61.76 GiB/s");
        assert_eq!(format!("{}", Bytes(2.0 * KIB)), "2.00 KiB");
        assert_eq!(format!("{}", Rate(1.5 * GIB)), "1.50 GiB/s");
    }

    #[test]
    fn bytes_over_rate_matches_engine_deadline_expression() {
        // The engine's historical deadline math, verbatim.
        let cases: [(f64, f64); 4] = [
            (4096.0, 3.0),
            (1.0, 3e9),
            (123456789.0, 9999.5),
            (0.0, 100.0),
        ];
        for (remaining, rate) in cases {
            let legacy = ((remaining / rate) * 1e9).ceil() as u64;
            assert_eq!((Bytes(remaining) / Rate(rate)).as_nanos(), legacy);
        }
    }

    #[test]
    fn secs_to_ns_truncates_exactly_like_the_cast() {
        for s in [0.0, 1e-9, 2.5e-7, 0.3333333333, 12.75, 1.0 / 3.0] {
            assert_eq!(secs_to_ns(s), (s * 1e9) as u64);
        }
        // Truncation, not rounding: 1.9ns of seconds is 1ns.
        assert_eq!(secs_to_ns(1.9e-9), 1);
    }

    #[test]
    fn ops_interval_preserves_single_rounding() {
        for iops in [3.0, 7.0, 170_000.0, 1e6] {
            assert_eq!(ops_interval_ns(iops), (1e9 / iops) as u64);
        }
    }

    #[test]
    fn ns_round_trip() {
        assert_eq!(ns_to_secs(1_500_000_000), 1.5);
        assert_eq!(secs_to_ns(ns_to_secs(42)), 42);
    }

    #[test]
    fn rate_over_seconds_is_bytes() {
        let moved = Rate(100.0).bytes_in(0.25);
        assert_eq!(moved, Bytes(25.0));
        let mut rem = Bytes(30.0);
        rem -= moved.min(rem);
        assert_eq!(rem, Bytes(5.0));
        assert!(Bytes(0.0).is_drained());
        assert!(!rem.is_drained());
    }

    #[test]
    fn scalar_rate_arithmetic() {
        assert_eq!(Rate(100.0) * 0.5, Rate(50.0));
        assert_eq!(Rate(100.0) / 4.0, Rate(25.0));
        assert_eq!(Rate(1.0).max(Rate(2.0)), Rate(2.0));
    }

    #[test]
    fn sums_and_ordering() {
        let total: Bytes = [Bytes(1.0), Bytes(2.5)].into_iter().sum();
        assert_eq!(total, Bytes(3.5));
        assert!(Rate(1.0) < Rate(2.0));
        assert_eq!(Rate(1.0) + Rate(2.0) - Rate(0.5), Rate(2.5));
    }
}
