//! Resource utilisation accounting.
//!
//! The engine credits every resource with `rate × dt` units whenever
//! simulated time advances, giving exact busy integrals for the fluid
//! model.  Utilisation reports are used by the benchmark harness to
//! explain *which* resource bound each figure's plateau — the analysis
//! the paper performs by comparing against raw hardware bandwidth.
//!
//! Two granularities are kept:
//!
//! * **Totals** — one busy integral per resource, always accumulated.
//!   [`Monitor::report`] derives whole-run mean rates and fractions from
//!   these, but a whole-run mean under-reports utilisation for scenarios
//!   with long idle tails (setup barriers, drain phases).
//! * **Windows** — with [`Monitor::windowed`], the same credits are also
//!   apportioned into fixed-width time windows.  Because flow rates are
//!   constant across each settlement interval, uniform apportionment is
//!   exact, not an approximation.  [`Monitor::window_fractions`] then
//!   yields a utilisation *time series* per resource, from which peak and
//!   busy-interval utilisation fall out.

use crate::step::ResourceId;
use crate::time::SimTime;
use crate::units::Rate;

/// Per-resource busy accounting.
#[derive(Debug, Default, Clone)]
pub struct Monitor {
    /// Total units moved through each resource.
    busy_units: Vec<f64>,
    /// Window width in ns (0 = totals only).
    // simlint::dim(ns)
    window_ns: u64,
    /// Per-resource, per-window units (outer: resource, inner: window).
    series: Vec<Vec<f64>>,
    enabled: bool,
}

/// One row of a utilisation report.
#[derive(Debug, Clone)]
pub struct Utilisation {
    /// Resource this row describes.
    pub resource: ResourceId,
    /// Units moved through the resource during the run.
    pub units: f64,
    /// Mean throughput over the interval, units/second.
    pub mean_rate: f64,
    /// Mean throughput as a fraction of capacity (0..=1).
    pub fraction: f64,
}

impl Monitor {
    /// A monitor that records nothing (zero overhead).
    pub fn disabled() -> Self {
        Monitor::default()
    }

    /// A recording monitor (whole-run totals only).
    pub fn enabled() -> Self {
        Monitor {
            enabled: true,
            ..Monitor::default()
        }
    }

    /// A recording monitor that additionally samples utilisation into
    /// fixed windows of `window_ns` nanoseconds.
    // simlint::dim(window_ns: ns)
    pub fn windowed(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        Monitor {
            enabled: true,
            window_ns,
            ..Monitor::default()
        }
    }

    /// Whether accounting is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Window width in nanoseconds (0 when windowing is off).
    #[inline]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Credit `units` of work to `r`, moved uniformly over `[t0, t1]`
    /// (the engine's settlement interval; flow rates are constant across
    /// it, so uniform apportionment into windows is exact).
    pub(crate) fn credit(&mut self, r: ResourceId, units: f64, t0: SimTime, t1: SimTime) {
        if !self.enabled {
            return;
        }
        let i = r.0 as usize;
        if self.busy_units.len() <= i {
            self.busy_units.resize(i + 1, 0.0);
        }
        self.busy_units[i] += units;
        if self.window_ns == 0 {
            return;
        }
        let span_ns = t1.nanos_since(t0);
        if self.series.len() <= i {
            // simlint::allow(hot-alloc) — lazy per-resource row growth: resizes once per new resource id, then steady-state credits never allocate
            self.series.resize(i + 1, Vec::new());
        }
        let row = &mut self.series[i];
        if span_ns == 0 {
            // Instantaneous credit: bill the window containing t1.
            let w = (t1.as_nanos() / self.window_ns) as usize;
            if row.len() <= w {
                row.resize(w + 1, 0.0);
            }
            row[w] += units;
            return;
        }
        let last = ((t1.as_nanos() - 1) / self.window_ns) as usize;
        if row.len() <= last {
            row.resize(last + 1, 0.0);
        }
        let mut cur = t0.as_nanos();
        let end = t1.as_nanos();
        while cur < end {
            let w = cur / self.window_ns;
            let w_end = ((w + 1) * self.window_ns).min(end);
            let frac = (w_end - cur) as f64 / span_ns as f64;
            row[w as usize] += units * frac;
            cur = w_end;
        }
    }

    /// Units moved through `r` so far.
    pub fn units(&self, r: ResourceId) -> f64 {
        self.busy_units.get(r.0 as usize).copied().unwrap_or(0.0)
    }

    /// Snapshot of all busy integrals, padded to `n` resources.
    pub fn snapshot(&self, n: usize) -> Vec<f64> {
        let mut v = self.busy_units.clone();
        v.resize(n.max(v.len()), 0.0);
        v
    }

    /// Per-window units moved through `r` (empty when windowing is off
    /// or the resource never moved anything).
    pub fn window_units(&self, r: ResourceId) -> &[f64] {
        self.series
            .get(r.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Utilisation time series for `r`: fraction of `capacity` used in
    /// each window.  Empty when windowing is off.
    // simlint::amortized — post-run export, called once per report
    pub fn window_fractions(&self, r: ResourceId, capacity: Rate) -> Vec<f64> {
        if self.window_ns == 0 || capacity <= Rate::ZERO {
            return Vec::new();
        }
        let w_secs = crate::units::ns_to_secs(self.window_ns);
        let per_window = capacity.bytes_in(w_secs);
        self.window_units(r)
            .iter()
            .map(|u| u / per_window.get())
            .collect()
    }

    /// Highest single-window utilisation fraction of `r` (0 when
    /// windowing is off).  This is the number the whole-run mean hides:
    /// a resource saturated for half the run and idle for the rest
    /// reports `fraction = 0.5` in [`Monitor::report`] but a peak of 1.0.
    pub fn peak_fraction(&self, r: ResourceId, capacity: Rate) -> f64 {
        self.window_fractions(r, capacity)
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// The window holding the peak utilisation of `r`: `(window index,
    /// fraction)`.  `None` when windowing is off or nothing moved.  Ties
    /// resolve to the earliest window, so the answer is deterministic.
    pub fn peak_window(&self, r: ResourceId, capacity: Rate) -> Option<(usize, f64)> {
        let fr = self.window_fractions(r, capacity);
        let mut best: Option<(usize, f64)> = None;
        for (i, f) in fr.into_iter().enumerate() {
            if best.is_none_or(|(_, bf)| f > bf) {
                best = Some((i, f));
            }
        }
        best
    }

    /// Maximal runs of consecutive windows where `r`'s utilisation is at
    /// or above `threshold` (a fraction of capacity), as half-open
    /// `[start, end)` window-index ranges in time order.  This is the
    /// plateau-attribution primitive: "nvme busy ≥ 95% for windows
    /// 12..40" replaces hand-reading the series.
    // simlint::amortized — post-run export, called once per report
    pub fn busy_intervals(
        &self,
        r: ResourceId,
        capacity: Rate,
        threshold: f64,
    ) -> Vec<(usize, usize)> {
        let fr = self.window_fractions(r, capacity);
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &f) in fr.iter().enumerate() {
            match (f >= threshold, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    out.push((s, i));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push((s, fr.len()));
        }
        out
    }

    /// Utilisation report over `[t0, t1]` for resources with the given
    /// capacities (indexed by resource id).  A derived view over the
    /// whole-run totals; unchanged by windowing.
    pub fn report(&self, caps: &[Rate], t0: SimTime, t1: SimTime) -> Vec<Utilisation> {
        let dt = t1.secs_since(t0);
        (0..caps.len())
            .map(|i| {
                let units = self.busy_units.get(i).copied().unwrap_or(0.0);
                let mean_rate = if dt > 0.0 { units / dt } else { 0.0 };
                let fraction = if caps[i] > Rate::ZERO {
                    mean_rate / caps[i].get()
                } else {
                    0.0
                };
                Utilisation {
                    resource: ResourceId(i as u32),
                    units,
                    mean_rate,
                    fraction,
                }
            })
            .collect()
    }

    /// Drop all accumulated accounting (totals and windows).
    pub fn reset(&mut self) {
        self.busy_units.clear();
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_records_nothing() {
        let mut m = Monitor::disabled();
        m.credit(ResourceId(0), 5.0, at(0), at(10));
        assert_eq!(m.units(ResourceId(0)), 0.0);
        assert!(m.window_units(ResourceId(0)).is_empty());
    }

    #[test]
    fn credit_accumulates() {
        let mut m = Monitor::enabled();
        m.credit(ResourceId(2), 5.0, at(0), at(10));
        m.credit(ResourceId(2), 2.5, at(10), at(20));
        assert!((m.units(ResourceId(2)) - 7.5).abs() < 1e-12);
        assert_eq!(m.units(ResourceId(0)), 0.0);
        assert_eq!(m.window_ns(), 0);
        assert!(m.window_fractions(ResourceId(2), Rate(1.0)).is_empty());
    }

    #[test]
    fn report_computes_fractions() {
        let mut m = Monitor::enabled();
        m.credit(ResourceId(0), 50.0, at(0), SimTime::from_secs_f64(1.0));
        let rep = m.report(&[Rate(100.0)], SimTime::ZERO, SimTime::from_secs_f64(1.0));
        assert!((rep[0].mean_rate - 50.0).abs() < 1e-9);
        assert!((rep[0].fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn windows_apportion_uniformly() {
        let mut m = Monitor::windowed(100);
        // 10 units over [50, 250): 50ns in w0, 100ns in w1, 50ns in w2.
        m.credit(ResourceId(0), 10.0, at(50), at(250));
        let w = m.window_units(ResourceId(0));
        assert_eq!(w.len(), 3);
        assert!((w[0] - 2.5).abs() < 1e-12, "{w:?}");
        assert!((w[1] - 5.0).abs() < 1e-12);
        assert!((w[2] - 2.5).abs() < 1e-12);
        // Totals stay the derived whole-run view.
        assert!((m.units(ResourceId(0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn window_boundary_is_half_open() {
        let mut m = Monitor::windowed(100);
        // [0, 100) lands entirely in window 0.
        m.credit(ResourceId(0), 4.0, at(0), at(100));
        let w = m.window_units(ResourceId(0));
        assert_eq!(w.len(), 1);
        assert!((w[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn peak_exceeds_whole_run_mean_with_idle_tail() {
        // Saturated for the first window, idle afterwards: the whole-run
        // mean dilutes to 0.25 while the peak stays at 1.0 — the
        // under-reporting the windowed view exists to fix.
        let cap = Rate(100.0); // units/s
        let w_ns = 1_000_000_000; // 1s windows
        let mut m = Monitor::windowed(w_ns);
        m.credit(ResourceId(0), 100.0, at(0), at(w_ns));
        m.credit(ResourceId(0), 0.0, at(3 * w_ns), at(4 * w_ns));
        let rep = m.report(&[cap], SimTime::ZERO, at(4 * w_ns));
        assert!((rep[0].fraction - 0.25).abs() < 1e-9);
        assert!((m.peak_fraction(ResourceId(0), cap) - 1.0).abs() < 1e-9);
        let f = m.window_fractions(ResourceId(0), cap);
        assert!((f[0] - 1.0).abs() < 1e-9);
        assert!(f[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn peak_window_and_busy_intervals() {
        let cap = Rate(10.0); // units/s
        let w_ns = 1_000_000_000; // 1s windows
        let mut m = Monitor::windowed(w_ns);
        // windows: [1.0, 1.0, 0.2, 0.95, 1.0] of capacity
        m.credit(ResourceId(0), 20.0, at(0), at(2 * w_ns));
        m.credit(ResourceId(0), 2.0, at(2 * w_ns), at(3 * w_ns));
        m.credit(ResourceId(0), 9.5, at(3 * w_ns), at(4 * w_ns));
        m.credit(ResourceId(0), 10.0, at(4 * w_ns), at(5 * w_ns));
        let (w, f) = m.peak_window(ResourceId(0), cap).unwrap();
        assert_eq!(w, 0, "ties resolve to the earliest window");
        assert!((f - 1.0).abs() < 1e-9);
        let busy = m.busy_intervals(ResourceId(0), cap, 0.9);
        assert_eq!(busy, vec![(0, 2), (3, 5)]);
        // A run ending at the series tail closes at the series length;
        // a threshold nothing reaches yields no intervals.
        assert!(m.busy_intervals(ResourceId(0), cap, 1.5).is_empty());
        // Windowing off: no peak window, no intervals.
        let plain = Monitor::enabled();
        assert!(plain.peak_window(ResourceId(0), cap).is_none());
        assert!(plain.busy_intervals(ResourceId(0), cap, 0.5).is_empty());
    }

    #[test]
    fn instantaneous_credit_bills_containing_window() {
        let mut m = Monitor::windowed(100);
        m.credit(ResourceId(0), 3.0, at(150), at(150));
        let w = m.window_units(ResourceId(0));
        assert_eq!(w.len(), 2);
        assert!((w[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut m = Monitor::windowed(10);
        m.credit(ResourceId(1), 9.0, at(0), at(10));
        m.reset();
        assert_eq!(m.units(ResourceId(1)), 0.0);
        assert!(m.window_units(ResourceId(1)).is_empty());
    }
}
