//! Simulation time as integer nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// Integer nanoseconds keep event ordering exact and let symmetric
/// processes land on *identical* timestamps, which the engine exploits to
/// batch completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as the deadline of stalled flows.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds, rounding up to the
    /// next nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * 1e9).ceil() as u64)
    }

    /// Nanoseconds since time zero.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since time zero as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`, in nanoseconds.
    #[inline]
    pub fn nanos_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Seconds elapsed since `earlier` as a float.
    #[inline]
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        self.nanos_since(earlier) as f64 / 1e9
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, ns: u64) {
        self.0 = self.0.saturating_add(ns);
    }
}

impl Sub for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_nanos(250).as_secs_f64() - 2.5e-7).abs() < 1e-18);
    }

    #[test]
    fn from_secs_rounds_up() {
        // 1ns expressed in seconds must not round down to zero.
        assert_eq!(SimTime::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimTime::from_secs_f64(1.0000000001e-9).as_nanos(), 2);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        assert_eq!((t + 500).as_nanos(), 10_500);
        assert_eq!(t - SimTime::from_micros(4), 6_000);
        assert_eq!(SimTime::from_micros(4) - t, 0, "saturating");
        assert_eq!(t.nanos_since(SimTime::ZERO), 10_000);
        assert!((t.secs_since(SimTime::ZERO) - 1e-5).abs() < 1e-15);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::NEVER);
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
    }
}
