//! Work descriptions: op chains built from delays and shared transfers.

/// Identifier of a capacity resource registered with the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

/// One node of an op chain.
///
/// Storage clients translate logical operations ("write 1 MiB to Array
/// shard on target 12") into `Step` trees; the engine only ever sees
/// these trees, never storage semantics.
#[derive(Debug, Clone)]
pub enum Step {
    /// Completes immediately.  `Seq`/`Par` of nothing normalise to this.
    Noop,
    /// A fixed latency in nanoseconds (CPU overhead, RPC round trip,
    /// device latency…).  Not subject to sharing.
    Delay(u64),
    /// Move `units` through every resource in `path` simultaneously at
    /// the max-min fair rate.  Units are bytes for bandwidth resources
    /// and operations for service resources.
    Transfer { units: f64, path: Vec<ResourceId> },
    /// Run sub-steps one after the other.
    Seq(Vec<Step>),
    /// Run sub-steps concurrently; completes when all complete.
    Par(Vec<Step>),
    /// Annotate `inner` with a causal span: when span recording is
    /// enabled (see [`crate::span::SpanLog`]) the engine opens a span on
    /// entry and closes it when `inner` completes; parentage follows the
    /// dynamic nesting of span steps.  With recording off this costs one
    /// branch and executes `inner` directly.
    Span {
        /// Emitting layer ("dfuse", "libdaos", …).
        layer: &'static str,
        /// Operation within the layer ("write", "kv_put", …).
        op: &'static str,
        /// Payload bytes covered by the span (0 for metadata ops).
        bytes: u64,
        /// Retry attempt ordinal (0 = first try).
        attempt: u32,
        /// The annotated work.
        inner: Box<Step>,
    },
}

impl Step {
    /// A fixed delay of `ns` nanoseconds (no-op when zero).
    ///
    /// This is the nanosecond sink of the whole simulator: every latency
    /// eventually funnels through here, so the stage-4 dimension pass
    /// checks each call site's argument against `ns`.
    // simlint::dim(ns: ns)
    #[inline]
    pub fn delay(ns: u64) -> Step {
        if ns == 0 {
            Step::Noop
        } else {
            Step::Delay(ns)
        }
    }

    /// A fixed delay given in microseconds.
    #[inline]
    pub fn delay_us(us: f64) -> Step {
        Step::delay((us * 1_000.0).round() as u64)
    }

    /// A shared transfer of `units` through `path`.
    ///
    /// Degenerate transfers (no units, or an empty path) normalise to
    /// [`Step::Noop`]: a zero-byte move takes no time, and a move that
    /// touches no modelled resource is a modelling error we make harmless.
    // simlint::dim(units: bytes)
    // simlint::allow(hot-alloc) — Step-tree construction owns its path vector by design; arena-allocated op chains are ROADMAP item 2
    pub fn transfer(units: f64, path: impl IntoIterator<Item = ResourceId>) -> Step {
        let path: Vec<ResourceId> = path.into_iter().collect();
        if units <= 0.0 || path.is_empty() {
            return Step::Noop;
        }
        debug_assert!(units.is_finite());
        Step::Transfer { units, path }
    }

    /// Sequential composition, dropping no-ops and flattening singletons.
    // simlint::allow(hot-alloc) — Step-tree construction allocates its child list by design; arena-allocated op chains are ROADMAP item 2
    pub fn seq(steps: impl IntoIterator<Item = Step>) -> Step {
        let mut v: Vec<Step> = steps.into_iter().filter(|s| !s.is_noop()).collect();
        match v.len() {
            0 => Step::Noop,
            1 => v.pop().unwrap_or(Step::Noop),
            _ => Step::Seq(v),
        }
    }

    /// Parallel composition, dropping no-ops and flattening singletons.
    // simlint::allow(hot-alloc) — Step-tree construction allocates its child list by design; arena-allocated op chains are ROADMAP item 2
    pub fn par(steps: impl IntoIterator<Item = Step>) -> Step {
        let mut v: Vec<Step> = steps.into_iter().filter(|s| !s.is_noop()).collect();
        match v.len() {
            0 => Step::Noop,
            1 => v.pop().unwrap_or(Step::Noop),
            _ => Step::Par(v),
        }
    }

    /// Append `next` after `self`, reusing an existing `Seq` spine.
    // simlint::allow(hot-alloc) — Step-tree construction allocates its Seq spine by design; arena-allocated op chains are ROADMAP item 2
    pub fn then(self, next: Step) -> Step {
        match (self, next) {
            (Step::Noop, n) => n,
            (s, Step::Noop) => s,
            (Step::Seq(mut v), Step::Seq(w)) => {
                v.extend(w);
                Step::Seq(v)
            }
            (Step::Seq(mut v), n) => {
                v.push(n);
                Step::Seq(v)
            }
            (s, Step::Seq(mut w)) => {
                w.insert(0, s);
                Step::Seq(w)
            }
            (s, n) => Step::Seq(vec![s, n]),
        }
    }

    /// Annotate `inner` with a causal span (see [`Step::Span`]).  A span
    /// around nothing normalises to [`Step::Noop`]: zero-duration spans
    /// would only add noise to traces and reports.
    pub fn span(layer: &'static str, op: &'static str, bytes: u64, inner: Step) -> Step {
        Step::span_attempt(layer, op, bytes, 0, inner)
    }

    /// Like [`Step::span`] with an explicit retry-attempt ordinal
    /// (non-zero marks work re-issued by a retry executor).
    // simlint::allow(hot-alloc) — the span wrapper boxes its inner step by design; arena-allocated op chains are ROADMAP item 2
    pub fn span_attempt(
        layer: &'static str,
        op: &'static str,
        bytes: u64,
        attempt: u32,
        inner: Step,
    ) -> Step {
        if inner.is_noop() {
            return Step::Noop;
        }
        Step::Span {
            layer,
            op,
            bytes,
            attempt,
            inner: Box::new(inner),
        }
    }

    /// True for steps that complete instantly.
    #[inline]
    pub fn is_noop(&self) -> bool {
        matches!(self, Step::Noop)
    }

    /// Sum of all transferred units in the tree (diagnostics/tests).
    pub fn total_units(&self) -> f64 {
        match self {
            Step::Noop | Step::Delay(_) => 0.0,
            Step::Transfer { units, .. } => *units,
            Step::Seq(v) | Step::Par(v) => v.iter().map(Step::total_units).sum(),
            Step::Span { inner, .. } => inner.total_units(),
        }
    }

    /// Sum of all fixed delays when executed sequentially (`Par` counts
    /// the maximum of its branches).  Diagnostics/tests only.
    pub fn critical_delay_ns(&self) -> u64 {
        match self {
            Step::Noop | Step::Transfer { .. } => 0,
            Step::Delay(ns) => *ns,
            Step::Seq(v) => v.iter().map(Step::critical_delay_ns).sum(),
            Step::Par(v) => v.iter().map(Step::critical_delay_ns).max().unwrap_or(0),
            Step::Span { inner, .. } => inner.critical_delay_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> ResourceId {
        ResourceId(n)
    }

    #[test]
    fn degenerate_transfers_normalise() {
        assert!(Step::transfer(0.0, [r(1)]).is_noop());
        assert!(Step::transfer(10.0, []).is_noop());
        assert!(!Step::transfer(10.0, [r(1)]).is_noop());
    }

    #[test]
    fn seq_par_flatten() {
        assert!(Step::seq([]).is_noop());
        assert!(Step::par([Step::Noop, Step::Noop]).is_noop());
        match Step::seq([Step::delay(5)]) {
            Step::Delay(5) => {}
            s => panic!("expected flattened delay, got {s:?}"),
        }
        match Step::seq([Step::delay(5), Step::Noop, Step::delay(6)]) {
            Step::Seq(v) => assert_eq!(v.len(), 2),
            s => panic!("expected Seq, got {s:?}"),
        }
    }

    #[test]
    fn then_builds_flat_sequences() {
        let s = Step::delay(1).then(Step::delay(2)).then(Step::delay(3));
        match &s {
            Step::Seq(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flat Seq, got {other:?}"),
        }
        assert_eq!(s.critical_delay_ns(), 6);
        assert!(Step::Noop.then(Step::Noop).is_noop());
    }

    #[test]
    fn totals() {
        let s = Step::seq([
            Step::transfer(10.0, [r(0)]),
            Step::par([Step::transfer(5.0, [r(1)]), Step::delay(100)]),
        ]);
        assert!((s.total_units() - 15.0).abs() < 1e-12);
        assert_eq!(s.critical_delay_ns(), 100);
    }

    #[test]
    fn span_wraps_and_normalises() {
        assert!(Step::span("l", "o", 0, Step::Noop).is_noop());
        let s = Step::span("dfuse", "write", 8, Step::delay(5));
        assert_eq!(s.critical_delay_ns(), 5);
        match &s {
            Step::Span {
                layer,
                op,
                bytes,
                attempt,
                inner,
            } => {
                assert_eq!((*layer, *op, *bytes, *attempt), ("dfuse", "write", 8, 0));
                assert!(matches!(**inner, Step::Delay(5)));
            }
            other => panic!("expected Span, got {other:?}"),
        }
        let t = Step::span("l", "o", 0, Step::transfer(4.0, [r(1)]));
        assert!((t.total_units() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn delay_us_rounds() {
        match Step::delay_us(1.5) {
            Step::Delay(ns) => assert_eq!(ns, 1_500),
            s => panic!("{s:?}"),
        }
        assert!(Step::delay_us(0.0).is_noop());
    }
}
