//! Failure injection across the stack: target/server exclusion, degraded
//! reads through every interface, reintegration, and engine stalls.

use cluster::posix::PosixFs;
use cluster::{ClusterSpec, Payload};
use daos_core::{ContainerProps, DaosError, DaosSystem, DataMode, ObjectClass, TargetId};
use daos_dfs::{Dfs, DfsOpts};
use simkit::{run, run_for, OpId, RunOutcome, Scheduler, SimTime, SplitMix64, Step, World};
use std::cell::RefCell;
use std::rc::Rc;

struct Done(SimTime);
impl World for Done {
    fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
        self.0 = sched.now();
    }
}

fn exec(sched: &mut Scheduler, step: Step) -> f64 {
    let t0 = sched.now();
    sched.submit(step, OpId(0));
    let mut w = Done(SimTime::ZERO);
    run(sched, &mut w);
    w.0.secs_since(t0)
}

fn rand_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn dfs_file_on_ec_survives_server_loss() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos));
    let opts = DfsOpts {
        file_class: ObjectClass::EC_2P1,
        dir_class: ObjectClass::RP_2,
        chunk_size: 1 << 16,
    };
    let (mut dfs, s) = Dfs::format(daos.clone(), 0, cid, opts).unwrap();
    exec(&mut sched, s);

    let data = rand_bytes(10, 200_000);
    exec(&mut sched, dfs.mkdir(0, "/protected").unwrap());
    let (f, s) = dfs.open(0, "/protected/data", true).unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        dfs.write(0, f, 0, Payload::Bytes(data.clone())).unwrap(),
    );

    // lose a whole server: the EC_2P1 file and RP_2 directories survive
    daos.borrow_mut().exclude_server(2);
    let (got, s) = dfs.read(0, f, 0, data.len() as u64).unwrap();
    let degraded_secs = exec(&mut sched, s);
    assert_eq!(got.bytes().unwrap(), &data[..], "reconstructed through DFS");
    // namespace operations keep working through replicated directories
    let (names, s) = dfs.readdir(0, "/protected").unwrap();
    exec(&mut sched, s);
    assert_eq!(names, vec!["data"]);
    assert!(degraded_secs > 0.0);
}

#[test]
fn degraded_reads_cost_more_than_healthy_ones() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let (oid, s) = daos
        .array_create(0, cid, ObjectClass::EC_2P1, 1 << 20)
        .unwrap();
    exec(&mut sched, s);
    let data = rand_bytes(11, 4 << 20);
    exec(
        &mut sched,
        daos.array_write(0, cid, oid, 0, Payload::Bytes(data.clone()))
            .unwrap(),
    );

    let (_, s) = daos.array_read(0, cid, oid, 0, 4 << 20).unwrap();
    let healthy = exec(&mut sched, s);

    daos.exclude_server(1);
    let (got, s) = daos.array_read(0, cid, oid, 0, 4 << 20).unwrap();
    let degraded = exec(&mut sched, s);
    assert_eq!(got.bytes().unwrap(), &data[..]);
    assert!(
        degraded > healthy,
        "reconstruction must cost time: healthy {healthy}, degraded {degraded}"
    );
}

#[test]
fn exclusion_then_reintegration_restores_placement() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(2, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);

    daos.exclude_server(0);
    // every new object lands on server 1 only
    for _ in 0..8 {
        let (oid, s) = daos.array_create(0, cid, ObjectClass::SX, 1 << 20).unwrap();
        exec(&mut sched, s);
        let _ = oid;
    }
    assert_eq!(daos.pool().up_targets().len(), 16);

    for t in 0..16 {
        daos.reintegrate_target(TargetId {
            server: 0,
            target: t,
        });
    }
    assert_eq!(daos.pool().up_targets().len(), 32);
}

#[test]
fn writes_to_fully_down_groups_fail() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(1, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 1, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let (kv, s) = daos.kv_create(0, cid, ObjectClass::S1).unwrap();
    exec(&mut sched, s);
    exec(
        &mut sched,
        daos.kv_put(0, cid, kv, b"k", Payload::Sized(64)).unwrap(),
    );
    daos.exclude_server(0);
    assert_eq!(
        daos.kv_get(0, cid, kv, b"k").unwrap_err(),
        DaosError::Unavailable
    );
}

#[test]
fn engine_reports_stall_and_recovers_on_capacity_restore() {
    // a flow routed through a zero-capacity resource stalls the run;
    // restoring capacity resumes it — the failure-injection loop the
    // examples use.
    let mut sched = Scheduler::new();
    let r = sched.add_resource("flaky", 100.0);
    sched.submit(Step::transfer(100.0, [r]), OpId(7));
    let mut w = Done(SimTime::ZERO);
    // run half the transfer, then fail the device
    let out = run_for(&mut sched, &mut w, SimTime::from_secs_f64(0.5));
    assert_eq!(out, RunOutcome::TimeLimit);
    sched.set_capacity(r, 0.0);
    let out = run_for(&mut sched, &mut w, SimTime::NEVER);
    assert_eq!(out, RunOutcome::Stalled);
    sched.set_capacity(r, 50.0);
    let out = run_for(&mut sched, &mut w, SimTime::NEVER);
    assert_eq!(out, RunOutcome::Completed);
    assert!(
        (w.0.as_secs_f64() - 1.5).abs() < 1e-6,
        "0.5s at 100 + 1.0s at 50"
    );
}

#[test]
fn fieldio_ec_fields_survive_target_loss() {
    let mut sched = Scheduler::new();
    let topo = ClusterSpec::new(4, 1).build(&mut sched);
    let mut daos = DaosSystem::deploy(&topo, &mut sched, 4, DataMode::Full);
    let (cid, s) = daos.cont_create(0, ContainerProps::default());
    exec(&mut sched, s);
    let daos = Rc::new(RefCell::new(daos));
    // the paper's redundancy pairing: EC data, replicated indexes
    let (mut fio, s) = field_io::FieldIo::with_classes(
        daos.clone(),
        0,
        cid,
        ObjectClass::EC_2P1,
        ObjectClass::RP_2,
    )
    .unwrap();
    exec(&mut sched, s);
    let field = rand_bytes(12, 300_000);
    exec(
        &mut sched,
        fio.write_field(0, 0, 0, Payload::Bytes(field.clone()))
            .unwrap(),
    );

    daos.borrow_mut().exclude_server(3);
    let (got, s) = fio.read_field(0, 0, 0).unwrap();
    exec(&mut sched, s);
    assert_eq!(
        got.bytes().unwrap(),
        &field[..],
        "weather field reconstructed"
    );
}
