//! The DFUSE daemon model and the I/O interception library.
//!
//! DFUSE exposes a DFS namespace through the kernel FUSE layer.  Three
//! costs separate it from direct libdfs calls, and all three are
//! modelled per client node:
//!
//! 1. a fixed **kernel crossing** latency per application syscall;
//! 2. the daemon's **request pump** — a shared ops/s service sized by
//!    the FUSE thread count (the `--thread-count` option the paper sets
//!    to 24);
//! 3. the kernel↔user **data copy** bandwidth.
//!
//! Large application I/O additionally fragments into FUSE-sized requests
//! (`max_write`, 1 MiB), multiplying pump work — this is why DFUSE falls
//! behind under small or fragmented I/O (paper Fig. 2) while matching
//! libdaos for aligned 1 MiB transfers (Fig. 1).
//!
//! The **interception library** (`DfuseOpts::interception`) routes
//! read/write/fstat straight to libdfs from the application process,
//! skipping all three costs — metadata calls (open, stat, mkdir…) still
//! travel through the kernel, exactly like the real `libioil`.

use cluster::payload::{Payload, ReadPayload};
use cluster::posix::{FileId, FileStat, FsError, PosixFs};
use daos_core::{RetryExec, RetryPolicy, RetryStats};
use daos_dfs::Dfs;
use simkit::{ResourceId, Scheduler, Step};
use std::collections::BTreeSet;

/// Mount options (a subset of `dfuse` command-line options).
#[derive(Debug, Clone)]
pub struct DfuseOpts {
    /// FUSE daemon threads (paper: 24).
    pub fuse_threads: usize,
    /// Event-queue threads (paper: 12; affects the pump slightly).
    pub eq_threads: usize,
    /// Cache file data on the client node (paper: disabled).
    pub data_caching: bool,
    /// Cache metadata/lookups on the client node (paper: disabled).
    pub metadata_caching: bool,
    /// Route read/write through the interception library.
    pub interception: bool,
    /// Kernel readahead for sequential reads: detected sequential access
    /// prefetches ahead, so most crossings are absorbed by data already
    /// sitting in the kernel.
    pub readahead: bool,
}

impl Default for DfuseOpts {
    fn default() -> Self {
        DfuseOpts {
            fuse_threads: 24,
            eq_threads: 12,
            data_caching: false,
            metadata_caching: false,
            interception: false,
            readahead: false,
        }
    }
}

impl DfuseOpts {
    /// The paper's DFUSE+IL configuration.
    pub fn with_interception() -> Self {
        DfuseOpts {
            interception: true,
            ..Default::default()
        }
    }
}

/// A DFUSE mount on every client node, wrapping one DFS namespace.
// simlint::sim_state — replay-visible simulation state
pub struct DfuseMount {
    dfs: Dfs,
    opts: DfuseOpts,
    /// Per-client-node request pump (ops/s).
    pump: Vec<ResourceId>,
    /// Per-client-node kernel↔user copy bandwidth (bytes/s).
    copy: Vec<ResourceId>,
    crossing_ns: u64,
    il_op_ns: u64,
    max_req: f64,
    /// `(node, path-hash)` lookup cache entries (metadata caching).
    attr_cache: BTreeSet<(usize, u64)>,
    /// `(node, dir-path-hash)` -> resolved directory inode: the kernel
    /// dentry cache, which turns creates under a warm directory into
    /// parent-relative opens.
    dentry_cache: std::collections::BTreeMap<(usize, u64), daos_dfs::InodeId>,
    /// `(node, handle)` fully-cached files (data caching).
    data_cache: BTreeSet<(usize, u64)>,
    /// `(node, handle)` -> next expected offset (readahead detection).
    read_cursor: std::collections::BTreeMap<(usize, u64), u64>,
    /// Retry machinery around the DFS data path (off by default).
    retry: RetryExec,
}

fn path_key(path: &str) -> u64 {
    daos_core::dkey_hash(path.as_bytes())
}

impl DfuseMount {
    /// Mount `dfs` through DFUSE on every client node, creating the
    /// per-node daemon resources.
    pub fn mount(dfs: Dfs, sched: &mut Scheduler, opts: DfuseOpts) -> DfuseMount {
        let (cal, clients) = {
            let daos = dfs.daos().borrow();
            (daos.cal().clone(), daos.topology().client_count())
        };
        // Pump capacity: FUSE threads carry requests; the shared event
        // queues add some parallel slack but the thread count dominates.
        let pump_iops =
            cal.fuse_thread_iops * (opts.fuse_threads as f64 + 0.5 * opts.eq_threads as f64);
        let pump = (0..clients)
            .map(|c| sched.add_resource(format!("dfuse.cli{c}.pump"), pump_iops))
            .collect();
        let copy = (0..clients)
            .map(|c| sched.add_resource(format!("dfuse.cli{c}.copy"), cal.fuse_copy_bw))
            .collect();
        DfuseMount {
            dfs,
            pump,
            copy,
            crossing_ns: cal.fuse_crossing_ns,
            il_op_ns: cal.il_op_ns,
            max_req: cal.fuse_max_req_bytes,
            opts,
            attr_cache: BTreeSet::new(),
            dentry_cache: std::collections::BTreeMap::new(),
            data_cache: BTreeSet::new(),
            read_cursor: std::collections::BTreeMap::new(),
            retry: RetryExec::disabled(),
        }
    }

    /// Configure retry/timeout/backoff on the FUSE data path (`seed`
    /// drives the deterministic jitter stream).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.retry = RetryExec::new(policy, seed);
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        *self.retry.stats()
    }

    /// The wrapped DFS namespace.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Mutable access to the wrapped namespace (for tests/examples).
    // simlint::allow(digest-taint) — escape-hatch accessor: mutations made through it land in the inner system's own digested operations
    pub fn dfs_mut(&mut self) -> &mut Dfs {
        &mut self.dfs
    }

    /// The active mount options.
    pub fn opts(&self) -> &DfuseOpts {
        &self.opts
    }

    /// Kernel crossing + pump + copy around an inner operation moving
    /// `bytes` (0 for pure metadata calls), traced as a "dfuse" span.
    fn fuse_wrap(&self, node: usize, bytes: f64, op: &'static str, inner: Step) -> Step {
        let nreq = (bytes / self.max_req).ceil().max(1.0);
        let copy = Step::transfer(bytes, [self.copy[node]]);
        Step::span(
            "dfuse",
            op,
            bytes as u64,
            Step::seq([
                Step::delay(self.crossing_ns),
                Step::transfer(nreq, [self.pump[node]]),
                copy,
                inner,
            ]),
        )
    }

    /// Interception-library path: client-side overhead only, traced as
    /// an "il" span so the library shows up as its own layer.
    fn il_wrap(&self, bytes: u64, op: &'static str, inner: Step) -> Step {
        Step::span("il", op, bytes, Step::delay(self.il_op_ns).then(inner))
    }
}

impl PosixFs for DfuseMount {
    fn mkdir(&mut self, client: usize, path: &str) -> Result<Step, FsError> {
        let inner = self.dfs.mkdir(client, path)?;
        Ok(self.fuse_wrap(client, 0.0, "mkdir", inner))
    }

    fn open(&mut self, client: usize, path: &str, create: bool) -> Result<(FileId, Step), FsError> {
        use cluster::posix::components;
        let comps = components(path);
        // dentry cache: when the parent directory was resolved before,
        // the kernel hands DFUSE the parent inode and the open becomes a
        // single parent-relative dfs call — no per-component walk
        if self.opts.metadata_caching {
            if let Some((name, parents)) = comps.split_last() {
                let dir_path = parents.join("/");
                let dir_key = (client, path_key(&dir_path));
                let parent = match self.dentry_cache.get(&dir_key) {
                    Some(&pid) => Some((pid, Step::Noop)),
                    None => match self.dfs.resolve(client, &dir_path, true) {
                        Ok((pid, walk)) => {
                            self.dentry_cache.insert(dir_key, pid);
                            Some((pid, walk))
                        }
                        Err(_) => None,
                    },
                };
                if let Some((pid, walk)) = parent {
                    let (f, open) = self.dfs.open_at(client, pid, name, create)?;
                    return Ok((f, self.fuse_wrap(client, 0.0, "open", walk.then(open))));
                }
            }
        }
        let (f, inner) = self.dfs.open(client, path, create)?;
        Ok((f, self.fuse_wrap(client, 0.0, "open", inner)))
    }

    fn write(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        data: Payload,
    ) -> Result<Step, FsError> {
        let bytes = data.len() as f64;
        let inner = {
            let retry = &mut self.retry;
            let dfs = &mut self.dfs;
            retry.run_step(|| dfs.write(client, f, offset, data.clone()))?
        };
        if self.opts.data_caching {
            self.data_cache.insert((client, f.0));
        }
        if self.opts.interception {
            Ok(self.il_wrap(bytes as u64, "write", inner))
        } else {
            Ok(self.fuse_wrap(client, bytes, "write", inner))
        }
    }

    fn read(
        &mut self,
        client: usize,
        f: FileId,
        offset: u64,
        len: u64,
    ) -> Result<(ReadPayload, Step), FsError> {
        let served_from_cache = self.opts.data_caching && self.data_cache.contains(&(client, f.0));
        // readahead: a sequential read was already prefetched by the
        // kernel, so the application-side crossing latency is hidden
        let sequential = self
            .read_cursor
            .get(&(client, f.0))
            .is_some_and(|&next| next == offset);
        self.read_cursor.insert((client, f.0), offset + len);
        let prefetched = self.opts.readahead && sequential;
        let (data, inner) = {
            let retry = &mut self.retry;
            let dfs = &mut self.dfs;
            retry.run(|| dfs.read(client, f, offset, len))?
        };
        if self.opts.data_caching {
            self.data_cache.insert((client, f.0));
        }
        let inner = if served_from_cache { Step::Noop } else { inner };
        let step = if self.opts.interception {
            self.il_wrap(len, "read", inner)
        } else if prefetched {
            // pump + copy still happen; the crossing and the backend
            // read overlap with the application thanks to the prefetch
            let nreq = (len as f64 / self.max_req).ceil().max(1.0);
            Step::span(
                "dfuse",
                "read",
                len,
                Step::seq([
                    Step::transfer(nreq, [self.pump[client]]),
                    Step::transfer(len as f64, [self.copy[client]]),
                    Step::par([inner, Step::Noop]),
                ]),
            )
        } else {
            self.fuse_wrap(client, len as f64, "read", inner)
        };
        Ok((data, step))
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn fstat(&mut self, client: usize, f: FileId) -> Result<(FileStat, Step), FsError> {
        let (st, inner) = self.dfs.fstat(client, f)?;
        if self.opts.interception {
            Ok((st, self.il_wrap(0, "fstat", inner)))
        } else {
            Ok((st, self.fuse_wrap(client, 0.0, "fstat", inner)))
        }
    }

    fn stat(&mut self, client: usize, path: &str) -> Result<(FileStat, Step), FsError> {
        let cached =
            self.opts.metadata_caching && self.attr_cache.contains(&(client, path_key(path)));
        let (st, inner) = self.dfs.stat(client, path)?;
        if self.opts.metadata_caching {
            self.attr_cache.insert((client, path_key(path)));
        }
        let inner = if cached { Step::Noop } else { inner };
        Ok((st, self.fuse_wrap(client, 0.0, "stat", inner)))
    }

    fn close(&mut self, client: usize, f: FileId) -> Result<Step, FsError> {
        self.data_cache.remove(&(client, f.0));
        self.read_cursor.remove(&(client, f.0));
        let inner = self.dfs.close(client, f)?;
        Ok(self.fuse_wrap(client, 0.0, "close", inner))
    }

    fn unlink(&mut self, client: usize, path: &str) -> Result<Step, FsError> {
        self.attr_cache.remove(&(client, path_key(path)));
        // the removed entry might have been a cached directory
        self.dentry_cache.remove(&(client, path_key(path)));
        let inner = self.dfs.unlink(client, path)?;
        Ok(self.fuse_wrap(client, 0.0, "unlink", inner))
    }

    // simlint::allow(digest-taint) — query op: `&mut self` is handle/step bookkeeping only; no replay-visible state changes
    fn readdir(&mut self, client: usize, path: &str) -> Result<(Vec<String>, Step), FsError> {
        let (names, inner) = self.dfs.readdir(client, path)?;
        Ok((names, self.fuse_wrap(client, 0.0, "readdir", inner)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::{ContainerProps, DaosSystem, DataMode};
    use daos_dfs::DfsOpts;
    use simkit::{run, OpId, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink(SimTime);
    impl World for Sink {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Sink(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    fn mounted(opts: DfuseOpts) -> (Scheduler, DfuseMount) {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 2).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Full);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
        exec(&mut sched, s);
        let mount = DfuseMount::mount(dfs, &mut sched, opts);
        (sched, mount)
    }

    #[test]
    fn posix_round_trip_through_fuse() {
        let (mut sched, mut m) = mounted(DfuseOpts::default());
        exec(&mut sched, m.mkdir(0, "/d").unwrap());
        let (f, s) = m.open(0, "/d/file", true).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            m.write(0, f, 0, Payload::Bytes(vec![5; 4096])).unwrap(),
        );
        let (r, s) = m.read(0, f, 0, 4096).unwrap();
        exec(&mut sched, s);
        assert_eq!(r.bytes().unwrap(), &[5u8; 4096][..]);
        let (st, s) = m.fstat(0, f).unwrap();
        exec(&mut sched, s);
        assert_eq!(st.size, 4096);
        exec(&mut sched, m.close(0, f).unwrap());
        exec(&mut sched, m.unlink(0, "/d/file").unwrap());
    }

    #[test]
    fn interception_is_faster_for_small_io() {
        let t_fuse = {
            let (mut sched, mut m) = mounted(DfuseOpts::default());
            let (f, s) = m.open(0, "/f", true).unwrap();
            exec(&mut sched, s);
            let mut t = 0.0;
            for i in 0..32u64 {
                t += exec(
                    &mut sched,
                    m.write(0, f, i * 1024, Payload::Bytes(vec![1; 1024]))
                        .unwrap(),
                );
            }
            t
        };
        let t_il = {
            let (mut sched, mut m) = mounted(DfuseOpts::with_interception());
            let (f, s) = m.open(0, "/f", true).unwrap();
            exec(&mut sched, s);
            let mut t = 0.0;
            for i in 0..32u64 {
                t += exec(
                    &mut sched,
                    m.write(0, f, i * 1024, Payload::Bytes(vec![1; 1024]))
                        .unwrap(),
                );
            }
            t
        };
        assert!(
            t_il < t_fuse * 0.7,
            "IL {t_il} should beat FUSE {t_fuse} clearly at 1 KiB"
        );
    }

    #[test]
    fn fragmentation_multiplies_pump_work() {
        // An 8 MiB write must cost 8 pump requests vs 1 for a 1 MiB one.
        let (mut sched, mut m) = mounted(DfuseOpts::default());
        let (f, s) = m.open(0, "/f", true).unwrap();
        exec(&mut sched, s);
        let step = m.write(0, f, 0, Payload::Sized(8 << 20)).unwrap();
        // count pump units in the step tree
        fn pump_units(s: &Step, pump: simkit::ResourceId) -> f64 {
            match s {
                Step::Transfer { units, path } if path.contains(&pump) => *units,
                Step::Seq(v) | Step::Par(v) => v.iter().map(|s| pump_units(s, pump)).sum(),
                Step::Span { inner, .. } => pump_units(inner, pump),
                _ => 0.0,
            }
        }
        assert_eq!(pump_units(&step, m.pump[0]), 8.0);
        exec(&mut sched, step);
    }

    #[test]
    fn metadata_cache_skips_lookup_cost() {
        let opts = DfuseOpts {
            metadata_caching: true,
            ..Default::default()
        };
        let (mut sched, mut m) = mounted(opts);
        exec(&mut sched, m.mkdir(0, "/a").unwrap());
        exec(&mut sched, m.mkdir(0, "/a/b").unwrap());
        // mkdir does not warm the cache: the first stat pays the lookups,
        // the second is served from the client-side attribute cache.
        let (_, s1) = m.stat(0, "/a/b").unwrap();
        let t_first = exec(&mut sched, s1);
        let (_, s2) = m.stat(0, "/a/b").unwrap();
        let t_cached = exec(&mut sched, s2);
        assert!(
            t_cached < t_first * 0.5,
            "cached {t_cached} vs first {t_first}"
        );
    }

    #[test]
    fn data_cache_serves_reread() {
        let opts = DfuseOpts {
            data_caching: true,
            ..Default::default()
        };
        let (mut sched, mut m) = mounted(opts);
        let (f, s) = m.open(0, "/f", true).unwrap();
        exec(&mut sched, s);
        exec(
            &mut sched,
            m.write(0, f, 0, Payload::Bytes(vec![9; 1 << 20])).unwrap(),
        );
        let (r1, s) = m.read(0, f, 0, 1 << 20).unwrap();
        let t_cached = exec(&mut sched, s);
        assert_eq!(r1.len(), 1 << 20);
        // compare with uncached mount
        let (mut sched2, mut m2) = mounted(DfuseOpts::default());
        let (f2, s) = m2.open(0, "/f", true).unwrap();
        exec(&mut sched2, s);
        exec(
            &mut sched2,
            m2.write(0, f2, 0, Payload::Bytes(vec![9; 1 << 20]))
                .unwrap(),
        );
        let (_, s) = m2.read(0, f2, 0, 1 << 20).unwrap();
        let t_uncached = exec(&mut sched2, s);
        assert!(
            t_cached < t_uncached * 0.8,
            "cached {t_cached} vs {t_uncached}"
        );
    }

    #[test]
    fn per_node_pumps_are_independent() {
        let (sched, m) = mounted(DfuseOpts::default());
        assert_ne!(m.pump[0], m.pump[1]);
        assert_ne!(m.copy[0], m.copy[1]);
        let _ = sched.now();
    }
}

#[cfg(test)]
mod readahead_tests {
    use super::*;
    use cluster::ClusterSpec;
    use daos_core::{ContainerProps, DaosSystem, DataMode};
    use daos_dfs::DfsOpts;
    use simkit::{run, OpId, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Done(SimTime);
    impl World for Done {
        fn on_op_complete(&mut self, _op: OpId, sched: &mut Scheduler) {
            self.0 = sched.now();
        }
    }

    fn exec(sched: &mut Scheduler, step: Step) -> f64 {
        let t0 = sched.now();
        sched.submit(step, OpId(0));
        let mut w = Done(SimTime::ZERO);
        run(sched, &mut w);
        w.0.secs_since(t0)
    }

    fn sequential_read_time(readahead: bool, sequential: bool) -> f64 {
        let mut sched = Scheduler::new();
        let topo = ClusterSpec::new(2, 1).build(&mut sched);
        let mut daos = DaosSystem::deploy(&topo, &mut sched, 2, DataMode::Sized);
        let (cid, s) = daos.cont_create(0, ContainerProps::default());
        exec(&mut sched, s);
        let daos = Rc::new(RefCell::new(daos));
        let (dfs, s) = Dfs::format(daos, 0, cid, DfsOpts::default()).unwrap();
        exec(&mut sched, s);
        let opts = DfuseOpts {
            readahead,
            ..Default::default()
        };
        let mut m = DfuseMount::mount(dfs, &mut sched, opts);
        let (f, s) = m.open(0, "/ra", true).unwrap();
        exec(&mut sched, s);
        let n = 32u64;
        let blk = 64u64 << 10;
        exec(
            &mut sched,
            m.write(0, f, 0, Payload::Sized(n * blk)).unwrap(),
        );
        let mut total = 0.0;
        for i in 0..n {
            let off = if sequential {
                i * blk
            } else {
                // strided access defeats the readahead detector
                ((i * 7) % n) * blk
            };
            let (_, s) = m.read(0, f, off, blk).unwrap();
            total += exec(&mut sched, s);
        }
        total
    }

    #[test]
    fn readahead_speeds_up_sequential_reads() {
        let cold = sequential_read_time(false, true);
        let warm = sequential_read_time(true, true);
        assert!(
            warm < cold * 0.8,
            "readahead must hide crossings: {warm:.4}s vs {cold:.4}s"
        );
    }

    #[test]
    fn readahead_useless_for_random_access() {
        let off = sequential_read_time(true, false);
        let on = sequential_read_time(false, false);
        let ratio = off / on;
        assert!(
            (0.95..1.05).contains(&ratio),
            "random access gains nothing: ratio {ratio:.3}"
        );
    }
}
