//! The phase driver: runs a [`ProcWorkload`] on a scheduler and applies
//! the paper's bandwidth definition (§II): bytes moved divided by the
//! wall-clock time between the start of the first I/O operation and the
//! end of the last one.

use cluster::bench::ProcWorkload;
use cluster::units;
use simkit::{run, OpId, Scheduler, SimTime, World};

/// Result of one measured phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Logical bytes moved in the measured window.
    // simlint::dim(bytes)
    pub bytes: f64,
    /// Measured window in (simulated) seconds.
    pub seconds: f64,
    /// Total operations completed.
    pub ops: usize,
}

impl PhaseResult {
    /// Bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes / self.seconds
        } else {
            0.0
        }
    }

    /// Operation rate in ops/second.
    pub fn iops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }
}

struct SetupWorld {
    remaining: usize,
}
impl World for SetupWorld {
    fn on_op_complete(&mut self, _op: OpId, _sched: &mut Scheduler) {
        self.remaining -= 1;
    }
}

struct OpsWorld<'a, W: ProcWorkload> {
    wl: &'a mut W,
    /// Next op index to issue, per process.
    next_idx: Vec<usize>,
    /// Ops still in flight, per process.
    inflight: Vec<usize>,
    ops_per_proc: usize,
    remaining: usize,
    last_end: SimTime,
}

impl<W: ProcWorkload> World for OpsWorld<'_, W> {
    fn on_op_complete(&mut self, op: OpId, sched: &mut Scheduler) {
        let proc = op.0 as usize;
        self.last_end = sched.now();
        self.inflight[proc] -= 1;
        let idx = self.next_idx[proc];
        if idx < self.ops_per_proc {
            self.next_idx[proc] += 1;
            self.inflight[proc] += 1;
            let step = self.wl.op(proc, idx);
            sched.submit(step, OpId(proc as u64));
        } else if self.inflight[proc] == 0 {
            self.remaining -= 1;
        }
    }
}

/// Run one measured phase of `wl` on `sched`.
///
/// 1. Every process runs its `setup` (untimed);
/// 2. barrier;
/// 3. every process issues its ops back-to-back (queue depth 1, as IOR
///    and the ECMWF tools do);
/// 4. `finalize` runs (untimed unless the workload buffers, in which
///    case its flushed bytes still count toward volume).
pub fn run_phase<W: ProcWorkload>(sched: &mut Scheduler, wl: &mut W) -> PhaseResult {
    let procs = wl.procs();
    let ops_per_proc = wl.ops_per_proc();

    // -- setup barrier (untimed) --
    let mut setup = SetupWorld { remaining: procs };
    for p in 0..procs {
        let step = wl.setup(p);
        sched.submit(step, OpId(p as u64));
    }
    run(sched, &mut setup);
    assert_eq!(setup.remaining, 0, "setup completions");

    // -- measured phase --
    let t0 = sched.now();
    let qd = wl.queue_depth().max(1);
    let initial = qd.min(ops_per_proc);
    let mut world = OpsWorld {
        wl,
        next_idx: vec![initial; procs],
        inflight: vec![initial; procs],
        ops_per_proc,
        remaining: procs,
        last_end: t0,
    };
    if ops_per_proc > 0 {
        for p in 0..procs {
            // Real parallel jobs leave the barrier with jittered start
            // times (MPI barrier exit, first-RPC setup).  A small
            // deterministic stagger reproduces that decorrelation;
            // without it, identical queue-depth-1 processes march in
            // lock-step waves that leave devices idle between waves.
            let stagger = start_stagger_ns(p);
            for i in 0..initial {
                let step = world.wl.op(p, i);
                sched.submit_after(stagger, step, OpId(p as u64));
            }
        }
        run(sched, &mut world);
        assert_eq!(world.remaining, 0, "all processes finished");
    }
    let mut t_end = world.last_end;

    // -- finalize --
    let finalize_bytes = wl.finalize_bytes() * procs as f64;
    let in_window = wl.finalize_in_window();
    let mut fin = SetupWorld { remaining: procs };
    for p in 0..procs {
        let step = wl.finalize(p);
        sched.submit(step, OpId(p as u64));
    }
    run(sched, &mut fin);
    if in_window || finalize_bytes > 0.0 {
        // buffered writers flush real data during finalize; count it
        t_end = sched.now();
    }

    // simlint::allow(env-dependent-sim) — opt-in diagnostics printout; no effect on results
    if std::env::var_os("SIMKIT_DIAG").is_some() {
        eprintln!(
            "[diag] recomputes={} flow_visits={} fill_iters={} settle={:.1}s rebuild={:.1}s solve={:.1}s ({} procs x {} ops)",
            sched.stat_recomputes, sched.stat_flow_visits, sched.stat_fill_iters,
            units::ns_to_secs(sched.stat_ns[0]), units::ns_to_secs(sched.stat_ns[1]), units::ns_to_secs(sched.stat_ns[2]),
            procs, ops_per_proc
        );
    }
    let total_ops = procs * ops_per_proc;
    PhaseResult {
        bytes: total_ops as f64 * wl.bytes_per_op() + finalize_bytes,
        seconds: t_end.secs_since(t0),
        ops: total_ops,
    }
}

/// Deterministic per-process start jitter, uniform in [0, 2 ms).
pub(crate) fn start_stagger_ns(proc: usize) -> u64 {
    let mut z = proc as u64 ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 2_000_000
}

/// A trivial workload for driver tests: each process performs `ops`
/// transfers through one shared resource.
#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{ResourceId, Step};

    struct Uniform {
        procs: usize,
        ops: usize,
        bytes: f64,
        res: ResourceId,
    }
    impl ProcWorkload for Uniform {
        fn procs(&self) -> usize {
            self.procs
        }
        fn node_of(&self, _p: usize) -> usize {
            0
        }
        fn setup(&mut self, _p: usize) -> Step {
            Step::delay(1000)
        }
        fn ops_per_proc(&self) -> usize {
            self.ops
        }
        fn bytes_per_op(&self) -> f64 {
            self.bytes
        }
        fn op(&mut self, _p: usize, _i: usize) -> Step {
            Step::transfer(self.bytes, [self.res])
        }
    }

    #[test]
    fn bandwidth_equals_capacity_when_saturated() {
        let mut sched = Scheduler::new();
        let res = sched.add_resource("r", 1000.0);
        let mut wl = Uniform {
            procs: 4,
            ops: 25,
            bytes: 10.0,
            res,
        };
        let r = run_phase(&mut sched, &mut wl);
        assert_eq!(r.ops, 100);
        assert!((r.bytes - 1000.0).abs() < 1e-9);
        // 1000 bytes through 1000 B/s = 1 s, plus up to 2 ms of start
        // stagger
        assert!(
            r.seconds >= 1.0 - 1e-6 && r.seconds < 1.003,
            "{}",
            r.seconds
        );
        assert!((r.bandwidth() - 1000.0).abs() < 5.0);
        assert!((r.iops() - 100.0).abs() < 0.5);
    }

    #[test]
    fn setup_time_is_not_measured() {
        struct SlowSetup {
            res: ResourceId,
        }
        impl ProcWorkload for SlowSetup {
            fn procs(&self) -> usize {
                1
            }
            fn node_of(&self, _p: usize) -> usize {
                0
            }
            fn setup(&mut self, _p: usize) -> Step {
                Step::delay(5_000_000_000) // five slow seconds
            }
            fn ops_per_proc(&self) -> usize {
                1
            }
            fn bytes_per_op(&self) -> f64 {
                100.0
            }
            fn op(&mut self, _p: usize, _i: usize) -> Step {
                Step::transfer(100.0, [self.res])
            }
        }
        let mut sched = Scheduler::new();
        let res = sched.add_resource("r", 100.0);
        let r = run_phase(&mut sched, &mut SlowSetup { res });
        assert!(
            r.seconds >= 1.0 - 1e-6 && r.seconds < 1.003,
            "setup excluded: {}",
            r.seconds
        );
    }

    #[test]
    fn zero_ops_is_safe() {
        let mut sched = Scheduler::new();
        let res = sched.add_resource("r", 10.0);
        let mut wl = Uniform {
            procs: 2,
            ops: 0,
            bytes: 1.0,
            res,
        };
        let r = run_phase(&mut sched, &mut wl);
        assert_eq!(r.ops, 0);
        assert_eq!(r.bandwidth(), 0.0);
    }
}
