//! `verdicts` — evaluate the paper-claim checks against previously
//! saved figure CSVs (`repro ... --out DIR` output), without re-running
//! any simulation.
//!
//! ```text
//! verdicts [results-dir]
//! ```

use benchkit::figures::{Figure, Point, Series};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

fn load_figure(path: &Path) -> Option<Figure> {
    let id = path.file_stem()?.to_str()?.to_string();
    let text = fs::read_to_string(path).ok()?;
    let mut series: BTreeMap<String, Vec<Point>> = BTreeMap::new();
    for line in text.lines().skip(1) {
        let mut parts = line.rsplitn(4, ',');
        let std: f64 = parts.next()?.parse().ok()?;
        let mean: f64 = parts.next()?.parse().ok()?;
        let x: f64 = parts.next()?.parse().ok()?;
        let name = parts.next()?.to_string();
        series.entry(name).or_default().push(Point { x, mean, std });
    }
    Some(Figure {
        id: id.clone(),
        title: id,
        x_label: String::new(),
        y_label: String::new(),
        series: series
            .into_iter()
            .map(|(name, points)| Series { name, points })
            .collect(),
    })
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let mut figs = Vec::new();
    let entries = match fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            std::process::exit(1);
        }
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.extension().is_some_and(|e| e == "csv") {
            if let Some(f) = load_figure(&p) {
                figs.push(f);
            }
        }
    }
    println!("loaded {} figures from {dir}", figs.len());
    let verdicts = benchkit::verdict::evaluate(&figs);
    print!("{}", benchkit::verdict::render(&verdicts));
    let failed = verdicts.iter().filter(|v| !v.pass).count();
    println!(
        "\n{} of {} claims reproduced",
        verdicts.len() - failed,
        verdicts.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
